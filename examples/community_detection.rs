//! Local community detection by PPR sweep cut (the paper's application
//! [3, 21]): compute the exact PPV of a seed, order nodes by
//! degree-normalised score, and take the prefix with minimum conductance.
//!
//! ```text
//! cargo run --release --example community_detection
//! ```

use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::PprConfig;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::{CsrGraph, NodeId};

/// Conductance of a node set: cut edges / min(vol(S), vol(V−S)).
fn conductance(g: &CsrGraph, set: &std::collections::HashSet<NodeId>) -> f64 {
    let mut cut = 0u64;
    let mut vol_in = 0u64;
    let mut vol_total = 0u64;
    for v in 0..g.node_count() as NodeId {
        let deg = g.total_degree(v) as u64;
        vol_total += deg;
        if set.contains(&v) {
            vol_in += deg;
            for &w in g.out_neighbors(v) {
                if !set.contains(&w) {
                    cut += 1;
                }
            }
            for &w in g.in_neighbors(v) {
                if !set.contains(&w) {
                    cut += 1;
                }
            }
        }
    }
    let denom = vol_in.min(vol_total - vol_in).max(1);
    cut as f64 / denom as f64
}

fn main() {
    // Strong planted communities: blocks of 125 nodes at depth 4.
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 2_000,
            depth: 4,
            min_degree: 4,
            max_degree: 40,
            locality: 0.95,
            reciprocity: 0.5,
            noise: 0.02,
            ..Default::default()
        },
        21,
    );
    let cfg = PprConfig {
        epsilon: 1e-7,
        ..Default::default()
    };
    let index = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());

    let seed: NodeId = 310; // lives in the planted block [250, 375)
    let ppv = index.query(seed);

    // Sweep: order by score/degree, scan prefixes for min conductance.
    let mut order: Vec<(NodeId, f64)> = ppv
        .iter()
        .map(|(v, s)| (v, s / g.total_degree(v).max(1) as f64))
        .collect();
    order.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    let mut best: Option<(usize, f64)> = None;
    let mut prefix: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    for (i, &(v, _)) in order.iter().take(400).enumerate() {
        prefix.insert(v);
        if i + 1 >= 10 {
            let phi = conductance(&g, &prefix);
            if best.map(|(_, b)| phi < b).unwrap_or(true) {
                best = Some((i + 1, phi));
            }
        }
    }
    let (size, phi) = best.expect("sweep produced a community");
    let community: std::collections::HashSet<NodeId> =
        order.iter().take(size).map(|&(v, _)| v).collect();

    // Compare to the planted block of the seed (ids 250..375 at depth 4).
    let block: std::collections::HashSet<NodeId> = (250..375).collect();
    let overlap = community.intersection(&block).count();
    let precision = overlap as f64 / community.len() as f64;
    let recall = overlap as f64 / block.len() as f64;

    println!("seed {seed}: community of {size} nodes, conductance {phi:.4}");
    println!(
        "vs planted block [250,375): precision {:.2}, recall {:.2}, F1 {:.2}",
        precision,
        recall,
        2.0 * precision * recall / (precision + recall).max(1e-12)
    );
    let random_set: std::collections::HashSet<NodeId> =
        (0..g.node_count() as u32).filter(|v| v % 16 == 3).collect();
    println!(
        "(a scattered set of the same scale has conductance {:.4})",
        conductance(&g, &random_set)
    );
    assert!(phi < 0.3, "sweep community should be well separated");
    assert!(precision > 0.5 && recall > 0.3, "should recover the planted block");
}
