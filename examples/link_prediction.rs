//! Link prediction with exact PPVs (the paper's motivating application
//! [4]): hide a sample of edges, rank candidate targets by Personalized
//! PageRank, and measure how often the hidden target appears in the top-k.
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```

use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::PprConfig;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::{GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A social-style graph with reciprocity (friend-of-friend structure).
    let full = hierarchical_sbm(
        &HsbmConfig {
            nodes: 1_500,
            depth: 5,
            min_degree: 3,
            max_degree: 60,
            locality: 0.9,
            reciprocity: 0.6,
            ..Default::default()
        },
        7,
    );

    // Hide 100 random edges (u -> v) where u keeps at least one edge.
    let mut rng = StdRng::seed_from_u64(99);
    let all_edges: Vec<(NodeId, NodeId)> = full.edges().collect();
    let mut hidden: Vec<(NodeId, NodeId)> = Vec::new();
    let mut hidden_set = std::collections::HashSet::new();
    while hidden.len() < 100 {
        let &(u, v) = &all_edges[rng.random_range(0..all_edges.len())];
        if full.out_degree(u) >= 2 && hidden_set.insert((u, v)) {
            hidden.push((u, v));
        }
    }
    let mut b = GraphBuilder::new(full.node_count());
    for &(u, v) in &all_edges {
        if !hidden_set.contains(&(u, v)) {
            b.push_edge(u, v);
        }
    }
    let observed = b.build();
    println!(
        "observed graph: {} edges ({} hidden for evaluation)",
        observed.edge_count(),
        hidden.len()
    );

    // Exact PPVs on the observed graph.
    let cfg = PprConfig {
        epsilon: 1e-6,
        ..Default::default()
    };
    let index = HgpaIndex::build(&observed, &cfg, &HgpaBuildOptions::default());

    // For each hidden edge (u, v): rank all non-neighbours of u by PPV(u)
    // and record the rank of v.
    let mut hits_at = [0usize; 3]; // @1, @10, @50
    for &(u, v) in &hidden {
        let ppv = index.query(u);
        let mut candidates: Vec<(NodeId, f64)> = ppv
            .iter()
            .filter(|&(w, _)| w != u && !observed.has_edge(u, w))
            .collect();
        candidates.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        if let Some(rank) = candidates.iter().position(|&(w, _)| w == v) {
            if rank < 1 {
                hits_at[0] += 1;
            }
            if rank < 10 {
                hits_at[1] += 1;
            }
            if rank < 50 {
                hits_at[2] += 1;
            }
        }
    }
    let n = hidden.len() as f64;
    println!("PPR link prediction:");
    println!("  hits@1  = {:.1}%", 100.0 * hits_at[0] as f64 / n);
    println!("  hits@10 = {:.1}%", 100.0 * hits_at[1] as f64 / n);
    println!("  hits@50 = {:.1}%", 100.0 * hits_at[2] as f64 / n);

    // Baseline: random candidate ranking would hit@10 with p ≈ 10/|V|.
    let random_rate = 100.0 * 10.0 / observed.node_count() as f64;
    println!("  (random hits@10 ≈ {random_rate:.2}%)");
    assert!(
        hits_at[1] as f64 / n > 3.0 * random_rate / 100.0,
        "PPR ranking should beat random by a wide margin"
    );
}
