//! Operating an index over time: persist the precomputed state to disk,
//! reload it, and keep it exact under edge insertions/removals with
//! chain-local incremental updates (instead of full rebuilds).
//!
//! ```text
//! cargo run --release --example dynamic_graph
//! ```

use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::persist::{load_hgpa_file, save_hgpa_file};
use exact_ppr::core::power::power_iteration;
use exact_ppr::core::PprConfig;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::{CsrGraph, GraphBuilder, NodeId};

fn add_edge(g: &CsrGraph, u: NodeId, v: NodeId) -> CsrGraph {
    let mut b = GraphBuilder::new(g.node_count());
    for (a, c) in g.edges() {
        b.push_edge(a, c);
    }
    b.push_edge(u, v);
    b.build()
}

fn main() {
    let cfg = PprConfig {
        epsilon: 1e-7,
        ..Default::default()
    };
    let g0 = hierarchical_sbm(
        &HsbmConfig {
            nodes: 1_500,
            depth: 5,
            locality: 0.9,
            ..Default::default()
        },
        3,
    );

    // Day 0: the expensive offline phase, persisted per deployment.
    let t = std::time::Instant::now();
    let index = HgpaIndex::build(&g0, &cfg, &HgpaBuildOptions::default());
    let build_time = t.elapsed();
    let path = std::env::temp_dir().join("exact_ppr_demo.pprx");
    save_hgpa_file(&index, &path).expect("persist index");
    let bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "built in {build_time:.2?} ({} stored entries), persisted {} KB to {}",
        index.stored_entries(),
        bytes / 1024,
        path.display()
    );

    // Day 1: a new process loads the index instead of rebuilding.
    let t = std::time::Instant::now();
    let mut index = load_hgpa_file(&path).expect("reload index");
    println!("reloaded in {:.2?}", t.elapsed());

    // The graph evolves: three new edges arrive.
    let updates = [(10u32, 1_200u32), (700, 42), (1_499, 3)];
    let mut g = g0;
    for (u, v) in updates {
        if g.has_edge(u, v) {
            continue;
        }
        g = add_edge(&g, u, v);
        let t = std::time::Instant::now();
        let stats = index
            .apply_edge_updates(&g, &[(u, v)])
            .expect("endpoints are live");
        println!(
            "insert ({u}, {v}): {} subgraphs swept, {} vectors recomputed, {} provably clean (skipped){} in {:.2?}",
            stats.subgraphs_recomputed,
            stats.vectors_recomputed,
            stats.vectors_skipped,
            if stats.promoted_hubs.is_empty() {
                String::new()
            } else {
                format!(", promoted hubs {:?}", stats.promoted_hubs)
            },
            t.elapsed()
        );
    }

    // Still exact after all of it.
    let reference = power_iteration(&g, 10, &cfg);
    let ppv = index.query(10);
    let max_err = (0..g.node_count() as u32)
        .map(|v| (reference[v as usize] - ppv.get(v)).abs())
        .fold(0.0f64, f64::max);
    println!("max |index - power iteration| after updates = {max_err:.2e}");
    assert!(max_err < 1e-4);
    std::fs::remove_file(&path).ok();
}
