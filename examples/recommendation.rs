//! Item recommendation on a bipartite user–item graph (the paper's
//! application [22, 27], e.g. Twitter's who-to-follow): the PPV of a user
//! node, restricted to item nodes the user has not interacted with, is the
//! recommendation list.
//!
//! ```text
//! cargo run --release --example recommendation
//! ```

use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::PprConfig;
use exact_ppr::graph::{GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const USERS: usize = 600;
const ITEMS: usize = 300;
const GENRES: usize = 6;

fn main() {
    // Users 0..600, items 600..900. Each user favours one of 6 genres and
    // interacts mostly with items of that genre (items are genre-striped).
    let mut rng = StdRng::seed_from_u64(5);
    let mut b = GraphBuilder::new(USERS + ITEMS);
    let genre_of_user: Vec<usize> = (0..USERS).map(|_| rng.random_range(0..GENRES)).collect();
    let item_id = |i: usize| (USERS + i) as NodeId;
    let genre_of_item = |i: usize| i % GENRES;

    let mut liked: Vec<Vec<usize>> = vec![Vec::new(); USERS];
    for (u, &genre) in genre_of_user.iter().enumerate() {
        let interactions = rng.random_range(3..10);
        for _ in 0..interactions {
            // 80% in-genre, 20% exploration.
            let item = if rng.random::<f64>() < 0.8 {
                let stripe = rng.random_range(0..ITEMS / GENRES);
                stripe * GENRES + genre
            } else {
                rng.random_range(0..ITEMS)
            };
            // Bipartite edges in both directions: user <-> item.
            b.push_edge(u as NodeId, item_id(item));
            b.push_edge(item_id(item), u as NodeId);
            liked[u].push(item);
        }
    }
    let g = b.build();
    println!(
        "bipartite graph: {USERS} users + {ITEMS} items, {} edges",
        g.edge_count()
    );

    let cfg = PprConfig {
        epsilon: 1e-7,
        ..Default::default()
    };
    let index = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());

    // Recommend for 50 users; score how many of the top-10 recommended
    // items match the user's genre (random would give 1/6 ≈ 17%).
    let mut in_genre = 0usize;
    let mut total = 0usize;
    for u in (0..USERS).step_by(USERS / 50) {
        let ppv = index.query(u as NodeId);
        let seen: std::collections::HashSet<usize> = liked[u].iter().copied().collect();
        let mut recs: Vec<(usize, f64)> = ppv
            .iter()
            .filter_map(|(v, s)| {
                let v = v as usize;
                (v >= USERS && !seen.contains(&(v - USERS))).then(|| (v - USERS, s))
            })
            .collect();
        recs.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for &(item, _) in recs.iter().take(10) {
            total += 1;
            if genre_of_item(item) == genre_of_user[u] {
                in_genre += 1;
            }
        }
    }
    let rate = 100.0 * in_genre as f64 / total.max(1) as f64;
    println!("top-10 recommendations matching the user's genre: {rate:.1}% (random ≈ 16.7%)");

    // Show one user's list.
    let u = 0usize;
    let ppv = index.query(u as NodeId);
    println!("user 0 (genre {}) — top 5 unseen items:", genre_of_user[0]);
    let seen: std::collections::HashSet<usize> = liked[0].iter().copied().collect();
    let mut recs: Vec<(usize, f64)> = ppv
        .iter()
        .filter_map(|(v, s)| {
            let v = v as usize;
            (v >= USERS && !seen.contains(&(v - USERS))).then(|| (v - USERS, s))
        })
        .collect();
    recs.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for &(item, score) in recs.iter().take(5) {
        println!(
            "  item {item:>4} (genre {})  score {score:.6}",
            genre_of_item(item)
        );
    }
    assert!(rate > 40.0, "PPR should strongly prefer in-genre items");
}
