//! Quickstart: build an HGPA index and query exact PPVs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::power::power_iteration;
use exact_ppr::core::PprConfig;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};

fn main() {
    // 1. A graph. Any directed CsrGraph works; here, a synthetic
    //    community-structured one (use ppr_graph::io to load edge lists).
    let graph = hierarchical_sbm(
        &HsbmConfig {
            nodes: 2_000,
            depth: 5,
            locality: 0.9,
            ..Default::default()
        },
        42,
    );
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. Build the hierarchical index (paper §4). One call partitions the
    //    graph, selects hub nodes, and precomputes partial vectors,
    //    skeleton columns, and leaf-level PPVs across simulated machines.
    let config = PprConfig {
        alpha: 0.15,
        epsilon: 1e-6,
        ..Default::default()
    };
    let t = std::time::Instant::now();
    let index = HgpaIndex::build(&graph, &config, &HgpaBuildOptions::default());
    println!(
        "HGPA index: {} hubs over {} levels, {} stored entries, built in {:.2?}",
        index.hub_ids().len(),
        index.hierarchy().depth,
        index.stored_entries(),
        t.elapsed()
    );

    // 3. Query: the exact PPV of node 0, reconstructed from the index.
    let t = std::time::Instant::now();
    let ppv = index.query(0);
    println!("query(0): {} nonzeros in {:.2?}", ppv.nnz(), t.elapsed());
    println!("top-5 nodes by personalized relevance to node 0:");
    for (node, score) in ppv.top_k(5) {
        println!("  node {node:>5}  score {score:.6}");
    }

    // 4. Verify against power iteration (the paper's accuracy reference).
    let reference = power_iteration(&graph, 0, &config);
    let max_err = (0..graph.node_count() as u32)
        .map(|v| (reference[v as usize] - ppv.get(v)).abs())
        .fold(0.0f64, f64::max)
        ;
    println!("max |HGPA - power iteration| = {max_err:.2e} (tolerance {})", config.epsilon);
    assert!(max_err < 1e-4);
}
