//! The distributed story end-to-end: build an HGPA index across simulated
//! machines, serve a query with one communication round, and compare the
//! traffic against a Pregel-style engine answering the same query.
//!
//! ```text
//! cargo run --release --example distributed_cluster
//! ```

use exact_ppr::baselines::PregelPpr;
use exact_ppr::cluster::{Cluster, ClusterConfig, NetworkModel};
use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::PprConfig;
use exact_ppr::workload::Dataset;

fn main() {
    let machines = 6;
    let g = Dataset::Web.generate_with_nodes(4_000);
    println!(
        "dataset: Web stand-in, {} nodes, {} edges, {machines} machines",
        g.node_count(),
        g.edge_count()
    );

    // Distributed precomputation: each machine owns its share of hubs and
    // leaf subgraphs (paper §5) — per-machine offline time is reported.
    let cfg = PprConfig::default();
    let (index, offline) = HgpaIndex::build_distributed(
        &g,
        &cfg,
        &HgpaBuildOptions {
            machines,
            ..Default::default()
        },
    );
    println!(
        "offline: partition {:.2?}s + max machine {:.3}s (per machine: {:?})",
        offline.partition_seconds,
        offline.max_machine_seconds(),
        offline
            .per_machine_seconds
            .iter()
            .map(|s| format!("{:.3}s", s))
            .collect::<Vec<_>>()
    );

    // One query through the simulated cluster.
    let cluster = Cluster::new(ClusterConfig {
        machines,
        network: NetworkModel::default(), // the paper's 100 Mbps switch
        ..ClusterConfig::default()
    });
    let q = 17;
    let report = cluster.query(&index, q);
    println!("\nquery node {q}: exact PPV with ONE communication round");
    for (i, m) in report.machines.iter().enumerate() {
        println!(
            "  machine {i}: compute {:.3} ms, sent {} entries ({} bytes)",
            m.compute_seconds * 1e3,
            m.entries,
            m.bytes_sent
        );
    }
    println!(
        "  coordinator: {:.3} ms; total traffic {} bytes; modeled wire {:.3} ms",
        report.coordinator_seconds * 1e3,
        report.total_bytes(),
        report.modeled_network_seconds * 1e3
    );
    println!(
        "  runtime (paper metric: max machine + coordinator): {:.3} ms",
        report.runtime_seconds() * 1e3
    );

    // The same query on a Pregel-style engine: many rounds, much traffic.
    let pregel = PregelPpr::new(&g, machines);
    let (ppv, stats) = pregel.query(q, &cfg);
    println!(
        "\nPregel-style power iteration: {} supersteps, {} cross-worker messages, {} bytes, {:.1} ms",
        stats.supersteps, stats.cross_worker_messages, stats.network_bytes,
        stats.elapsed_seconds * 1e3
    );
    println!(
        "traffic ratio Pregel/HGPA = {:.0}x",
        stats.network_bytes as f64 / report.total_bytes() as f64
    );

    // Both computed the same vector.
    let max_err = (0..g.node_count() as u32)
        .map(|v| (report.result.get(v) - ppv.get(v)).abs())
        .fold(0.0f64, f64::max);
    println!("max |HGPA - Pregel| = {max_err:.2e}");
    // Both ran at ε = 1e-4; their errors are independent and can add.
    assert!(max_err < 5e-3);
    assert!(stats.network_bytes > report.total_bytes());
}
