//! One machine of the socket-transport PPR cluster, as a process.
//!
//! Spawned by the coordinator's supervisor with its identity in the
//! `PPR_WORKER_*` environment (machine id, coordinator address, `.pprx`
//! snapshot path, optional chaos directive). Everything interesting
//! lives in `ppr_serve::worker`; this shell exists so integration tests
//! get a `CARGO_BIN_EXE_ppr-worker` path to hand the supervisor.

fn main() -> std::io::Result<()> {
    ppr_serve::worker::run_from_env()
}
