#![warn(missing_docs)]

//! # exact-ppr
//!
//! A production-quality Rust reproduction of *“Distributed Algorithms on
//! Exact Personalized PageRank”* (Guo, Cao, Cong, Lu, Lin — SIGMOD 2017).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — CSR graphs, virtual-subgraph views, generators, IO.
//! * [`partition`] — METIS-like multilevel partitioner, König/greedy hub
//!   (vertex-separator) selection, hierarchical partition trees.
//! * [`core`] — PPV kernels (power iteration, selective expansion, skeleton
//!   columns), the Jeh–Widom decomposition, and the paper's GPA and HGPA
//!   indexes.
//! * [`cluster`] — a simulated coordinator-based share-nothing cluster with
//!   byte-accurate communication accounting, deterministic fault injection,
//!   and retry/hedging at the fan-out boundary.
//! * [`serve`] — the query-serving layer: request batching, a
//!   byte-accounted LRU PPV cache, exact top-k over either index, and
//!   admission control with graceful degradation to bounded-precision
//!   answers under overload or machine failure.
//! * [`baselines`] — Pregel-like and Blogel-like BSP engines, a
//!   FastPPV-style approximate method, and a Monte Carlo estimator.
//! * [`metrics`] — L1/L∞ norms, Precision@k, RAG@k, Kendall's τ.
//! * [`workload`] — named synthetic stand-ins for the paper's datasets.
//!
//! ## Quickstart
//!
//! ```
//! use exact_ppr::prelude::*;
//!
//! // A small community-structured graph.
//! let graph = hierarchical_sbm(&HsbmConfig { nodes: 200, ..Default::default() }, 42);
//! // Build the hierarchical index (the paper's HGPA, §4).
//! let config = PprConfig { alpha: 0.15, epsilon: 1e-6, ..Default::default() };
//! let index = HgpaIndex::build(&graph, &config, &HgpaBuildOptions::default());
//! // Query: exact PPV of node 0, reconstructed from partial + skeleton vectors.
//! let ppv = index.query(0);
//! assert!(ppv.l1_norm() <= 1.0 + 1e-9);
//! ```

pub use ppr_baselines as baselines;
pub use ppr_cluster as cluster;
pub use ppr_core as core;
pub use ppr_graph as graph;
pub use ppr_metrics as metrics;
pub use ppr_partition as partition;
pub use ppr_serve as serve;
pub use ppr_wire as wire;
pub use ppr_workload as workload;

/// Convenient glob import surface for examples and downstream users.
pub mod prelude {
    pub use ppr_baselines::{
        blogel::BlogelPpr, fastppv::FastPpv, monte_carlo::MonteCarloPpr, pregel::PregelPpr,
    };
    pub use ppr_cluster::{
        Cluster, ClusterConfig, FanoutOutcome, FaultPlan, NetworkModel, ParallelismMode,
        ResilienceConfig, SocketCluster, SocketConfig,
    };
    pub use ppr_core::{
        gpa::{GpaBuildOptions, GpaIndex},
        hgpa::{HgpaBuildOptions, HgpaIndex, QuerySession},
        incremental::{MaintenanceEngine, UpdateError, UpdateStats},
        persist::{
            load_gpa_file, load_hgpa_file, load_index_file, save_gpa_file, save_hgpa_file,
            PersistedIndex,
        },
        power::{global_pagerank, power_iteration, DanglingPolicy},
        sparse::SparseVector,
        PprConfig,
    };
    pub use ppr_graph::{
        generators::{gnp_directed, hierarchical_sbm, HsbmConfig},
        Adjacency, CsrGraph, EdgeUpdate, GraphBuilder, GraphDelta, NodeId, NodeUpdate,
    };
    pub use ppr_metrics::{avg_l1, kendall_tau_top_k, l_inf, precision_at_k, rag_at_k};
    pub use ppr_serve::{
        Answer, ArrivalPattern, ColdStart, Degrader, DynamicPprServer, OpenLoopConfig,
        OpenLoopReport, PprServer, Request, Response, ServeConfig, ServeEvent, ServiceModel,
        ShardedPprServer,
    };
    pub use ppr_workload::{
        fault_script, Dataset, DatasetSpec, FaultScript, MixedEvent, MixedStream,
        MixedStreamConfig, ZipfQueryStream,
    };
}
