#![deny(missing_docs)]

//! Accuracy metrics used in the paper's evaluation (§6.1, §6.2.6, §6.2.10).
//!
//! * [`avg_l1`] / [`l_inf`] — vector-difference norms against the power
//!   iteration reference (Figure 19, Figure 25).
//! * [`precision_at_k`] — overlap of top-k node sets (Figure 26).
//! * [`rag_at_k`] — Relative Aggregated Goodness [Chakrabarti et al.]:
//!   how much exact PPV mass the approximate top-k captures relative to
//!   the best possible k nodes (Figure 26's "RAG").
//! * [`kendall_tau_top_k`] — fraction of correctly ordered pairs among the
//!   exact top-k, the "percentage of the correct node pair order" of
//!   §6.2.10 (ties counted half).
//!
//! All functions accept plain score slices indexed by node id, decoupling
//! the metrics from the vector representations of the other crates.

/// Average L1 distance: `Σ_v |a(v) − b(v)| / n` (the paper's `L1_avg`).
pub fn avg_l1(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must share the id space");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
    sum / a.len() as f64
}

/// L∞ distance: `max_v |a(v) − b(v)|`.
pub fn l_inf(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must share the id space");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Node ids of the k largest scores, descending (ties by id ascending —
/// the deterministic tiebreak every ranking metric here assumes).
pub fn top_k_ids(scores: &[f64], k: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..scores.len() as u32).collect();
    ids.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    ids.truncate(k);
    ids
}

/// Precision@k: `|top_k(approx) ∩ top_k(exact)| / k`.
pub fn precision_at_k(exact: &[f64], approx: &[f64], k: usize) -> f64 {
    assert!(k > 0);
    let te = top_k_ids(exact, k);
    let ta = top_k_ids(approx, k);
    let set: std::collections::HashSet<u32> = te.into_iter().collect();
    let hits = ta.iter().filter(|id| set.contains(id)).count();
    hits as f64 / k.min(exact.len()).max(1) as f64
}

/// Relative Aggregated Goodness@k: exact mass captured by the approximate
/// top-k relative to the exact top-k's mass. 1.0 means the approximate
/// ranking loses nothing that matters.
pub fn rag_at_k(exact: &[f64], approx: &[f64], k: usize) -> f64 {
    assert!(k > 0);
    let ta = top_k_ids(approx, k);
    let te = top_k_ids(exact, k);
    let got: f64 = ta.iter().map(|&v| exact[v as usize]).sum();
    let best: f64 = te.iter().map(|&v| exact[v as usize]).sum();
    if best == 0.0 {
        1.0
    } else {
        got / best
    }
}

/// Kendall-style pair-order agreement over the exact top-k: the fraction
/// of strictly-ordered exact pairs that the approximate scores order the
/// same way (ties in the approximate scores count half).
pub fn kendall_tau_top_k(exact: &[f64], approx: &[f64], k: usize) -> f64 {
    let ids = top_k_ids(exact, k);
    let mut pairs = 0.0f64;
    let mut agree = 0.0f64;
    for i in 0..ids.len() {
        for j in i + 1..ids.len() {
            let (a, b) = (ids[i], ids[j]);
            let (ea, eb) = (exact[a as usize], exact[b as usize]);
            if ea == eb {
                continue; // unordered in the reference: skip
            }
            pairs += 1.0;
            let (xa, xb) = (approx[a as usize], approx[b as usize]);
            if (ea > eb && xa > xb) || (ea < eb && xa < xb) {
                agree += 1.0;
            } else if xa == xb {
                agree += 0.5;
            }
        }
    }
    if pairs == 0.0 {
        1.0
    } else {
        agree / pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_basic() {
        let a = [0.5, 0.3, 0.2];
        let b = [0.4, 0.3, 0.1];
        assert!((avg_l1(&a, &b) - 0.2 / 3.0).abs() < 1e-12);
        assert!((l_inf(&a, &b) - 0.1).abs() < 1e-12);
        assert_eq!(avg_l1(&a, &a), 0.0);
        assert_eq!(l_inf(&a, &a), 0.0);
    }

    #[test]
    fn top_k_deterministic_ties() {
        let s = [0.5, 0.5, 0.1, 0.9];
        assert_eq!(top_k_ids(&s, 3), vec![3, 0, 1]);
    }

    #[test]
    fn precision_perfect_and_disjoint() {
        let exact = [0.9, 0.8, 0.1, 0.0];
        assert_eq!(precision_at_k(&exact, &exact, 2), 1.0);
        let flipped = [0.0, 0.1, 0.8, 0.9];
        assert_eq!(precision_at_k(&exact, &flipped, 2), 0.0);
    }

    #[test]
    fn rag_rewards_mass_not_order() {
        let exact = [0.5, 0.4, 0.05, 0.05];
        // Approx swaps the top two: same set, RAG = 1.
        let approx = [0.4, 0.5, 0.05, 0.05];
        assert!((rag_at_k(&exact, &approx, 2) - 1.0).abs() < 1e-12);
        // Approx promotes a negligible node into top-2.
        let bad = [0.5, 0.0, 0.4, 0.05];
        let rag = rag_at_k(&exact, &bad, 2);
        assert!(rag < 0.7, "{rag}");
    }

    #[test]
    fn kendall_detects_swaps() {
        let exact = [0.9, 0.6, 0.3, 0.1];
        assert_eq!(kendall_tau_top_k(&exact, &exact, 4), 1.0);
        let reversed = [0.1, 0.3, 0.6, 0.9];
        assert_eq!(kendall_tau_top_k(&exact, &reversed, 4), 0.0);
        // One adjacent swap among 4 items: 5/6 pairs still agree.
        let swapped = [0.9, 0.3, 0.6, 0.1];
        assert!((kendall_tau_top_k(&exact, &swapped, 4) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_ties_count_half() {
        let exact = [0.9, 0.6];
        let tied = [0.5, 0.5];
        assert_eq!(kendall_tau_top_k(&exact, &tied, 2), 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        let empty: [f64; 0] = [];
        assert_eq!(avg_l1(&empty, &empty), 0.0);
        let flat = [0.25, 0.25];
        assert_eq!(kendall_tau_top_k(&flat, &flat, 2), 1.0); // no ordered pairs
        assert_eq!(rag_at_k(&[0.0, 0.0], &[0.0, 0.0], 1), 1.0);
    }
}
