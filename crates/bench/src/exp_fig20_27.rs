//! Figure 20: HGPA scalability over the Meetup series M1–M5 (runtime,
//! space, offline; 10 machines) and Appendix A / Figure 27: the same
//! series on the Pregel-like and Blogel-like engines — runtime and
//! communication growing with graph size while HGPA stays flat and cheap.

use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::{dataset_graph, Profile};
use ppr_baselines::{BlogelPpr, PregelPpr};
use ppr_cluster::Cluster;
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::PprConfig;
use ppr_workload::{query_nodes, Dataset};

/// One Meetup-graph measurement.
pub struct ScalePoint {
    /// Graph label (M1–M5).
    pub name: &'static str,
    /// Node count actually used.
    pub nodes: usize,
    /// Edge count actually used.
    pub edges: usize,
    /// HGPA mean query runtime, seconds.
    pub hgpa_runtime: f64,
    /// HGPA max per-machine space, bytes.
    pub hgpa_space: u64,
    /// HGPA max per-machine offline, seconds.
    pub hgpa_offline: f64,
    /// HGPA mean per-query coordinator traffic, bytes.
    pub hgpa_network: u64,
    /// Pregel-like mean runtime, seconds.
    pub pregel_runtime: f64,
    /// Pregel-like mean traffic, bytes.
    pub pregel_network: u64,
    /// Blogel-like mean runtime, seconds.
    pub blogel_runtime: f64,
    /// Blogel-like mean traffic, bytes.
    pub blogel_network: u64,
}

/// Measure all Meetup graphs.
pub fn sweep(profile: &Profile) -> Vec<ScalePoint> {
    let machines = 10; // the paper fixes 10 for this study
    let cfg = PprConfig::default();
    let cluster = Cluster::with_default_network();

    Dataset::meetup_series()
        .into_iter()
        .map(|d| {
            let g = dataset_graph(d, profile);
            let queries = query_nodes(&g, profile.queries.min(5), 31);
            let (idx, off) = HgpaIndex::build_distributed(
                &g,
                &cfg,
                &HgpaBuildOptions {
                    machines,
                    ..Default::default()
                },
            );
            let reports = cluster.query_batch(&idx, &queries);
            let nq = reports.len().max(1);

            let pregel = PregelPpr::new(&g, machines);
            let blogel = BlogelPpr::new(&g, machines, machines * 2);
            let (mut prt, mut pnet, mut brt, mut bnet) = (0.0, 0u64, 0.0, 0u64);
            for &q in &queries {
                let (_, ps) = pregel.query(q, &cfg);
                let (_, bs) = blogel.query(q, &cfg);
                prt += ps.elapsed_seconds;
                pnet += ps.network_bytes;
                brt += bs.elapsed_seconds;
                bnet += bs.network_bytes;
            }
            let nqf = queries.len().max(1) as f64;

            ScalePoint {
                name: d.name(),
                nodes: g.node_count(),
                edges: g.edge_count(),
                hgpa_runtime: reports.iter().map(|r| r.runtime_seconds()).sum::<f64>()
                    / nq as f64,
                hgpa_space: idx.storage_bytes_per_machine().into_iter().max().unwrap_or(0),
                hgpa_offline: off.max_machine_seconds(),
                hgpa_network: reports.iter().map(|r| r.total_bytes()).sum::<u64>() / nq as u64,
                pregel_runtime: prt / nqf,
                pregel_network: pnet / queries.len().max(1) as u64,
                blogel_runtime: brt / nqf,
                blogel_network: bnet / queries.len().max(1) as u64,
            }
        })
        .collect()
}

/// Print Figures 20 and 27.
pub fn run(profile: &Profile) {
    let points = sweep(profile);

    let mut t20 = Table::new(
        "Figure 20: HGPA scalability on Meetup (10 machines)",
        &["Graph", "nodes", "edges", "runtime (a)", "space (b)", "offline (c)"],
    );
    for p in &points {
        t20.row(vec![
            p.name.into(),
            p.nodes.to_string(),
            p.edges.to_string(),
            fmt_secs(p.hgpa_runtime),
            fmt_bytes(p.hgpa_space),
            fmt_secs(p.hgpa_offline),
        ]);
    }
    t20.print();

    let mut t27 = Table::new(
        "Figure 27 (App. A): engines on Meetup — runtime / communication",
        &[
            "Graph",
            "HGPA rt",
            "Pregel+ rt",
            "Blogel rt",
            "HGPA comm",
            "Pregel+ comm",
            "Blogel comm",
        ],
    );
    for p in &points {
        t27.row(vec![
            p.name.into(),
            fmt_secs(p.hgpa_runtime),
            fmt_secs(p.pregel_runtime),
            fmt_secs(p.blogel_runtime),
            fmt_bytes(p.hgpa_network),
            fmt_bytes(p.pregel_network),
            fmt_bytes(p.blogel_network),
        ]);
    }
    t27.print();
    println!(
        "paper shape: engine costs grow ~linearly with |E|; HGPA communication stays \
         orders of magnitude below Pregel+'s."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hgpa_communication_beats_pregel_on_every_graph() {
        let profile = Profile {
            node_cap: Some(800),
            queries: 2,
            ..Profile::quick()
        };
        let points = sweep(&profile);
        assert_eq!(points.len(), 5);
        for p in &points {
            assert!(
                p.hgpa_network < p.pregel_network,
                "{}: HGPA {} vs Pregel {}",
                p.name,
                p.hgpa_network,
                p.pregel_network
            );
        }
    }
}
