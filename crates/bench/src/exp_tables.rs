//! Tables 2–5 (hub nodes per hierarchy level, one table per dataset) and
//! Table 6 (Meetup graph sizes for the scalability study).

use crate::report::Table;
use crate::{dataset_graph, Profile};
use ppr_partition::quality::flat_quality;
use ppr_partition::{flat_partition, CoverAlgorithm, Hierarchy, HierarchyConfig, PartitionConfig};
use ppr_workload::Dataset;

/// Print Tables 2–5 and Table 6, plus the hub-cover ablation
/// (DESIGN.md §7: exact König vs greedy vs matching 2-approx).
pub fn run(profile: &Profile) {
    for d in Dataset::MAIN {
        let g = dataset_graph(d, profile);
        let h = Hierarchy::build(&g, &HierarchyConfig::default());
        let per_level = h.hubs_per_level();

        let mut t = Table::new(
            format!(
                "Tables 2–5 [{}]: hub nodes per level ({} nodes, {} edges, {} levels)",
                d.name(),
                g.node_count(),
                g.edge_count(),
                h.depth
            ),
            &["level", "hub nodes"],
        );
        for (lvl, &count) in per_level.iter().enumerate() {
            t.row(vec![lvl.to_string(), count.to_string()]);
        }
        t.row(vec![
            "total".into(),
            format!("{} ({:.2}% of |V|)", h.total_hubs(), 100.0 * h.total_hubs() as f64 / g.node_count() as f64),
        ]);
        t.print();
    }

    let mut t6 = Table::new(
        "Table 6: Meetup graph sizes (scaled stand-ins)",
        &["Graph ID", "# Nodes", "# Edges", "paper nodes", "paper edges"],
    );
    for d in Dataset::meetup_series() {
        let spec = d.spec();
        let g = dataset_graph(d, profile);
        t6.row(vec![
            spec.name.to_string(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
            spec.paper_nodes.to_string(),
            spec.paper_edges.to_string(),
        ]);
    }
    t6.print();

    // Ablation: hub-cover algorithm vs separator size (2-way cut on Web).
    let g = dataset_graph(Dataset::Web, profile);
    let mut ta = Table::new(
        "Ablation [Web]: hub-cover algorithm (2-way cut)",
        &["cover", "hubs", "hub fraction", "balance"],
    );
    for (name, algo) in [
        ("König (exact)", CoverAlgorithm::KonigExact),
        ("greedy", CoverAlgorithm::Greedy),
        ("matching 2-approx", CoverAlgorithm::Matching),
    ] {
        let fp = flat_partition(&g, 2, algo, &PartitionConfig::default());
        let q = flat_quality(&g, &fp);
        ta.row(vec![
            name.into(),
            q.hubs.to_string(),
            format!("{:.2}%", 100.0 * q.hub_fraction),
            format!("{:.3}", q.balance),
        ]);
    }
    ta.print();
    println!("shape: König ≤ greedy ≤ matching on separator size (exactness is unaffected).");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_fraction_is_small_on_all_datasets() {
        // The paper's core premise (Tables 2–5): |H| << |V|.
        let profile = Profile {
            node_cap: Some(1200),
            ..Profile::quick()
        };
        for d in Dataset::MAIN {
            let g = dataset_graph(d, &profile);
            let h = Hierarchy::build(&g, &HierarchyConfig::default());
            let frac = h.total_hubs() as f64 / g.node_count() as f64;
            assert!(frac < 0.45, "{}: hub fraction {frac}", d.name());
        }
    }
}
