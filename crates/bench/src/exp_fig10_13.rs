//! Figures 10–13: HGPA vs number of machines (2–10) on Web, Youtube, PLD.
//!
//! * Fig. 10 — query runtime drops ~linearly with machines (load balance);
//! * Fig. 11 — max per-machine space drops with machines;
//! * Fig. 12 — max per-machine offline time drops with machines;
//! * Fig. 13 — coordinator traffic *grows* with machines (Theorem 4).

use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::{dataset_graph, Profile};
use ppr_cluster::Cluster;
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::PprConfig;
use ppr_partition::{Hierarchy, HierarchyConfig};
use ppr_workload::{query_nodes, Dataset};

/// One sweep point.
pub struct SweepPoint {
    /// Machine count.
    pub machines: usize,
    /// Mean query runtime, seconds.
    pub runtime: f64,
    /// Max per-machine storage, bytes.
    pub space: u64,
    /// Max per-machine offline seconds.
    pub offline: f64,
    /// Mean per-query coordinator traffic, bytes.
    pub network: u64,
}

/// Sweep machine counts for one dataset (hierarchy built once).
pub fn sweep(d: Dataset, profile: &Profile) -> Vec<SweepPoint> {
    let g = dataset_graph(d, profile);
    let cfg = PprConfig::default();
    let hierarchy = Hierarchy::build(&g, &HierarchyConfig::default());
    let queries = query_nodes(&g, profile.queries, 13);
    let cluster = Cluster::with_default_network();

    profile
        .machine_sweep
        .iter()
        .map(|&machines| {
            let (idx, off) = HgpaIndex::build_distributed_with_hierarchy(
                &g,
                &cfg,
                &HgpaBuildOptions {
                    machines,
                    ..Default::default()
                },
                hierarchy.clone(),
            );
            let reports = cluster.query_batch(&idx, &queries);
            let nq = reports.len().max(1);
            SweepPoint {
                machines,
                runtime: reports.iter().map(|r| r.runtime_seconds()).sum::<f64>() / nq as f64,
                space: idx.storage_bytes_per_machine().into_iter().max().unwrap_or(0),
                offline: off.max_machine_seconds(),
                network: reports.iter().map(|r| r.total_bytes()).sum::<u64>() / nq as u64,
            }
        })
        .collect()
}

/// Print Figures 10–13.
pub fn run(profile: &Profile) {
    for d in [Dataset::Web, Dataset::Youtube, Dataset::Pld] {
        let points = sweep(d, profile);
        let mut t = Table::new(
            format!(
                "Figures 10–13 [{}]: HGPA vs number of machines",
                d.name()
            ),
            &[
                "machines",
                "runtime (Fig10)",
                "max space (Fig11)",
                "offline (Fig12)",
                "comm/query (Fig13)",
            ],
        );
        for p in &points {
            t.row(vec![
                p.machines.to_string(),
                fmt_secs(p.runtime),
                fmt_bytes(p.space),
                fmt_secs(p.offline),
                fmt_bytes(p.network),
            ]);
        }
        t.print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trends_match_paper() {
        let profile = Profile {
            node_cap: Some(1500),
            queries: 4,
            machine_sweep: &[2, 6, 10],
            name: "test",
        };
        let points = sweep(Dataset::Web, &profile);
        assert_eq!(points.len(), 3);
        // Fig 11: space shrinks with machines.
        assert!(points[2].space < points[0].space);
        // Fig 13: communication grows with machines.
        assert!(points[2].network >= points[0].network);
        // Fig 12: offline max-machine time should not grow substantially;
        // with tiny work units thread noise dominates, so only sanity-check
        // positivity here (the full profile shows the paper's trend).
        assert!(points.iter().all(|p| p.offline >= 0.0));
    }
}
