//! Figure 18: effect of the tolerance ε on HGPA (runtime, space, offline,
//! communication, on Web) and Figure 19: ℓ-norm distance from the power
//! iteration reference across ε (Email, Web).

use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::{dataset_graph, Profile};
use ppr_cluster::Cluster;
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::power::power_iteration;
use ppr_core::PprConfig;
use ppr_metrics::{avg_l1, l_inf};
use ppr_workload::{query_nodes, Dataset};

/// One tolerance point (Figure 18).
pub struct TolerancePoint {
    /// Tolerance ε.
    pub epsilon: f64,
    /// Mean query runtime, seconds.
    pub runtime: f64,
    /// Total stored entries.
    pub space_entries: usize,
    /// Max per-machine offline seconds.
    pub offline: f64,
    /// Mean per-query coordinator bytes.
    pub network: u64,
}

/// Accuracy point (Figure 19).
pub struct AccuracyPoint {
    /// Tolerance ε.
    pub epsilon: f64,
    /// Mean average-L1 distance to power iteration at the same ε.
    pub avg_l1: f64,
    /// Mean L∞ distance.
    pub l_inf: f64,
}

/// Sweep tolerances on one dataset; returns Figure 18 + Figure 19 points.
pub fn sweep(
    d: Dataset,
    epsilons: &[f64],
    profile: &Profile,
) -> (Vec<TolerancePoint>, Vec<AccuracyPoint>) {
    let g = dataset_graph(d, profile);
    let queries = query_nodes(&g, profile.queries.min(6), 29);
    let cluster = Cluster::with_default_network();
    let mut tol = Vec::new();
    let mut acc = Vec::new();

    for &epsilon in epsilons {
        let cfg = PprConfig {
            epsilon,
            ..Default::default()
        };
        let (idx, off) = HgpaIndex::build_distributed(
            &g,
            &cfg,
            &HgpaBuildOptions {
                machines: 6,
                ..Default::default()
            },
        );
        let reports = cluster.query_batch(&idx, &queries);
        let nq = reports.len().max(1);
        tol.push(TolerancePoint {
            epsilon,
            runtime: reports.iter().map(|r| r.runtime_seconds()).sum::<f64>() / nq as f64,
            space_entries: idx.stored_entries(),
            offline: off.max_machine_seconds(),
            network: reports.iter().map(|r| r.total_bytes()).sum::<u64>() / nq as u64,
        });

        // Figure 19: compare against power iteration at the same ε.
        let (mut s_l1, mut s_linf) = (0.0, 0.0);
        for &q in &queries {
            let reference = power_iteration(&g, q, &cfg);
            let got = idx.query(q).to_dense(g.node_count());
            s_l1 += avg_l1(&reference, &got);
            s_linf += l_inf(&reference, &got);
        }
        acc.push(AccuracyPoint {
            epsilon,
            avg_l1: s_l1 / queries.len() as f64,
            l_inf: s_linf / queries.len() as f64,
        });
    }
    (tol, acc)
}

/// Print Figures 18 and 19.
pub fn run(profile: &Profile) {
    let eps: &[f64] = if profile.node_cap.is_some() {
        &[1e-2, 1e-3, 1e-4, 1e-5]
    } else {
        &[1e-2, 1e-3, 1e-4, 1e-5, 1e-6]
    };

    let (tol, acc_web) = sweep(Dataset::Web, eps, profile);
    let mut t = Table::new(
        "Figure 18 [Web]: effect of tolerance ε on HGPA",
        &["epsilon", "runtime (a)", "stored entries (b)", "offline (c)", "comm/query (d)"],
    );
    for p in &tol {
        t.row(vec![
            format!("{:.0e}", p.epsilon),
            fmt_secs(p.runtime),
            p.space_entries.to_string(),
            fmt_secs(p.offline),
            fmt_bytes(p.network),
        ]);
    }
    t.print();

    let (_, acc_email) = sweep(Dataset::Email, eps, profile);
    for (name, acc) in [("Email", &acc_email), ("Web", &acc_web)] {
        let mut t19 = Table::new(
            format!("Figure 19 [{name}]: ℓ-norm distance vs power iteration"),
            &["epsilon", "avg L1", "L_inf"],
        );
        for p in acc {
            t19.row(vec![
                format!("{:.0e}", p.epsilon),
                format!("{:.3e}", p.avg_l1),
                format!("{:.3e}", p.l_inf),
            ]);
        }
        t19.print();
    }
    println!("paper shape: all four costs grow as ε shrinks; ℓ-norms track ε's magnitude.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_epsilon_larger_space_better_accuracy() {
        let profile = Profile {
            node_cap: Some(1000),
            queries: 3,
            ..Profile::quick()
        };
        let (tol, acc) = sweep(Dataset::Email, &[1e-2, 1e-5], &profile);
        assert!(
            tol[1].space_entries >= tol[0].space_entries,
            "space: {} vs {}",
            tol[1].space_entries,
            tol[0].space_entries
        );
        assert!(
            acc[1].l_inf <= acc[0].l_inf + 1e-12,
            "accuracy: {} vs {}",
            acc[1].l_inf,
            acc[0].l_inf
        );
    }
}
