//! Plain-text table rendering for experiment output.

/// A printable experiment table: header + aligned rows.
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title (include the paper figure/table number).
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "column mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds as adaptive ms/s text.
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} s", s)
    }
}

/// Format bytes as adaptive KB/MB text.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 * 1024 {
        format!("{:.1} KB", b as f64 / 1024.0)
    } else {
        format!("{:.2} MB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "long_column"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long_column"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(0.0123), "12.30 ms");
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
    }
}
