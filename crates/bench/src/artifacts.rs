//! `repro index-save` / `repro index-load` — the persisted-index
//! workflow, and the `PPR_INDEX_PATH` load-or-build helper the serving
//! scenario uses to cold-start.
//!
//! `index-save` builds both indexes for the serving scenario's graph
//! (Web stand-in, 6 machines — the paper's §6.1 default) and writes
//! `gpa.pprx` / `hgpa.pprx` into the artifact directory. `index-load`
//! is the other half of the lifecycle: it loads whatever artifacts are
//! there **without building anything**, boots a [`ppr_serve::ColdStart`]
//! server over each, and drives a small query batch through it — the
//! full save → load → serve path, exercised by CI.
//!
//! The artifact directory is `PPR_INDEX_PATH` (default
//! `target/ppr-index`). When `PPR_INDEX_PATH` is set, `repro serve`
//! also cold-starts from it via [`load_or_build_hgpa`] /
//! [`load_or_build_gpa`]: a valid artifact whose graph size, machine
//! count, and PPR configuration match is served as-is; anything else
//! (missing file, corrupt file, stale knobs) falls back to a fresh
//! build which is then saved back, so the next run cold-starts.

use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::{dataset_graph, default_hgpa_opts, Profile};
use ppr_core::gpa::{GpaBuildOptions, GpaIndex};
use ppr_core::hgpa::HgpaIndex;
use ppr_core::parallel::Stopwatch;
use ppr_core::persist;
use ppr_core::PprConfig;
use ppr_graph::CsrGraph;
use ppr_serve::{ColdStart, Request, ServeConfig};
use ppr_workload::{Dataset, ZipfQueryStream};
use std::path::PathBuf;

/// The artifact directory: `PPR_INDEX_PATH`, default `target/ppr-index`.
pub fn index_dir() -> PathBuf {
    std::env::var("PPR_INDEX_PATH")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/ppr-index"))
}

/// File name of the GPA artifact inside [`index_dir`].
pub const GPA_FILE: &str = "gpa.pprx";
/// File name of the HGPA artifact inside [`index_dir`].
pub const HGPA_FILE: &str = "hgpa.pprx";

/// Where a serving index came from (printed as provenance).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Loaded from a matching on-disk artifact.
    Loaded,
    /// Built fresh (no `PPR_INDEX_PATH`, no artifact, or a stale one)
    /// and saved back to the artifact directory when one is configured.
    Built,
}

fn artifact_matches(
    node_count: usize,
    machines: usize,
    config: &PprConfig,
    g: &CsrGraph,
    want_machines: usize,
    want_cfg: &PprConfig,
) -> bool {
    node_count == g.node_count() && machines == want_machines && config == want_cfg
}

/// Load the HGPA artifact if `PPR_INDEX_PATH` is set and the stored
/// index matches the requested graph/config; otherwise build fresh (and
/// save back when a directory is configured). Never panics on a bad
/// artifact — a corrupt file is a cache miss, not a crash.
pub fn load_or_build_hgpa(g: &CsrGraph, cfg: &PprConfig, machines: usize) -> (HgpaIndex, Provenance) {
    let dir = std::env::var("PPR_INDEX_PATH").ok().map(PathBuf::from);
    if let Some(dir) = &dir {
        let path = dir.join(HGPA_FILE);
        match persist::load_hgpa_file(&path) {
            Ok(idx) if artifact_matches(idx.node_count(), idx.machines(), idx.config(), g, machines, cfg) => {
                println!("serve: cold-started HGPA from {}", path.display());
                return (idx, Provenance::Loaded);
            }
            Ok(_) => println!(
                "serve: artifact {} is for a different graph/config; rebuilding",
                path.display()
            ),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => println!("serve: cannot load {}: {e}; rebuilding", path.display()),
        }
    }
    let idx = HgpaIndex::build(g, cfg, &default_hgpa_opts(machines));
    if let Some(dir) = &dir {
        save_into(dir, HGPA_FILE, |p| persist::save_hgpa_file(&idx, p));
    }
    (idx, Provenance::Built)
}

/// GPA twin of [`load_or_build_hgpa`].
pub fn load_or_build_gpa(
    g: &CsrGraph,
    cfg: &PprConfig,
    opts: &GpaBuildOptions,
) -> (GpaIndex, Provenance) {
    let dir = std::env::var("PPR_INDEX_PATH").ok().map(PathBuf::from);
    if let Some(dir) = &dir {
        let path = dir.join(GPA_FILE);
        match persist::load_gpa_file(&path) {
            Ok(idx)
                if artifact_matches(
                    idx.node_count(),
                    idx.machines(),
                    idx.config(),
                    g,
                    opts.machines,
                    cfg,
                ) =>
            {
                println!("serve: cold-started GPA from {}", path.display());
                return (idx, Provenance::Loaded);
            }
            Ok(_) => println!(
                "serve: artifact {} is for a different graph/config; rebuilding",
                path.display()
            ),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => println!("serve: cannot load {}: {e}; rebuilding", path.display()),
        }
    }
    let idx = GpaIndex::build(g, cfg, opts);
    if let Some(dir) = &dir {
        save_into(dir, GPA_FILE, |p| persist::save_gpa_file(&idx, p));
    }
    (idx, Provenance::Built)
}

fn save_into(dir: &std::path::Path, file: &str, save: impl FnOnce(&std::path::Path) -> std::io::Result<()>) {
    let path = dir.join(file);
    let result = std::fs::create_dir_all(dir).and_then(|()| save(&path));
    match result {
        Ok(()) => println!("serve: saved index artifact to {}", path.display()),
        Err(e) => println!("serve: cannot save {}: {e} (continuing in-memory)", path.display()),
    }
}

/// `repro index-save`: build both indexes and persist them.
pub fn run_save(profile: &Profile) {
    let dir = index_dir();
    let g = dataset_graph(Dataset::Web, profile);
    let cfg = PprConfig::default();
    let machines = 6; // paper default (§6.1), matching `repro serve`
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("index-save: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }

    let mut t = Table::new(
        format!("index-save: Web n={} -> {}", g.node_count(), dir.display()),
        &["index", "build", "save", "bytes on disk", "entries"],
    );

    let sw = Stopwatch::start();
    let gpa = GpaIndex::build(
        &g,
        &cfg,
        &GpaBuildOptions {
            subgraphs: 8,
            machines,
            parallelism: ppr_core::ParallelismMode::build_from_env(),
            ..Default::default()
        },
    );
    let build_s = sw.elapsed_seconds();
    let sw = Stopwatch::start();
    let path = dir.join(GPA_FILE);
    if let Err(e) = persist::save_gpa_file(&gpa, &path) {
        eprintln!("index-save: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    let save_s = sw.elapsed_seconds();
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    t.row(vec![
        "GPA".into(),
        fmt_secs(build_s),
        fmt_secs(save_s),
        fmt_bytes(bytes),
        gpa.stored_entries().to_string(),
    ]);

    let sw = Stopwatch::start();
    let hgpa = HgpaIndex::build(&g, &cfg, &default_hgpa_opts(machines));
    let build_s = sw.elapsed_seconds();
    let sw = Stopwatch::start();
    let path = dir.join(HGPA_FILE);
    if let Err(e) = persist::save_hgpa_file(&hgpa, &path) {
        eprintln!("index-save: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    let save_s = sw.elapsed_seconds();
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    t.row(vec![
        "HGPA".into(),
        fmt_secs(build_s),
        fmt_secs(save_s),
        fmt_bytes(bytes),
        hgpa.stored_entries().to_string(),
    ]);
    t.print();
}

/// `repro index-load`: cold-start both artifacts — no builder involved —
/// and serve a query batch from each (the save → load → serve path).
/// Exits non-zero if an artifact is missing, corrupt, or serves nothing.
pub fn run_load(profile: &Profile) {
    let dir = index_dir();
    let g = dataset_graph(Dataset::Web, profile);
    let mut t = Table::new(
        format!("index-load: {} (cold start, no rebuild)", dir.display()),
        &["artifact", "kind", "load", "nodes", "machines", "entries", "served", "sections"],
    );

    for file in [GPA_FILE, HGPA_FILE] {
        let path = dir.join(file);
        let sw = Stopwatch::start();
        let cold = match ColdStart::from_path(&path, ServeConfig::default()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("index-load: {}: {e}", path.display());
                eprintln!("index-load: run `repro index-save` first");
                std::process::exit(1);
            }
        };
        let load_s = sw.elapsed_seconds();

        // Section-table introspection straight off the file.
        let sections = std::fs::read(&path)
            .ok()
            .and_then(|bytes| persist::sections(&bytes).ok())
            .map_or_else(String::new, |secs| {
                secs.iter()
                    .map(|s| {
                        format!(
                            "{}:{}",
                            s.tag.iter().map(|&b| char::from(b)).collect::<String>().trim_end_matches('\0'),
                            fmt_bytes(s.len as u64)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            });

        // Serve a small Zipf batch through the cold-started server.
        let mut stream = ZipfQueryStream::new(&g, 1.1, 0xC01D);
        let requests: Vec<Request> = (0..32.min(profile.queries * 8).max(8))
            .map(|_| Request::Ppv(stream.next_query()))
            .collect();
        let mut server = cold.server();
        let outcome = server.run_batch(&requests);
        if outcome.responses.len() != requests.len() {
            eprintln!(
                "index-load: {} served {} of {} requests",
                path.display(),
                outcome.responses.len(),
                requests.len()
            );
            std::process::exit(1);
        }

        let index = cold.index();
        t.row(vec![
            file.into(),
            format!("{:?}", index.kind()),
            fmt_secs(load_s),
            index.node_count().to_string(),
            index.machines().to_string(),
            index.stored_entries().to_string(),
            outcome.responses.len().to_string(),
            sections,
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_dir_defaults_under_target() {
        // Can't set the env var (tests run concurrently); the default
        // branch is what CI's bench job relies on.
        if std::env::var("PPR_INDEX_PATH").is_err() {
            assert_eq!(index_dir(), PathBuf::from("target/ppr-index"));
        }
    }

    #[test]
    fn save_then_load_round_trips_through_files() {
        let profile = Profile {
            node_cap: Some(500),
            queries: 2,
            ..Profile::quick()
        };
        let g = dataset_graph(Dataset::Web, &profile);
        let cfg = PprConfig::default();
        let dir = std::env::temp_dir().join("ppr-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();

        let hgpa = HgpaIndex::build(&g, &cfg, &default_hgpa_opts(4));
        persist::save_hgpa_file(&hgpa, dir.join(HGPA_FILE)).unwrap();
        let cold = ColdStart::from_path(dir.join(HGPA_FILE), ServeConfig::default()).unwrap();
        assert_eq!(cold.index().node_count(), g.node_count());
        assert_eq!(cold.index().query(3), hgpa.query(3));
    }
}
