//! Figures 21–22: HGPA vs Pregel-like vs Blogel-like across machine
//! counts on Web and Youtube — runtime (Fig. 21) and communication
//! (Fig. 22). The BSP engines get *slower and chattier* with more
//! machines; HGPA gets faster and only modestly chattier.

use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::{dataset_graph, Profile};
use ppr_baselines::{BlogelPpr, PregelPpr};
use ppr_cluster::Cluster;
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::PprConfig;
use ppr_partition::{Hierarchy, HierarchyConfig};
use ppr_workload::{query_nodes, Dataset};

/// One machine-count point for the three systems.
pub struct EnginePoint {
    /// Machines/workers.
    pub machines: usize,
    /// HGPA mean runtime, seconds.
    pub hgpa_runtime: f64,
    /// Pregel-like mean runtime, seconds.
    pub pregel_runtime: f64,
    /// Blogel-like mean runtime, seconds.
    pub blogel_runtime: f64,
    /// HGPA mean traffic, bytes.
    pub hgpa_network: u64,
    /// Pregel-like mean traffic, bytes.
    pub pregel_network: u64,
    /// Blogel-like mean traffic, bytes.
    pub blogel_network: u64,
}

/// Sweep machine counts for one dataset.
pub fn sweep(d: Dataset, profile: &Profile) -> Vec<EnginePoint> {
    let g = dataset_graph(d, profile);
    let cfg = PprConfig::default();
    let hierarchy = Hierarchy::build(&g, &HierarchyConfig::default());
    let queries = query_nodes(&g, profile.queries.min(5), 37);
    let cluster = Cluster::with_default_network();

    profile
        .machine_sweep
        .iter()
        .map(|&machines| {
            let idx = HgpaIndex::build_with_hierarchy(
                &g,
                &cfg,
                &HgpaBuildOptions {
                    machines,
                    ..Default::default()
                },
                hierarchy.clone(),
            );
            let reports = cluster.query_batch(&idx, &queries);
            let nq = reports.len().max(1);

            let pregel = PregelPpr::new(&g, machines);
            let blogel = BlogelPpr::new(&g, machines, (machines * 2).max(2));
            let (mut prt, mut pnet, mut brt, mut bnet) = (0.0, 0u64, 0.0, 0u64);
            for &q in &queries {
                let (_, ps) = pregel.query(q, &cfg);
                prt += ps.elapsed_seconds;
                pnet += ps.network_bytes;
                let (_, bs) = blogel.query(q, &cfg);
                brt += bs.elapsed_seconds;
                bnet += bs.network_bytes;
            }
            let nqf = queries.len().max(1) as f64;

            EnginePoint {
                machines,
                hgpa_runtime: reports.iter().map(|r| r.runtime_seconds()).sum::<f64>()
                    / nq as f64,
                pregel_runtime: prt / nqf,
                blogel_runtime: brt / nqf,
                hgpa_network: reports.iter().map(|r| r.total_bytes()).sum::<u64>() / nq as u64,
                pregel_network: pnet / queries.len().max(1) as u64,
                blogel_network: bnet / queries.len().max(1) as u64,
            }
        })
        .collect()
}

/// Print Figures 21–22.
pub fn run(profile: &Profile) {
    for d in [Dataset::Web, Dataset::Youtube] {
        let points = sweep(d, profile);
        let mut t = Table::new(
            format!("Figures 21–22 [{}]: HGPA vs Pregel+ vs Blogel", d.name()),
            &[
                "machines",
                "HGPA rt",
                "Pregel+ rt",
                "Blogel rt",
                "HGPA comm",
                "Pregel+ comm",
                "Blogel comm",
            ],
        );
        for p in &points {
            t.row(vec![
                p.machines.to_string(),
                fmt_secs(p.hgpa_runtime),
                fmt_secs(p.pregel_runtime),
                fmt_secs(p.blogel_runtime),
                fmt_bytes(p.hgpa_network),
                fmt_bytes(p.pregel_network),
                fmt_bytes(p.blogel_network),
            ]);
        }
        t.print();
    }
    println!(
        "paper shape: HGPA communication is orders of magnitude below Pregel+; \
         Blogel sits between; engine traffic grows with machines."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hgpa_beats_engines_on_communication() {
        let profile = Profile {
            node_cap: Some(1200),
            queries: 3,
            machine_sweep: &[4],
            name: "test",
        };
        let points = sweep(Dataset::Web, &profile);
        let p = &points[0];
        assert!(
            p.hgpa_network < p.pregel_network,
            "HGPA {} vs Pregel {}",
            p.hgpa_network,
            p.pregel_network
        );
        assert!(
            p.blogel_network <= p.pregel_network,
            "Blogel {} vs Pregel {}",
            p.blogel_network,
            p.pregel_network
        );
    }
}
