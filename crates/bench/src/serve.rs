//! `repro serve` — the serving scenario (not a paper figure).
//!
//! Drives a Zipf-skewed query stream through [`ppr_serve::PprServer`]
//! over both GPA and HGPA on the Web stand-in and reports throughput,
//! p50/p99 latency, and cache hit rate — the serving-side view of the
//! indexes the paper only evaluates one query at a time. A no-cache HGPA
//! row isolates what the PPV cache buys.
//!
//! A second, **open-loop** phase then serves a *dynamic* workload: a
//! mixed read/write stream (Zipf queries interleaved with edge-update
//! batches) arrives Poisson-style on a virtual clock at a configurable
//! rate, driving a [`ppr_serve::DynamicPprServer`] that maintains the
//! index incrementally and invalidates the PPV cache fine-grained. Its
//! report adds what the closed loop cannot see: queueing delay — p50/p99
//! *sojourn* time (arrival → completion) against p50/p99 *service* time.
//!
//! Knobs (environment variables, all optional):
//!
//! * `PPR_SERVE_QUERIES` — total requests (default `50 × profile.queries`)
//! * `PPR_SERVE_BATCH`   — requests coalesced per fan-out round (16)
//! * `PPR_SERVE_ZIPF`    — Zipf exponent of the stream (1.1; 0 = uniform)
//! * `PPR_SERVE_CACHE_KB` — PPV cache capacity in KiB (16384)
//! * `PPR_SERVE_UPDATE_RATE` — open-loop: probability an event is an
//!   edge-update batch rather than a query (0.02)
//! * `PPR_SERVE_ARRIVAL_QPS` — open-loop: mean Poisson arrival rate in
//!   events per virtual second (600); 0 skips the open-loop phase
//! * `PPR_SERVE_SHARDS` — comma-separated worker/shard counts for the
//!   thread-scaling phase (`1,2,4,8`); empty skips the phase
//! * `PPR_INDEX_PATH` — artifact directory: cold-start the serving
//!   indexes from persisted `gpa.pprx` / `hgpa.pprx` files when they
//!   match the graph/config, building and saving them back otherwise
//!   (see `repro index-save` / `repro index-load`)
//! * `PPR_TRANSPORT` — `socket` adds the multi-process phase: the same
//!   closed-loop stream served over real worker processes (this binary
//!   re-invoked as `repro worker`), bit-identity and the shared byte
//!   formula asserted against the modeled transport, measured wire
//!   traffic reported next to the modeled network column
//! * `PPR_HEARTBEAT_MS` — socket phase: heartbeat sweep interval of the
//!   worker supervisor (default 500)
//!
//! A **thread-scaling phase** closes the report: the same request stream
//! through [`ppr_serve::ShardedPprServer`] at each `PPR_SERVE_SHARDS`
//! count (reader shards *and* cluster fan-out workers), wall-clock
//! timed, with throughput/p50/p99 and the speedup over one worker. On a
//! single-core host the speedup hovers near 1x — the phase measures the
//! hardware, not a model.

use crate::report::{fmt_bytes, Table};
use crate::{dataset_graph, Profile};
use ppr_cluster::{
    DistributedQueryable, ParallelismMode, SocketCluster, SocketConfig, SupervisorStats,
    WireMetrics,
};
use ppr_core::gpa::GpaBuildOptions;
use ppr_core::hgpa::HgpaIndex;
use ppr_core::PprConfig;
use ppr_graph::CsrGraph;
use ppr_serve::{
    run_open_loop, BatchOutcome, DynamicPprServer, OpenLoopConfig, OpenLoopReport, PprServer,
    Request, Response, ServeConfig, ServeEvent, ServiceModel, ShardedPprServer,
};
use ppr_workload::{Dataset, MixedEvent, MixedStream, MixedStreamConfig, ZipfQueryStream};
use std::sync::Arc;
use std::time::Duration;

/// Load-generator parameters (env-overridable; see module docs).
#[derive(Clone, Debug)]
pub struct ServeKnobs {
    /// Total requests driven through each server.
    pub queries: usize,
    /// Requests coalesced per fan-out round.
    pub batch: usize,
    /// Zipf exponent of the query stream.
    pub zipf: f64,
    /// PPV cache capacity in bytes.
    pub cache_bytes: u64,
    /// Open-loop phase: probability an event is an update batch.
    pub update_rate: f64,
    /// Open-loop phase: mean arrival rate (events per virtual second);
    /// zero disables the phase.
    pub arrival_qps: f64,
    /// Thread-scaling phase: worker/shard counts to sweep; empty
    /// disables the phase.
    pub shards: Vec<usize>,
    /// Run the multi-process socket phase (`PPR_TRANSPORT=socket`).
    pub socket: bool,
    /// Socket phase: supervisor heartbeat interval override
    /// (`PPR_HEARTBEAT_MS`); `None` keeps [`SocketConfig`]'s default.
    pub heartbeat_ms: Option<u64>,
}

impl ServeKnobs {
    /// Profile defaults, overridden by `PPR_SERVE_*` env vars.
    pub fn from_env(profile: &Profile) -> Self {
        let env_usize = |k: &str, d: usize| {
            std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
        };
        let env_f64 = |k: &str, d: f64| {
            std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
        };
        let shards = match std::env::var("PPR_SERVE_SHARDS") {
            Ok(v) => v
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&s| s >= 1)
                .collect(),
            Err(_) => vec![1, 2, 4, 8],
        };
        Self {
            // At least one request: the percentile report needs a sample.
            queries: env_usize("PPR_SERVE_QUERIES", profile.queries * 50).max(1),
            batch: env_usize("PPR_SERVE_BATCH", 16),
            zipf: env_f64("PPR_SERVE_ZIPF", 1.1),
            cache_bytes: env_usize("PPR_SERVE_CACHE_KB", 16 * 1024) as u64 * 1024,
            update_rate: env_f64("PPR_SERVE_UPDATE_RATE", 0.02),
            arrival_qps: env_f64("PPR_SERVE_ARRIVAL_QPS", 600.0),
            shards,
            socket: std::env::var("PPR_TRANSPORT")
                .map(|v| v.eq_ignore_ascii_case("socket"))
                .unwrap_or(false),
            heartbeat_ms: std::env::var("PPR_HEARTBEAT_MS")
                .ok()
                .and_then(|v| v.parse().ok()),
        }
    }
}

/// Measured outcome of one serving run.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Requests served.
    pub queries: usize,
    /// Total serving seconds (real compute + modeled wire time).
    pub seconds: f64,
    /// Requests per second.
    pub throughput_qps: f64,
    /// Median per-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency, milliseconds.
    pub p99_ms: f64,
    /// Fraction of distinct per-batch source lookups served from cache.
    pub hit_rate: f64,
    /// Distinct sources computed fresh via cluster rounds.
    pub fresh_sources: u64,
    /// Bytes shipped machine → coordinator across all rounds.
    pub round_bytes: u64,
    /// PPV bytes resident in the cache at the end.
    pub cache_bytes: u64,
}

/// Value at quantile `q ∈ [0, 1]` of an unsorted sample (nearest-rank).
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "empty sample");
    let mut s = samples.to_vec();
    s.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((q * (s.len() - 1) as f64).round() as usize).min(s.len() - 1);
    s[idx]
}

/// The request mix: mostly single-source PPVs, with top-k and small
/// preference-set queries mixed in at fixed phases (deterministic given
/// the stream), matching PPR's ranking/recommendation applications.
pub fn request_mix(stream: &mut ZipfQueryStream, count: usize) -> Vec<Request> {
    (0..count)
        .map(|i| match i % 10 {
            3 => {
                let a = stream.next_query();
                let b = stream.next_query();
                Request::Preference(vec![(a, 0.6), (b, 0.4)])
            }
            7 => Request::TopK {
                source: stream.next_query(),
                k: 20,
            },
            _ => Request::Ppv(stream.next_query()),
        })
        .collect()
}

/// Turn a mixed read/write stream into open-loop serve events, applying
/// the same request-shape mix as [`request_mix`] to the query side
/// (deterministic given the stream).
pub fn mixed_events(stream: &mut MixedStream, count: usize) -> Vec<ServeEvent> {
    let mut query_no = 0usize;
    (0..count)
        .map(|_| match stream.next_event() {
            MixedEvent::Update(batch) => ServeEvent::Update(batch),
            MixedEvent::Churn(delta) => ServeEvent::Churn(delta),
            MixedEvent::Query(u) => {
                query_no += 1;
                ServeEvent::Query(match query_no % 10 {
                    3 => Request::Preference(vec![(u, 0.6), (u / 2, 0.4)]),
                    7 => Request::TopK { source: u, k: 20 },
                    _ => Request::Ppv(u),
                })
            }
        })
        .collect()
}

/// Run the open-loop dynamic phase: Poisson arrivals of the mixed
/// read/write stream against a [`DynamicPprServer`] over `graph`.
pub fn measure_open_loop(
    graph: &CsrGraph,
    index: HgpaIndex,
    knobs: &ServeKnobs,
    service: ServiceModel,
) -> OpenLoopReport {
    let mut stream = MixedStream::new(
        graph,
        MixedStreamConfig {
            update_rate: knobs.update_rate,
            zipf_exponent: knobs.zipf,
            ..Default::default()
        },
        0xD1CE,
    );
    let events = mixed_events(&mut stream, knobs.queries);
    let mut server = DynamicPprServer::from_index(
        graph.clone(),
        index,
        ServeConfig {
            cache_capacity_bytes: knobs.cache_bytes,
            max_batch: knobs.batch,
            ..Default::default()
        },
    );
    run_open_loop(
        &mut server,
        &events,
        &OpenLoopConfig {
            arrival_rate: knobs.arrival_qps,
            seed: 0xBEA7,
            service,
            ..Default::default()
        },
    )
}

/// The shared closed-loop driver: feed `requests` batch by batch to
/// `run_batch`, pricing each request at its batch's real compute time
/// plus the round's modeled wire time (every request in a batch
/// completes when the batch does). Returns per-request latencies and the
/// total.
fn drive_batches(
    requests: &[Request],
    batch: usize,
    mut run_batch: impl FnMut(&[Request]) -> BatchOutcome,
) -> (Vec<f64>, f64) {
    let mut latencies = Vec::with_capacity(requests.len());
    let mut seconds = 0.0;
    for chunk in requests.chunks(batch.max(1)) {
        let out = run_batch(chunk);
        let latency = out.seconds + out.modeled_network_seconds;
        seconds += latency;
        latencies.extend(std::iter::repeat_n(latency, chunk.len()));
    }
    (latencies, seconds)
}

fn summarize(
    requests: usize,
    latencies: &[f64],
    seconds: f64,
    stats: &ppr_serve::ServeStats,
    cache_bytes: u64,
) -> ServeSummary {
    ServeSummary {
        queries: requests,
        seconds,
        throughput_qps: requests as f64 / seconds.max(1e-12),
        p50_ms: percentile(latencies, 0.50) * 1e3,
        p99_ms: percentile(latencies, 0.99) * 1e3,
        hit_rate: stats.source_hit_rate(),
        fresh_sources: stats.fresh_sources,
        round_bytes: stats.round_bytes,
        cache_bytes,
    }
}

/// Drive `requests` through a fresh (single-shard, sequential-assembly)
/// server over `index`.
pub fn measure<I: DistributedQueryable>(
    index: &I,
    requests: &[Request],
    knobs: &ServeKnobs,
) -> ServeSummary {
    let mut server = PprServer::new(
        index,
        ServeConfig {
            cache_capacity_bytes: knobs.cache_bytes,
            max_batch: knobs.batch,
            ..Default::default()
        },
    );
    let (latencies, seconds) = drive_batches(requests, knobs.batch, |b| server.run_batch(b));
    let stats = *server.stats();
    summarize(requests.len(), &latencies, seconds, &stats, server.cache_bytes())
}

/// Drive `requests` through a fresh [`ShardedPprServer`] with `workers`
/// reader shards and `workers` cluster fan-out threads (`workers == 1`
/// is the sequential fallback), wall-clock timed — the thread-scaling
/// measurement.
pub fn measure_sharded<I: DistributedQueryable>(
    index: &I,
    requests: &[Request],
    knobs: &ServeKnobs,
    workers: usize,
) -> ServeSummary {
    let mut server = ShardedPprServer::new(
        index,
        ServeConfig {
            cache_capacity_bytes: knobs.cache_bytes,
            max_batch: knobs.batch,
            shards: workers,
            parallelism: ParallelismMode::with_workers(workers),
            ..Default::default()
        },
    );
    let (latencies, seconds) = drive_batches(requests, knobs.batch, |b| server.run_batch(b));
    let stats = *server.stats();
    summarize(requests.len(), &latencies, seconds, &stats, server.cache_bytes())
}

/// Outcome of the socket-transport phase: the same stream served once on
/// the modeled in-process transport and once over real worker processes.
#[derive(Clone, Debug)]
pub struct SocketPhaseReport {
    /// Modeled-transport run; its `round_bytes` come from the shared
    /// frame formula (`ppr_wire::reply_frame_bytes`).
    pub modeled: ServeSummary,
    /// Socket-transport run; its `round_bytes` are the *measured* sizes
    /// of the reply frames that crossed the coordinator's sockets.
    pub socketed: ServeSummary,
    /// Real wall-clock seconds of the socketed run, network included.
    pub wall_seconds: f64,
    /// Responses whose bits differed between the transports. Asserted
    /// zero inside [`run_socket_phase`]; carried for the baseline gate.
    pub mismatches: usize,
    /// Coordinator-side wire totals — handshake, heartbeat, and epoch
    /// traffic included, so these exceed the reply-only byte columns.
    pub wire: WireMetrics,
    /// Supervisor counters; `restarts > 0` means a worker died mid-run.
    pub supervisor: SupervisorStats,
}

/// Feed `requests` batch by batch, keeping the responses for the
/// bit-identity comparison alongside the usual latency samples.
fn drive_collect(
    server: &mut DynamicPprServer,
    requests: &[Request],
    batch: usize,
) -> (Vec<Response>, Vec<f64>, f64) {
    let mut responses = Vec::with_capacity(requests.len());
    let mut latencies = Vec::with_capacity(requests.len());
    let mut seconds = 0.0;
    for chunk in requests.chunks(batch.max(1)) {
        let out = server.run_batch(chunk);
        let latency = out.seconds + out.modeled_network_seconds;
        seconds += latency;
        latencies.extend(std::iter::repeat_n(latency, chunk.len()));
        responses.extend(out.responses);
    }
    (responses, latencies, seconds)
}

/// Bit-level response equality: `f64` compared through `to_bits`, so
/// `0.0 == -0.0` shortcuts and NaN blind spots cannot mask a divergence.
fn responses_bits_equal(a: &Response, b: &Response) -> bool {
    match (a, b) {
        (Response::Ppv(x), Response::Ppv(y)) => {
            x.nnz() == y.nnz()
                && x.iter()
                    .zip(y.iter())
                    .all(|((ia, va), (ib, vb))| ia == ib && va.to_bits() == vb.to_bits())
        }
        (Response::TopK(x), Response::TopK(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ia, va), (ib, vb))| ia == ib && va.to_bits() == vb.to_bits())
        }
        _ => false,
    }
}

/// Serve `requests` twice through a [`DynamicPprServer`] — once on the
/// modeled transport, once over a real worker-process cluster spawned
/// with `worker_command` — and compare every response bit for bit.
///
/// Two gates run inline on every invocation: zero response mismatches
/// (the transports are the same cluster), and modeled `round_bytes` ==
/// measured `round_bytes` (one frame formula, two accountings). Both
/// panic on violation; a bench run that survives this function shed and
/// degraded nothing.
pub fn run_socket_phase(
    graph: &CsrGraph,
    index: &HgpaIndex,
    knobs: &ServeKnobs,
    requests: &[Request],
    worker_command: Vec<String>,
) -> SocketPhaseReport {
    let config = ServeConfig {
        cache_capacity_bytes: knobs.cache_bytes,
        max_batch: knobs.batch,
        ..Default::default()
    };
    let mut modeled = DynamicPprServer::from_index(graph.clone(), index.clone(), config);
    let mut socketed = DynamicPprServer::from_index(graph.clone(), index.clone(), config);

    let snapshot = std::env::temp_dir().join(format!(
        "ppr-serve-socket-{}.pprx",
        std::process::id()
    ));
    let mut sc = SocketConfig::new(index.machines(), worker_command, snapshot.clone());
    if let Some(ms) = knobs.heartbeat_ms {
        sc.heartbeat = Duration::from_millis(ms);
    }
    let sock = Arc::new(
        SocketCluster::launch(sc, index, graph, 0).expect("launch socket worker fleet"),
    );
    socketed.attach_socket(sock.clone());

    let (resp_m, lat_m, sec_m) = drive_collect(&mut modeled, requests, knobs.batch);
    let stats_m = *modeled.stats();
    let summary_m = summarize(requests.len(), &lat_m, sec_m, &stats_m, modeled.cache_bytes());

    let sw = ppr_core::parallel::Stopwatch::start();
    let (resp_s, lat_s, sec_s) = drive_collect(&mut socketed, requests, knobs.batch);
    let wall_seconds = sw.elapsed_seconds();
    let stats_s = *socketed.stats();
    let summary_s = summarize(requests.len(), &lat_s, sec_s, &stats_s, socketed.cache_bytes());

    let mismatches = resp_m
        .iter()
        .zip(&resp_s)
        .filter(|(a, b)| !responses_bits_equal(a, b))
        .count()
        + resp_m.len().abs_diff(resp_s.len());
    assert_eq!(mismatches, 0, "socket transport diverged from modeled");
    assert_eq!(
        stats_m.round_bytes, stats_s.round_bytes,
        "measured reply bytes drifted from the shared frame formula"
    );
    assert_eq!(
        stats_m.fresh_sources, stats_s.fresh_sources,
        "cache behavior must not depend on the transport"
    );

    let wire = sock.metrics();
    let supervisor = sock.supervisor_stats();
    socketed.detach_socket();
    sock.shutdown();
    let _ = std::fs::remove_file(&snapshot);

    SocketPhaseReport {
        modeled: summary_m,
        socketed: summary_s,
        wall_seconds,
        mismatches,
        wire,
        supervisor,
    }
}

/// Run the serving scenario and print the comparison table.
pub fn run(profile: &Profile) {
    let knobs = ServeKnobs::from_env(profile);
    let g: CsrGraph = dataset_graph(Dataset::Web, profile);
    let cfg = PprConfig::default();
    let machines = 6; // paper default (§6.1)

    // With PPR_INDEX_PATH set, serving cold-starts from the persisted
    // artifacts (saving fresh ones back on a miss); otherwise it builds
    // in-memory as before. Served answers are bit-identical either way
    // (pinned in tests/persist_roundtrip.rs).
    let (hgpa, _) = crate::artifacts::load_or_build_hgpa(&g, &cfg, machines);
    let (gpa, _) = crate::artifacts::load_or_build_gpa(
        &g,
        &cfg,
        &GpaBuildOptions {
            subgraphs: 8,
            machines,
            parallelism: ppr_core::ParallelismMode::build_from_env(),
            ..Default::default()
        },
    );

    let requests = request_mix(
        &mut ZipfQueryStream::new(&g, knobs.zipf, 0xCAFE),
        knobs.queries,
    );

    let rows: Vec<(&str, ServeSummary)> = vec![
        ("HGPA", measure(&hgpa, &requests, &knobs)),
        (
            "HGPA (no cache)",
            measure(
                &hgpa,
                &requests,
                &ServeKnobs {
                    cache_bytes: 0,
                    ..knobs.clone()
                },
            ),
        ),
        ("GPA", measure(&gpa, &requests, &knobs)),
    ];

    let mut t = Table::new(
        format!(
            "Serving: {} Zipf({}) requests, batch {}, cache {} (Web, {machines} machines)",
            knobs.queries,
            knobs.zipf,
            knobs.batch,
            fmt_bytes(knobs.cache_bytes),
        ),
        &[
            "server",
            "throughput",
            "p50",
            "p99",
            "hit-rate",
            "fresh",
            "net total",
            "cache use",
        ],
    );
    for (name, s) in &rows {
        t.row(vec![
            name.to_string(),
            format!("{:.0} q/s", s.throughput_qps),
            format!("{:.2} ms", s.p50_ms),
            format!("{:.2} ms", s.p99_ms),
            format!("{:.0}%", s.hit_rate * 100.0),
            s.fresh_sources.to_string(),
            fmt_bytes(s.round_bytes),
            fmt_bytes(s.cache_bytes),
        ]);
    }
    t.print();
    let (cached, uncached) = (&rows[0].1, &rows[1].1);
    println!(
        "cache effect: {:.1}x throughput, {:.1}x less coordinator traffic",
        cached.throughput_qps / uncached.throughput_qps.max(1e-12),
        uncached.round_bytes as f64 / cached.round_bytes.max(1) as f64,
    );

    // Socket phase: real worker processes behind the same cluster
    // interface — this very binary re-invoked with the hidden `worker`
    // subcommand. Bit-identity and the unified byte accounting are
    // asserted inside `run_socket_phase`; surviving it means the wire
    // shipped the exact answers the model predicted, byte for byte.
    if knobs.socket {
        match std::env::current_exe() {
            Ok(exe) => {
                let cmd = vec![exe.display().to_string(), "worker".to_string()];
                let r = run_socket_phase(&g, &hgpa, &knobs, &requests, cmd);
                let mut t = Table::new(
                    format!(
                        "Transport: modeled vs {machines} real worker processes, same stream"
                    ),
                    &[
                        "transport",
                        "throughput",
                        "p50",
                        "p99",
                        "net (formula)",
                        "net measured",
                        "wall",
                    ],
                );
                t.row(vec![
                    "modeled".into(),
                    format!("{:.0} q/s", r.modeled.throughput_qps),
                    format!("{:.2} ms", r.modeled.p50_ms),
                    format!("{:.2} ms", r.modeled.p99_ms),
                    fmt_bytes(r.modeled.round_bytes),
                    "-".into(),
                    "-".into(),
                ]);
                t.row(vec![
                    "socket".into(),
                    format!("{:.0} q/s", r.socketed.throughput_qps),
                    format!("{:.2} ms", r.socketed.p50_ms),
                    format!("{:.2} ms", r.socketed.p99_ms),
                    fmt_bytes(r.socketed.round_bytes),
                    fmt_bytes(r.wire.bytes_received),
                    format!("{:.2} s", r.wall_seconds),
                ]);
                t.print();
                println!(
                    "socket gate: {} responses bit-identical, reply bytes == formula, \
                     {} frames over the wire, {} restarts",
                    requests.len(),
                    r.wire.frames_received,
                    r.supervisor.restarts,
                );
            }
            Err(e) => eprintln!("socket phase skipped: cannot resolve current exe: {e}"),
        }
    }

    // Thread-scaling phase: the same stream through the sharded server
    // at each worker count. Wall-clock, so the speedup column measures
    // the host's real parallelism (≈1x on a single core by design).
    if !knobs.shards.is_empty() {
        let scaled: Vec<(usize, ServeSummary)> = knobs
            .shards
            .iter()
            .map(|&w| (w, measure_sharded(&hgpa, &requests, &knobs, w)))
            .collect();
        let base_qps = scaled
            .iter()
            .find(|(w, _)| *w == 1)
            .map(|(_, s)| s.throughput_qps)
            .unwrap_or_else(|| scaled[0].1.throughput_qps);
        let mut t = Table::new(
            format!(
                "Thread scaling (sharded HGPA, wall clock): {} requests, batch {}",
                knobs.queries, knobs.batch,
            ),
            &["workers", "throughput", "p50", "p99", "speedup"],
        );
        for (w, s) in &scaled {
            t.row(vec![
                w.to_string(),
                format!("{:.0} q/s", s.throughput_qps),
                format!("{:.2} ms", s.p50_ms),
                format!("{:.2} ms", s.p99_ms),
                format!("{:.2}x", s.throughput_qps / base_qps.max(1e-12)),
            ]);
        }
        t.print();
    }

    if knobs.arrival_qps > 0.0 {
        let report = measure_open_loop(&g, hgpa, &knobs, ServiceModel::Measured);
        let mut t = Table::new(
            format!(
                "Open loop (dynamic HGPA): Poisson {} ev/s, update rate {}, {} events",
                knobs.arrival_qps, knobs.update_rate, knobs.queries,
            ),
            &[
                "queries",
                "updates",
                "achieved",
                "p50 sojourn",
                "p99 sojourn",
                "p50 service",
                "p99 service",
                "mean wait",
                "max queue",
                "hit-rate",
            ],
        );
        t.row(vec![
            report.queries.to_string(),
            report.update_batches.to_string(),
            format!("{:.0} q/s", report.achieved_qps),
            format!("{:.2} ms", report.p50_sojourn_ms),
            format!("{:.2} ms", report.p99_sojourn_ms),
            format!("{:.2} ms", report.p50_service_ms),
            format!("{:.2} ms", report.p99_service_ms),
            format!("{:.2} ms", report.mean_wait_ms),
            report.max_queue_depth.to_string(),
            format!("{:.0}%", report.hit_rate * 100.0),
        ]);
        t.print();
        println!(
            "invalidation: {} cache entries evicted, {} retained across updates",
            report.entries_evicted, report.entries_retained,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_hgpa_opts;

    fn tiny_knobs() -> ServeKnobs {
        ServeKnobs {
            queries: 120,
            batch: 8,
            zipf: 1.2,
            cache_bytes: 8 << 20,
            update_rate: 0.1,
            arrival_qps: 400.0,
            shards: vec![1, 2],
            socket: false,
            heartbeat_ms: None,
        }
    }

    #[test]
    fn serve_scenario_reports_sane_numbers() {
        let profile = Profile {
            node_cap: Some(900),
            queries: 4,
            ..Profile::quick()
        };
        let g = dataset_graph(Dataset::Web, &profile);
        let idx = HgpaIndex::build(&g, &PprConfig::default(), &default_hgpa_opts(4));
        let knobs = tiny_knobs();
        let requests = request_mix(&mut ZipfQueryStream::new(&g, knobs.zipf, 1), knobs.queries);
        let s = measure(&idx, &requests, &knobs);
        assert_eq!(s.queries, 120);
        assert!(s.throughput_qps > 0.0);
        assert!(s.p99_ms >= s.p50_ms);
        assert!(s.hit_rate > 0.0, "Zipf(1.2) stream must repeat sources");
        assert!(s.fresh_sources > 0 && s.round_bytes > 0);
    }

    #[test]
    fn cache_reduces_fresh_computation() {
        let profile = Profile {
            node_cap: Some(900),
            queries: 4,
            ..Profile::quick()
        };
        let g = dataset_graph(Dataset::Web, &profile);
        let idx = HgpaIndex::build(&g, &PprConfig::default(), &default_hgpa_opts(4));
        let knobs = tiny_knobs();
        let requests = request_mix(&mut ZipfQueryStream::new(&g, knobs.zipf, 2), knobs.queries);
        let with_cache = measure(&idx, &requests, &knobs);
        let without = measure(
            &idx,
            &requests,
            &ServeKnobs {
                cache_bytes: 0,
                ..knobs
            },
        );
        assert!(with_cache.fresh_sources < without.fresh_sources);
        assert!(with_cache.round_bytes < without.round_bytes);
        assert_eq!(without.hit_rate, 0.0);
    }

    #[test]
    fn sharded_measure_reports_sane_numbers_at_every_worker_count() {
        let profile = Profile {
            node_cap: Some(900),
            queries: 4,
            ..Profile::quick()
        };
        let g = dataset_graph(Dataset::Web, &profile);
        let idx = HgpaIndex::build(&g, &PprConfig::default(), &default_hgpa_opts(4));
        let knobs = tiny_knobs();
        let requests = request_mix(&mut ZipfQueryStream::new(&g, knobs.zipf, 5), knobs.queries);
        for workers in [1usize, 2, 4] {
            let s = measure_sharded(&idx, &requests, &knobs, workers);
            assert_eq!(s.queries, 120, "workers {workers}");
            assert!(s.throughput_qps > 0.0);
            assert!(s.p99_ms >= s.p50_ms);
            assert!(s.fresh_sources > 0 && s.round_bytes > 0);
        }
    }

    #[test]
    fn open_loop_phase_reports_sane_numbers() {
        let profile = Profile {
            node_cap: Some(900),
            queries: 4,
            ..Profile::quick()
        };
        let g = dataset_graph(Dataset::Web, &profile);
        let idx = HgpaIndex::build(&g, &PprConfig::default(), &default_hgpa_opts(4));
        let knobs = tiny_knobs();
        // The deterministic service model keeps this test reproducible.
        let r = measure_open_loop(&g, idx, &knobs, ServiceModel::modeled_default());
        assert_eq!(r.queries + r.update_batches, knobs.queries);
        assert!(r.update_batches > 0, "update rate 0.1 must fire");
        assert!(r.p99_sojourn_ms >= r.p50_sojourn_ms);
        assert!(r.p50_sojourn_ms >= r.p50_service_ms);
        assert!(r.achieved_qps > 0.0);
        assert!(
            r.entries_retained > 0,
            "fine-grained invalidation should retain entries across updates"
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
    }
}
