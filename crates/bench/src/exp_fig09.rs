//! Figure 9: GPA vs HGPA on Web — query runtime, max-machine space,
//! offline time, and per-query network cost, at the default 6 machines.

use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::{dataset_graph, default_hgpa_opts, Profile};
use ppr_cluster::Cluster;
use ppr_core::gpa::{GpaBuildOptions, GpaIndex};
use ppr_core::hgpa::HgpaIndex;
use ppr_core::PprConfig;
use ppr_workload::{query_nodes, Dataset};

/// Measured comparison row for one algorithm.
pub struct AlgoRow {
    /// Mean query runtime (max over machines + coordinator), seconds.
    pub runtime: f64,
    /// Maximum per-machine storage, bytes.
    pub space: u64,
    /// Max per-machine offline precompute time, seconds.
    pub offline: f64,
    /// Mean per-query coordinator traffic, bytes.
    pub network: u64,
}

/// Run GPA and HGPA side by side. Returns (gpa, hgpa) rows.
pub fn measure(profile: &Profile) -> (AlgoRow, AlgoRow) {
    let machines = 6; // paper default
    let g = dataset_graph(Dataset::Web, profile);
    let cfg = PprConfig::default();
    let queries = query_nodes(&g, profile.queries, 11);
    let cluster = Cluster::with_default_network();

    let (gpa, gpa_off) = GpaIndex::build_distributed(
        &g,
        &cfg,
        &GpaBuildOptions {
            subgraphs: 8,
            machines,
            parallelism: ppr_core::ParallelismMode::build_from_env(),
            ..Default::default()
        },
    );
    let (hgpa, hgpa_off) =
        HgpaIndex::build_distributed(&g, &cfg, &default_hgpa_opts(machines));

    let run = |reports: Vec<ppr_cluster::ClusterQueryReport>| -> (f64, u64) {
        let n = reports.len().max(1) as f64;
        let rt = reports.iter().map(|r| r.runtime_seconds()).sum::<f64>() / n;
        let bytes = reports.iter().map(|r| r.total_bytes()).sum::<u64>() / reports.len().max(1) as u64;
        (rt, bytes)
    };
    let (gpa_rt, gpa_net) = run(cluster.query_batch(&gpa, &queries));
    let (hgpa_rt, hgpa_net) = run(cluster.query_batch(&hgpa, &queries));

    (
        AlgoRow {
            runtime: gpa_rt,
            space: gpa.storage_bytes_per_machine().into_iter().max().unwrap_or(0),
            offline: gpa_off.max_machine_seconds(),
            network: gpa_net,
        },
        AlgoRow {
            runtime: hgpa_rt,
            space: hgpa.storage_bytes_per_machine().into_iter().max().unwrap_or(0),
            offline: hgpa_off.max_machine_seconds(),
            network: hgpa_net,
        },
    )
}

/// Print Figure 9.
pub fn run(profile: &Profile) {
    let (gpa, hgpa) = measure(profile);
    let mut t = Table::new(
        "Figure 9: GPA vs HGPA on Web (6 machines)",
        &["algorithm", "runtime", "max space", "offline", "network/query"],
    );
    for (name, row) in [("HGPA", &hgpa), ("GPA", &gpa)] {
        t.row(vec![
            name.into(),
            fmt_secs(row.runtime),
            fmt_bytes(row.space),
            fmt_secs(row.offline),
            fmt_bytes(row.network),
        ]);
    }
    t.print();
    println!(
        "paper shape: HGPA <= GPA on space and offline; comparable runtime; \
         measured space ratio GPA/HGPA = {:.2}",
        gpa.space as f64 / hgpa.space.max(1) as f64
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hgpa_beats_gpa_on_space() {
        // The paper's Figure 9 headline: HGPA stores less than GPA.
        let profile = Profile {
            node_cap: Some(1500),
            queries: 4,
            ..Profile::quick()
        };
        let (gpa, hgpa) = measure(&profile);
        assert!(
            hgpa.space <= gpa.space,
            "HGPA {} vs GPA {}",
            hgpa.space,
            gpa.space
        );
        assert!(hgpa.network > 0 && gpa.network > 0);
    }
}
