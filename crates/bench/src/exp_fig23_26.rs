//! Centralized-setting comparisons (§6.2.9/6.2.10):
//!
//! * Figure 23 — HGPA vs power iteration, single machine, same tolerance.
//! * Figure 24 — runtime vs FastPPV at several hub counts, plus HGPA_ad.
//! * Figure 25 — avg-L1 / L∞ accuracy of the four methods.
//! * Figure 26 — Precision / RAG / Kendall of top-100 rankings.

use crate::report::{fmt_secs, Table};
use crate::{dataset_graph, Profile};
use ppr_baselines::FastPpv;
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::power::power_iteration;
use ppr_core::PprConfig;
use ppr_metrics::{avg_l1, kendall_tau_top_k, l_inf, precision_at_k, rag_at_k};
use ppr_workload::{query_nodes, Dataset};
use ppr_core::parallel::Stopwatch;

/// Aggregated quality/latency of one method against the power-iteration
/// reference.
pub struct MethodReport {
    /// Display name.
    pub name: String,
    /// Mean query seconds.
    pub runtime: f64,
    /// Mean avg-L1 distance to the reference.
    pub avg_l1: f64,
    /// Mean L∞ distance.
    pub l_inf: f64,
    /// Mean Precision@100.
    pub precision: f64,
    /// Mean RAG@100.
    pub rag: f64,
    /// Mean Kendall pair agreement on top-100.
    pub kendall: f64,
}

/// Figure 23's row: power iteration vs centralized HGPA runtime.
pub struct Fig23Row {
    /// Dataset label.
    pub dataset: &'static str,
    /// Power iteration mean seconds.
    pub power: f64,
    /// HGPA (single machine) mean seconds.
    pub hgpa: f64,
}

/// Measure Figure 23 for the three paper datasets.
pub fn fig23(profile: &Profile) -> Vec<Fig23Row> {
    let cfg = PprConfig::default();
    [Dataset::Email, Dataset::Web, Dataset::Youtube]
        .into_iter()
        .map(|d| {
            let g = dataset_graph(d, profile);
            let queries = query_nodes(&g, profile.queries.min(6), 41);
            let idx = HgpaIndex::build(
                &g,
                &cfg,
                &HgpaBuildOptions {
                    machines: 1,
                    ..Default::default()
                },
            );
            let t = Stopwatch::start();
            for &q in &queries {
                std::hint::black_box(idx.query(q));
            }
            let hgpa = t.elapsed_seconds() / queries.len().max(1) as f64;
            let t = Stopwatch::start();
            for &q in &queries {
                std::hint::black_box(power_iteration(&g, q, &cfg));
            }
            let power = t.elapsed_seconds() / queries.len().max(1) as f64;
            Fig23Row {
                dataset: d.name(),
                power,
                hgpa,
            }
        })
        .collect()
}

/// Measure Figures 24–26 on one dataset: FastPPV at two hub counts vs
/// HGPA vs HGPA_ad, all scored against power iteration.
pub fn fig24_26(d: Dataset, hub_counts: [usize; 2], profile: &Profile) -> Vec<MethodReport> {
    let g = dataset_graph(d, profile);
    let n = g.node_count();
    let cfg = PprConfig::default();
    let queries = query_nodes(&g, profile.queries.min(6), 43);

    // Reference vectors.
    let refs: Vec<Vec<f64>> = queries
        .iter()
        .map(|&q| {
            power_iteration(
                &g,
                q,
                &PprConfig {
                    epsilon: 1e-9,
                    ..Default::default()
                },
            )
        })
        .collect();

    let score = |name: String, runtime: f64, vectors: Vec<Vec<f64>>| -> MethodReport {
        let nq = queries.len().max(1) as f64;
        let mut r = MethodReport {
            name,
            runtime,
            avg_l1: 0.0,
            l_inf: 0.0,
            precision: 0.0,
            rag: 0.0,
            kendall: 0.0,
        };
        for (reference, got) in refs.iter().zip(&vectors) {
            r.avg_l1 += avg_l1(reference, got);
            r.l_inf += l_inf(reference, got);
            r.precision += precision_at_k(reference, got, 100);
            r.rag += rag_at_k(reference, got, 100);
            r.kendall += kendall_tau_top_k(reference, got, 100);
        }
        r.avg_l1 /= nq;
        r.l_inf /= nq;
        r.precision /= nq;
        r.rag /= nq;
        r.kendall /= nq;
        r
    };

    let mut out = Vec::new();

    for hubs in hub_counts {
        let idx = FastPpv::build(&g, hubs, 1e-4, &cfg);
        let t = Stopwatch::start();
        let vectors: Vec<Vec<f64>> = queries.iter().map(|&q| idx.query(q).to_dense(n)).collect();
        let rt = t.elapsed_seconds() / queries.len().max(1) as f64;
        out.push(score(format!("Fast-{hubs}"), rt, vectors));
    }

    let hgpa = HgpaIndex::build(
        &g,
        &cfg,
        &HgpaBuildOptions {
            machines: 1,
            ..Default::default()
        },
    );
    let t = Stopwatch::start();
    let vectors: Vec<Vec<f64>> = queries.iter().map(|&q| hgpa.query(q).to_dense(n)).collect();
    let rt = t.elapsed_seconds() / queries.len().max(1) as f64;
    out.push(score("HGPA".into(), rt, vectors));

    let hgpa_ad = HgpaIndex::build(
        &g,
        &cfg,
        &HgpaBuildOptions {
            machines: 1,
            drop_threshold: Some(1e-4),
            ..Default::default()
        },
    );
    let t = Stopwatch::start();
    let vectors: Vec<Vec<f64>> = queries
        .iter()
        .map(|&q| hgpa_ad.query(q).to_dense(n))
        .collect();
    let rt = t.elapsed_seconds() / queries.len().max(1) as f64;
    out.push(score("HGPA_ad".into(), rt, vectors));

    out
}

/// Print Figures 23–26.
pub fn run(profile: &Profile) {
    let mut t23 = Table::new(
        "Figure 23: centralized HGPA vs power iteration",
        &["dataset", "PowerIteration", "HGPA", "speedup"],
    );
    for row in fig23(profile) {
        t23.row(vec![
            row.dataset.into(),
            fmt_secs(row.power),
            fmt_secs(row.hgpa),
            format!("{:.1}x", row.power / row.hgpa.max(1e-9)),
        ]);
    }
    t23.print();

    for (d, hubs) in [
        (Dataset::Email, [100usize, 1000]),
        (Dataset::Web, [1000, 10000]),
    ] {
        let reports = fig24_26(d, hubs, profile);
        let mut t = Table::new(
            format!(
                "Figures 24–26 [{}]: FastPPV vs HGPA vs HGPA_ad (top-100 metrics)",
                d.name()
            ),
            &[
                "method",
                "runtime (F24)",
                "avg L1 (F25)",
                "L_inf (F25)",
                "Precision (F26)",
                "RAG (F26)",
                "Kendall (F26)",
            ],
        );
        for r in &reports {
            t.row(vec![
                r.name.clone(),
                fmt_secs(r.runtime),
                format!("{:.3e}", r.avg_l1),
                format!("{:.3e}", r.l_inf),
                format!("{:.3}", r.precision),
                format!("{:.3}", r.rag),
                format!("{:.3}", r.kendall),
            ]);
        }
        t.print();
    }
    println!(
        "paper shape: HGPA/HGPA_ad dominate FastPPV on every accuracy metric; \
         HGPA_ad is also faster."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hgpa_more_accurate_than_fastppv() {
        let profile = Profile {
            node_cap: Some(1000),
            queries: 3,
            ..Profile::quick()
        };
        // The paper's 1e-4 pruning only bites at full dataset scale (the
        // score tail of a 265k-node PPV sits below it). At quick scale we
        // assert (a) the exact methods are near-perfect in absolute terms
        // and (b) a FastPPV whose pruning *does* bite at this scale loses
        // clearly — the Figure 25/26 shape.
        let reports = fig24_26(Dataset::Email, [20, 100], &profile);
        let hgpa = reports.iter().find(|r| r.name == "HGPA").unwrap();
        assert!(hgpa.precision > 0.9, "exact method precision {}", hgpa.precision);
        assert!(hgpa.rag > 0.99, "exact method RAG {}", hgpa.rag);
        assert!(hgpa.l_inf < 1e-2, "exact method L_inf {}", hgpa.l_inf);

        use ppr_baselines::FastPpv;
        use ppr_core::power::power_iteration;
        let g = crate::dataset_graph(Dataset::Email, &profile);
        let cfg = ppr_core::PprConfig::default();
        let coarse = FastPpv::build(&g, 20, 2e-3, &cfg);
        // Average over the same query set fig24_26 scores: a single query
        // can have its top-100 mass concentrated above the prune
        // threshold and score a perfect precision by luck.
        let queries = ppr_workload::query_nodes(&g, 3, 43);
        let prec: f64 = queries
            .iter()
            .map(|&q| {
                let reference = power_iteration(
                    &g,
                    q,
                    &ppr_core::PprConfig {
                        epsilon: 1e-9,
                        ..Default::default()
                    },
                );
                let approx = coarse.query(q).to_dense(g.node_count());
                ppr_metrics::precision_at_k(&reference, &approx, 100)
            })
            .sum::<f64>()
            / queries.len() as f64;
        assert!(
            prec < hgpa.precision,
            "coarse FastPPV mean precision {prec} should trail HGPA {}",
            hgpa.precision
        );
    }
}
