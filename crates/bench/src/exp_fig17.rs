//! Figure 17: multi-way partitioning (2/4/8/16/64 parts per level) on Web.
//! Runtime barely moves; precomputation space and time grow with fanout —
//! the reason the paper defaults to 2-way splits.

use crate::report::{fmt_secs, Table};
use crate::{dataset_graph, Profile};
use ppr_cluster::Cluster;
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::PprConfig;
use ppr_partition::HierarchyConfig;
use ppr_workload::{query_nodes, Dataset};

/// One fanout point.
pub struct FanoutPoint {
    /// Parts per level.
    pub fanout: usize,
    /// Mean query runtime, seconds.
    pub runtime: f64,
    /// Total stored entries.
    pub space_entries: usize,
    /// Max per-machine offline seconds.
    pub offline: f64,
    /// Total hub nodes selected.
    pub hubs: usize,
}

/// Sweep per-level fanout on Web.
pub fn sweep(fanouts: &[usize], profile: &Profile) -> Vec<FanoutPoint> {
    let g = dataset_graph(Dataset::Web, profile);
    let cfg = PprConfig::default();
    let queries = query_nodes(&g, profile.queries, 23);
    let cluster = Cluster::with_default_network();

    fanouts
        .iter()
        .map(|&fanout| {
            let (idx, off) = HgpaIndex::build_distributed(
                &g,
                &cfg,
                &HgpaBuildOptions {
                    machines: 6,
                    hierarchy: HierarchyConfig {
                        fanout,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            let reports = cluster.query_batch(&idx, &queries);
            let nq = reports.len().max(1) as f64;
            FanoutPoint {
                fanout,
                runtime: reports.iter().map(|r| r.runtime_seconds()).sum::<f64>() / nq,
                space_entries: idx.stored_entries(),
                offline: off.max_machine_seconds(),
                hubs: idx.hub_ids().len(),
            }
        })
        .collect()
}

/// Print Figure 17.
pub fn run(profile: &Profile) {
    let points = sweep(&[2, 4, 8, 16, 64], profile);
    let mut t = Table::new(
        "Figure 17 [Web]: effect of multi-way partitioning",
        &[
            "partitions/level",
            "runtime (a)",
            "stored entries (b)",
            "offline (c)",
            "total hubs",
        ],
    );
    for p in &points {
        t.row(vec![
            p.fanout.to_string(),
            fmt_secs(p.runtime),
            p.space_entries.to_string(),
            fmt_secs(p.offline),
            p.hubs.to_string(),
        ]);
    }
    t.print();
    println!("paper shape: 2-way has the smallest precomputation cost; runtime is flat.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_fanout_selects_more_hubs() {
        let profile = Profile {
            node_cap: Some(1200),
            queries: 3,
            ..Profile::quick()
        };
        let points = sweep(&[2, 8], &profile);
        assert!(
            points[1].hubs >= points[0].hubs,
            "8-way {} vs 2-way {}",
            points[1].hubs,
            points[0].hubs
        );
    }
}
