//! The `repro audit` subcommand: run the `ppr-analysis` static pass over
//! the workspace, print the human report, optionally write the
//! machine-readable findings file, and gate against a committed
//! suppression baseline.
//!
//! JSON rendering lives here (not in `ppr-analysis`) because this crate
//! owns the workspace's hand-rolled [`crate::json`] layer — the analyzer
//! stays a pure-std data producer.
//!
//! Exit codes: `0` clean, `1` violations or baseline regression, `2`
//! usage / IO errors (matching `bench-compare`'s convention).

use crate::json::{obj, Json};
use ppr_analysis::{find_workspace_root, run_audit, AuditReport};
use std::collections::BTreeMap;
use std::path::Path;

/// Render the audit report as the `AUDIT_baseline.json` / `--json`
/// document: schema marker, summary counters, every finding (violations
/// and allowed), and the per-(file, rule) suppression ledger the
/// baseline gate compares.
pub fn report_to_json(report: &AuditReport) -> Json {
    let findings: Vec<Json> = report
        .findings
        .iter()
        .map(|f| {
            let mut m = vec![
                ("file", Json::Str(f.path.clone())),
                ("line", Json::Num(f.line as f64)),
                ("rule", Json::Str(f.rule.clone())),
                ("message", Json::Str(f.message.clone())),
            ];
            if let Some(reason) = &f.allowed {
                m.push(("allowed", Json::Str(reason.clone())));
            }
            Json::Obj(m.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        })
        .collect();
    let allows: Vec<Json> = report
        .allow_counts()
        .into_iter()
        .map(|((file, rule), count)| {
            obj([
                ("file", Json::Str(file)),
                ("rule", Json::Str(rule)),
                ("count", Json::Num(count as f64)),
            ])
        })
        .collect();
    obj([
        ("schema", Json::Str("repro-audit/v1".into())),
        ("files_scanned", Json::Num(report.files_scanned as f64)),
        (
            "violations",
            Json::Num(report.violations().count() as f64),
        ),
        ("allowed", Json::Num(report.allowed().count() as f64)),
        ("findings", Json::Arr(findings)),
        ("allow_counts", Json::Arr(allows)),
    ])
}

/// Extract the `(file, rule) -> count` suppression ledger from a parsed
/// audit document.
pub fn allow_counts_of(doc: &Json) -> Result<BTreeMap<(String, String), usize>, String> {
    let arr = doc
        .get("allow_counts")
        .and_then(Json::as_array)
        .ok_or("missing allow_counts array")?;
    let mut out = BTreeMap::new();
    for entry in arr {
        let file = entry
            .get("file")
            .and_then(Json::as_str)
            .ok_or("allow_counts entry missing file")?;
        let rule = entry
            .get("rule")
            .and_then(Json::as_str)
            .ok_or("allow_counts entry missing rule")?;
        let count = entry
            .get("count")
            .and_then(Json::as_f64)
            .ok_or("allow_counts entry missing count")? as usize;
        out.insert((file.to_string(), rule.to_string()), count);
    }
    Ok(out)
}

/// Compare fresh suppression counts against the committed baseline:
/// every *new* or *grown* (file, rule) suppression is a regression —
/// annotations may move or disappear freely, but adding one requires
/// updating `AUDIT_baseline.json` in the same change, which puts the
/// new justification in front of a reviewer.
pub fn baseline_regressions(
    baseline: &BTreeMap<(String, String), usize>,
    fresh: &BTreeMap<(String, String), usize>,
) -> Vec<String> {
    let mut problems = Vec::new();
    for ((file, rule), &count) in fresh {
        let allowed = baseline.get(&(file.clone(), rule.clone())).copied().unwrap_or(0);
        if count > allowed {
            problems.push(format!(
                "{file}: {count} audit:allow({rule}) annotation(s), baseline allows {allowed} \
                 — update AUDIT_baseline.json if the new suppression is justified"
            ));
        }
    }
    problems
}

/// Run `repro audit [--json <path>] [--baseline <path>]`. Returns the
/// process exit code.
pub fn run(json_out: Option<&Path>, baseline_path: Option<&Path>) -> i32 {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("audit: cannot determine working directory: {e}");
            return 2;
        }
    };
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!("audit: no workspace root (Cargo.toml with [workspace]) above {cwd:?}");
        return 2;
    };
    let report = match run_audit(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: failed to scan workspace: {e}");
            return 2;
        }
    };
    print!("{}", report.render_text());

    if let Some(path) = json_out {
        let doc = report_to_json(&report);
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("audit: cannot write {}: {e}", path.display());
            return 2;
        }
        println!("findings written to {}", path.display());
    }

    let mut exit = if report.is_clean() { 0 } else { 1 };

    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("audit: cannot read baseline {}: {e}", path.display());
                return 2;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("audit: baseline {} is not valid JSON: {e}", path.display());
                return 2;
            }
        };
        let baseline = match allow_counts_of(&doc) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("audit: baseline {}: {e}", path.display());
                return 2;
            }
        };
        let fresh = report.allow_counts();
        let problems = baseline_regressions(&baseline, &fresh);
        if problems.is_empty() {
            println!(
                "baseline: OK ({} suppressed finding(s) within the committed ledger)",
                report.allowed().count()
            );
        } else {
            println!("baseline: FAIL");
            for p in &problems {
                println!("  {p}");
            }
            exit = exit.max(1);
        }
    }
    exit
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_analysis::Finding;

    fn sample_report() -> AuditReport {
        let mut r = AuditReport {
            findings: vec![
                Finding {
                    rule: "hash-iter".into(),
                    path: "crates/x/src/lib.rs".into(),
                    line: 10,
                    message: "iteration".into(),
                    allowed: Some("lookup only".into()),
                },
                Finding {
                    rule: "wall-clock".into(),
                    path: "crates/y/src/lib.rs".into(),
                    line: 3,
                    message: "Instant".into(),
                    allowed: None,
                },
            ],
            files_scanned: 2,
        };
        r.sort();
        r
    }

    #[test]
    fn json_document_roundtrips_and_carries_counts() {
        let r = sample_report();
        let doc = report_to_json(&r);
        let text = doc.render();
        let back = Json::parse(&text).expect("valid JSON");
        assert_eq!(back, doc);
        assert_eq!(back.get("violations").and_then(Json::as_f64), Some(1.0));
        assert_eq!(back.get("allowed").and_then(Json::as_f64), Some(1.0));
        let counts = allow_counts_of(&back).expect("ledger");
        assert_eq!(
            counts.get(&("crates/x/src/lib.rs".into(), "hash-iter".into())),
            Some(&1)
        );
    }

    #[test]
    fn baseline_gate_flags_new_and_grown_suppressions() {
        let mut baseline = BTreeMap::new();
        baseline.insert(("a.rs".to_string(), "hash-iter".to_string()), 1usize);
        // Unchanged: fine.
        assert!(baseline_regressions(&baseline, &baseline).is_empty());
        // Fewer than baseline: fine (annotations were removed).
        assert!(baseline_regressions(&baseline, &BTreeMap::new()).is_empty());
        // Grown count: regression.
        let mut grown = baseline.clone();
        grown.insert(("a.rs".into(), "hash-iter".into()), 2);
        assert_eq!(baseline_regressions(&baseline, &grown).len(), 1);
        // New (file, rule): regression.
        let mut new_site = baseline.clone();
        new_site.insert(("b.rs".into(), "serve-panic".into()), 1);
        assert_eq!(baseline_regressions(&baseline, &new_site).len(), 1);
    }

    #[test]
    fn malformed_baseline_is_rejected() {
        assert!(allow_counts_of(&Json::Null).is_err());
        let doc = Json::parse(r#"{"allow_counts": [{"file": "a.rs"}]}"#).unwrap();
        assert!(allow_counts_of(&doc).is_err());
    }
}
