//! `repro bench-baseline` — the persistent performance baseline and its
//! regression gate.
//!
//! The figure experiments print numbers and forget them; this module
//! makes the repo's perf trajectory durable. One run executes three
//! quick-profile phases —
//!
//! 1. **offline**: GPA and HGPA `build_distributed` across the worker
//!    sweep (default 1/2/4/8), recording wall seconds, modeled
//!    (dedicated-machine) seconds, peak scratch bytes, stored entry
//!    counts, and the wall-clock speedup of every worker count over one;
//! 2. **query fan-out**: batched `Cluster::query_many` rounds at the
//!    same sweep;
//! 3. **serving**: the Zipf request stream through `ShardedPprServer`
//!    at the same sweep, closed (when running as the `repro` binary)
//!    by a socket-transport phase whose modeled and measured reply-byte
//!    totals are both exact-gated —
//!
//! and emits `BENCH_offline.json` + `BENCH_serve.json` (schema
//! `ppr-bench-baseline/v1`); the [`crate::incremental`] phase adds
//! `BENCH_incremental.json` under the same schema. The committed copies
//! at the repo root are the baseline; CI re-runs the phases and
//! [`compare`]s fresh numbers against them, failing on any `wall`-gated
//! metric that regressed more than the tolerance (default 25%,
//! `PPR_BENCH_TOLERANCE`), on any `exact`-gated count that changed at
//! all — entry counts are deterministic, so a drift there means the
//! math changed, not the hardware — and on any `floor`-gated speedup
//! that fell to 1x or below. `info`-gated metrics (modeled seconds,
//! throughput, scratch bytes) are recorded for trend analysis but never
//! gate.
//!
//! Wall-gated numbers compare across hosts only in the regression
//! direction (a faster host trivially passes); the gate is meant for
//! same-class runners — CI regenerates on its own hardware and compares
//! against the committed run from a comparable runner, tolerance
//! absorbing scheduler noise.

use crate::json::{obj, Json};
use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::serve::{measure_sharded, request_mix, ServeKnobs};
use crate::{dataset_graph, default_hgpa_opts, Profile};
use ppr_cluster::{Cluster, ClusterConfig, ParallelismMode};
use ppr_core::gpa::{GpaBuildOptions, GpaIndex};
use ppr_core::hgpa::{HgpaIndex, OfflineReport};
use ppr_core::PprConfig;
use ppr_graph::{node_id, CsrGraph, NodeId};
use ppr_workload::{Dataset, ZipfQueryStream};
use std::path::{Path, PathBuf};

/// How a metric participates in the regression gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Wall-clock: fails when fresh > baseline × (1 + tolerance).
    Wall,
    /// Deterministic count: fails on any difference.
    Exact,
    /// Lower-bounded ratio (speedups): fails when the fresh value drops
    /// to 1.0 or below. The committed value is a trend record; the gate
    /// itself is the absolute 1x floor, so it holds on any host — an
    /// incremental path that stops beating a from-scratch rebuild has
    /// lost its reason to exist, however fast the hardware.
    Floor,
    /// Recorded for trends; never gates.
    Info,
}

impl Gate {
    fn as_str(self) -> &'static str {
        match self {
            Gate::Wall => "wall",
            Gate::Exact => "exact",
            Gate::Floor => "floor",
            Gate::Info => "info",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "wall" => Some(Gate::Wall),
            "exact" => Some(Gate::Exact),
            "floor" => Some(Gate::Floor),
            "info" => Some(Gate::Info),
            _ => None,
        }
    }
}

/// One measured number.
#[derive(Clone, Debug)]
pub struct Metric {
    /// Stable identifier, e.g. `hgpa_build_wall_seconds_t4`.
    pub name: String,
    /// The measurement.
    pub value: f64,
    /// Unit label (`s`, `bytes`, `entries`, `qps`, `x`, ...).
    pub unit: &'static str,
    /// Gate class.
    pub gate: Gate,
}

/// One phase's emitted baseline (`BENCH_offline.json` or
/// `BENCH_serve.json`).
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// `"offline"`, `"serve"`, `"incremental"`, or `"faults"` — selects
    /// the file name.
    pub kind: &'static str,
    /// Cores of the host that produced the numbers. Wall-gated
    /// comparisons across different hardware classes are only meaningful
    /// in the regression direction; [`compare_dirs`] warns on mismatch.
    pub host_cores: usize,
    /// Worker counts swept.
    pub threads: Vec<usize>,
    /// All measurements, in emission order.
    pub metrics: Vec<Metric>,
}

/// Baseline knobs (env-overridable).
#[derive(Clone, Debug)]
pub struct BaselineKnobs {
    /// Worker counts swept (`PPR_BENCH_THREADS`, default `1,2,4,8`).
    pub threads: Vec<usize>,
    /// Directory the JSON files are written to (`PPR_BENCH_BASELINE`,
    /// default `.` — the repo root, where the committed baselines live).
    pub out_dir: PathBuf,
}

impl BaselineKnobs {
    /// Defaults, overridden by `PPR_BENCH_THREADS` / `PPR_BENCH_BASELINE`.
    pub fn from_env() -> Self {
        let threads = match std::env::var("PPR_BENCH_THREADS") {
            Ok(v) => v
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&t| t >= 1)
                .collect(),
            Err(_) => vec![1, 2, 4, 8],
        };
        Self {
            threads: if threads.is_empty() { vec![1] } else { threads },
            out_dir: std::env::var("PPR_BENCH_BASELINE")
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from(".")),
        }
    }
}

impl BaselineReport {
    /// An empty report for this host.
    pub fn new(kind: &'static str, threads: &[usize]) -> Self {
        Self {
            kind,
            host_cores: std::thread::available_parallelism().map_or(1, |p| p.get()),
            threads: threads.to_vec(),
            metrics: Vec::new(),
        }
    }

    /// The file name this report is persisted under.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.kind)
    }

    pub(crate) fn push(&mut self, name: String, value: f64, unit: &'static str, gate: Gate) {
        self.metrics.push(Metric {
            name,
            value,
            unit,
            gate,
        });
    }

    /// Look up a metric value by name.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.name == name).map(|m| m.value)
    }

    /// Serialize to the `ppr-bench-baseline/v1` JSON schema.
    pub fn to_json(&self) -> Json {
        obj([
            ("schema", Json::Str("ppr-bench-baseline/v1".into())),
            ("kind", Json::Str(self.kind.into())),
            ("host_cores", Json::Num(self.host_cores as f64)),
            (
                "threads",
                Json::Arr(self.threads.iter().map(|&t| Json::Num(t as f64)).collect()),
            ),
            (
                "metrics",
                Json::Arr(
                    self.metrics
                        .iter()
                        .map(|m| {
                            obj([
                                ("name", Json::Str(m.name.clone())),
                                ("value", Json::Num(m.value)),
                                ("unit", Json::Str(m.unit.into())),
                                ("gate", Json::Str(m.gate.as_str().into())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a `ppr-bench-baseline/v1` document.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let schema = v.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != "ppr-bench-baseline/v1" {
            return Err(format!("unknown baseline schema {schema:?}"));
        }
        let kind = match v.get("kind").and_then(Json::as_str) {
            Some("offline") => "offline",
            Some("serve") => "serve",
            Some("incremental") => "incremental",
            Some("faults") => "faults",
            other => return Err(format!("unknown baseline kind {other:?}")),
        };
        let threads = v
            .get("threads")
            .and_then(Json::as_array)
            .ok_or("missing threads")?
            .iter()
            .filter_map(Json::as_f64)
            .map(|t| t as usize)
            .collect();
        let metrics = v
            .get("metrics")
            .and_then(Json::as_array)
            .ok_or("missing metrics")?
            .iter()
            .map(|m| {
                Ok(Metric {
                    name: m
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("metric without name")?
                        .to_string(),
                    value: m
                        .get("value")
                        .and_then(Json::as_f64)
                        .ok_or("metric without value")?,
                    unit: match m.get("unit").and_then(Json::as_str) {
                        Some("s") => "s",
                        Some("bytes") => "bytes",
                        Some("entries") => "entries",
                        Some("qps") => "qps",
                        Some("ms") => "ms",
                        Some("x") => "x",
                        _ => "",
                    },
                    gate: m
                        .get("gate")
                        .and_then(Json::as_str)
                        .and_then(Gate::parse)
                        .ok_or("metric without gate")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            kind,
            host_cores: v
                .get("host_cores")
                .and_then(Json::as_f64)
                .map_or(0, |c| c as usize),
            threads,
            metrics,
        })
    }

    /// Write to `dir/BENCH_<kind>.json`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().render())?;
        Ok(path)
    }

    /// Read `dir/BENCH_<kind>.json`.
    pub fn read_from(dir: &Path, kind: &str) -> Result<Self, String> {
        let path = dir.join(format!("BENCH_{kind}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?)
    }
}

/// Repetitions per wall-clock measurement; the *minimum* is recorded.
/// Min-of-N discards scheduler noise (a preempted run can only be
/// slower, never faster), which matters for a cross-run gate built on
/// sub-second quick-profile timings.
const TIMING_REPS: usize = 3;

fn build_opts_gpa(threads: usize) -> GpaBuildOptions {
    GpaBuildOptions {
        subgraphs: 8,
        machines: 6, // paper default (§6.1), matching `repro serve`
        parallelism: ParallelismMode::with_workers(threads),
        ..Default::default()
    }
}

fn record_build(
    report: &mut BaselineReport,
    algo: &str,
    threads: usize,
    off: &OfflineReport,
) {
    let t = threads;
    report.push(
        format!("{algo}_build_wall_seconds_t{t}"),
        off.wall_seconds,
        "s",
        Gate::Wall,
    );
    report.push(
        format!("{algo}_build_modeled_max_seconds_t{t}"),
        off.max_machine_seconds(),
        "s",
        Gate::Info,
    );
    report.push(
        format!("{algo}_build_modeled_sum_seconds_t{t}"),
        off.per_machine_seconds.iter().sum(),
        "s",
        Gate::Info,
    );
    report.push(
        format!("{algo}_build_peak_scratch_bytes_t{t}"),
        off.peak_scratch_bytes as f64,
        "bytes",
        Gate::Info,
    );
}

/// Phase 1: offline construction across the worker sweep.
///
/// Also asserts, per worker count, that the threaded index stores
/// exactly as many entries as the sequential one — a cheap in-run echo
/// of the bit-identity `tests/parallel_build.rs` pins exhaustively.
pub fn run_offline(g: &CsrGraph, cfg: &PprConfig, threads: &[usize]) -> BaselineReport {
    let mut report = BaselineReport::new("offline", threads);

    let mut gpa_entries: Option<usize> = None;
    let mut hgpa_entries: Option<usize> = None;
    // Builds are bit-identical across worker counts (pinned in
    // tests/parallel_build.rs), so any sweep's index serves as the
    // persistence-phase subject below.
    let mut gpa_for_persist: Option<GpaIndex> = None;
    let mut hgpa_for_persist: Option<HgpaIndex> = None;
    for &t in threads {
        // Min-of-N: keep the report of the fastest repetition (its
        // modeled numbers are the least contention-inflated too).
        let mut best: Option<OfflineReport> = None;
        let mut entries = 0usize;
        for _ in 0..TIMING_REPS {
            let (gpa, off) = GpaIndex::build_distributed(g, cfg, &build_opts_gpa(t));
            entries = gpa.stored_entries();
            gpa_for_persist = Some(gpa);
            if best.as_ref().is_none_or(|b| off.wall_seconds < b.wall_seconds) {
                best = Some(off);
            }
        }
        record_build(&mut report, "gpa", t, &best.expect("TIMING_REPS >= 1"));
        assert_eq!(
            *gpa_entries.get_or_insert(entries),
            entries,
            "GPA build at {t} workers diverged from the first sweep entry"
        );

        let opts = ppr_core::hgpa::HgpaBuildOptions {
            parallelism: ParallelismMode::with_workers(t),
            ..default_hgpa_opts(6)
        };
        let mut best: Option<OfflineReport> = None;
        for _ in 0..TIMING_REPS {
            let (hgpa, off) = HgpaIndex::build_distributed(g, cfg, &opts);
            entries = hgpa.stored_entries();
            hgpa_for_persist = Some(hgpa);
            if best.as_ref().is_none_or(|b| off.wall_seconds < b.wall_seconds) {
                best = Some(off);
            }
        }
        let off = best.expect("TIMING_REPS >= 1");
        record_build(&mut report, "hgpa", t, &off);
        if t == *threads.first().expect("non-empty sweep") {
            report.push(
                "hgpa_build_partition_seconds".into(),
                off.partition_seconds,
                "s",
                Gate::Info,
            );
        }
        assert_eq!(
            *hgpa_entries.get_or_insert(entries),
            entries,
            "HGPA build at {t} workers diverged from the first sweep entry"
        );
    }
    report.push(
        "gpa_stored_entries".into(),
        gpa_entries.unwrap_or(0) as f64,
        "entries",
        Gate::Exact,
    );
    report.push(
        "hgpa_stored_entries".into(),
        hgpa_entries.unwrap_or(0) as f64,
        "entries",
        Gate::Exact,
    );

    // Persistence: save each index once (save time is info — it runs
    // once, offline), time cold loads min-of-N (wall-gated: the load
    // path is the cold-start serving cost), and record the artifact
    // size (exact-gated — the encoding and the build are both
    // deterministic, so a byte of drift means the format or the math
    // changed, not the hardware). Loaded indexes must answer
    // bit-identically to the built ones; asserted here as an in-run
    // echo of tests/persist_roundtrip.rs.
    let build_ref = *threads.first().expect("non-empty sweep");
    {
        let idx = gpa_for_persist.expect("sweep built at least one GPA index");
        let sw = ppr_core::parallel::Stopwatch::start();
        let mut buf = Vec::new();
        ppr_core::persist::save_gpa(&idx, &mut buf).expect("in-memory GPA save");
        let save_s = sw.elapsed_seconds();
        let mut load_s = f64::INFINITY;
        let mut loaded = None;
        for _ in 0..TIMING_REPS {
            let sw = ppr_core::parallel::Stopwatch::start();
            loaded = Some(ppr_core::persist::load_gpa(buf.as_slice()).expect("GPA round-trip"));
            load_s = load_s.min(sw.elapsed_seconds());
        }
        let loaded = loaded.expect("TIMING_REPS >= 1");
        assert_eq!(loaded.stored_entries(), idx.stored_entries(), "GPA load drifted");
        for u in [0, g.node_count() / 2, g.node_count() - 1] {
            assert_eq!(idx.query(node_id(u)), loaded.query(node_id(u)), "GPA PPV drifted at {u}");
        }
        report.push("gpa_save_seconds".into(), save_s, "s", Gate::Info);
        report.push("gpa_load_seconds".into(), load_s, "s", Gate::Wall);
        report.push("gpa_bytes_on_disk".into(), buf.len() as f64, "bytes", Gate::Exact);
        if let Some(build) = report.value(&format!("gpa_build_wall_seconds_t{build_ref}")) {
            report.push(
                "gpa_load_vs_build_speedup".into(),
                build / load_s.max(1e-12),
                "x",
                Gate::Info,
            );
        }
    }
    {
        let idx = hgpa_for_persist.expect("sweep built at least one HGPA index");
        let sw = ppr_core::parallel::Stopwatch::start();
        let mut buf = Vec::new();
        ppr_core::persist::save_hgpa(&idx, &mut buf).expect("in-memory HGPA save");
        let save_s = sw.elapsed_seconds();
        let mut load_s = f64::INFINITY;
        let mut loaded = None;
        for _ in 0..TIMING_REPS {
            let sw = ppr_core::parallel::Stopwatch::start();
            loaded = Some(ppr_core::persist::load_hgpa(buf.as_slice()).expect("HGPA round-trip"));
            load_s = load_s.min(sw.elapsed_seconds());
        }
        let loaded = loaded.expect("TIMING_REPS >= 1");
        assert_eq!(loaded.stored_entries(), idx.stored_entries(), "HGPA load drifted");
        for u in [0, g.node_count() / 2, g.node_count() - 1] {
            assert_eq!(idx.query(node_id(u)), loaded.query(node_id(u)), "HGPA PPV drifted at {u}");
        }
        report.push("hgpa_save_seconds".into(), save_s, "s", Gate::Info);
        report.push("hgpa_load_seconds".into(), load_s, "s", Gate::Wall);
        report.push("hgpa_bytes_on_disk".into(), buf.len() as f64, "bytes", Gate::Exact);
        if let Some(build) = report.value(&format!("hgpa_build_wall_seconds_t{build_ref}")) {
            report.push(
                "hgpa_load_vs_build_speedup".into(),
                build / load_s.max(1e-12),
                "x",
                Gate::Info,
            );
        }
    }

    // Speedups over the 1-worker wall time, per algorithm (info: they
    // measure this host's core count, not the code).
    for algo in ["gpa", "hgpa"] {
        if let Some(base) = report.value(&format!("{algo}_build_wall_seconds_t1")) {
            for &t in threads {
                if let Some(wall) = report.value(&format!("{algo}_build_wall_seconds_t{t}")) {
                    report.push(
                        format!("{algo}_build_speedup_t{t}"),
                        base / wall.max(1e-12),
                        "x",
                        Gate::Info,
                    );
                }
            }
        }
    }
    report
}

/// Phase 2 + 3: batched query fan-out rounds and the sharded serving
/// stream, across the worker sweep.
///
/// With `worker_command` set, a **socket phase** closes the report: the
/// same request stream over real worker processes, exact-gated on the
/// unified byte accounting — the modeled and the measured reply-byte
/// totals are recorded as two `exact` metrics that must stay equal to
/// each other *and* stable across runs, and the response-mismatch count
/// is pinned at zero. `None` (unit tests, whose harness binary has no
/// `worker` subcommand) skips the phase.
pub fn run_serve(
    g: &CsrGraph,
    cfg: &PprConfig,
    threads: &[usize],
    profile: &Profile,
    worker_command: Option<Vec<String>>,
) -> BaselineReport {
    let mut report = BaselineReport::new("serve", threads);
    let hgpa = HgpaIndex::build(g, cfg, &default_hgpa_opts(6));

    // Distinct, evenly spread sources; 3 rounds amortize timer noise.
    let n = g.node_count();
    let batch = 64.min(n);
    let stride = (n / batch).max(1);
    let sources: Vec<NodeId> = (0..batch).map(|i| node_id(i * stride)).collect();
    const ROUNDS: usize = 3;

    let mut reply_entries: Option<usize> = None;
    for &t in threads {
        let cluster = Cluster::new(ClusterConfig {
            parallelism: ParallelismMode::with_workers(t),
            ..ClusterConfig::default()
        });
        let mut wall = f64::INFINITY;
        let mut entries = 0usize;
        for _ in 0..TIMING_REPS {
            let start = ppr_core::parallel::Stopwatch::start();
            for _ in 0..ROUNDS {
                let round = cluster.query_many(&hgpa, &sources);
                entries = round.machines.iter().map(|m| m.entries).sum();
            }
            wall = wall.min(start.elapsed_seconds());
        }
        report.push(format!("fanout_wall_seconds_t{t}"), wall, "s", Gate::Wall);
        assert_eq!(
            *reply_entries.get_or_insert(entries),
            entries,
            "fan-out replies at {t} workers diverged"
        );
    }
    report.push(
        "fanout_reply_entries".into(),
        reply_entries.unwrap_or(0) as f64,
        "entries",
        Gate::Exact,
    );

    // Serving: the same Zipf request stream as `repro serve`, through
    // the sharded server at each worker count. `fresh_sources` is
    // deterministic *per worker count* but not across counts — the
    // shard fleet splits the byte budget, so residency (and hence which
    // repeats hit) legitimately varies with `t`; it is therefore an
    // exact-gated metric per sweep point, not a cross-sweep assertion.
    let knobs = ServeKnobs::from_env(profile);
    let requests = request_mix(
        &mut ZipfQueryStream::new(g, knobs.zipf, 0xCAFE),
        knobs.queries,
    );
    for &t in threads {
        let mut wall = f64::INFINITY;
        let mut last = None;
        for _ in 0..TIMING_REPS {
            let start = ppr_core::parallel::Stopwatch::start();
            let s = measure_sharded(&hgpa, &requests, &knobs, t);
            wall = wall.min(start.elapsed_seconds());
            last = Some(s);
        }
        let s = last.expect("TIMING_REPS >= 1");
        report.push(format!("serve_wall_seconds_t{t}"), wall, "s", Gate::Wall);
        report.push(
            format!("serve_throughput_qps_t{t}"),
            s.throughput_qps,
            "qps",
            Gate::Info,
        );
        report.push(format!("serve_p99_ms_t{t}"), s.p99_ms, "ms", Gate::Info);
        if t == *threads.first().expect("non-empty sweep") {
            report.push("serve_hit_rate".into(), s.hit_rate, "", Gate::Info);
        }
        report.push(
            format!("serve_fresh_sources_t{t}"),
            s.fresh_sources as f64,
            "entries",
            Gate::Exact,
        );
    }

    // Socket phase: the reply-byte totals are deterministic (same
    // stream, same cache policy, same frame formula), so both columns
    // gate exactly; wall time and supervisor traffic are trend records
    // (a run with a worker restart still passes the gates as long as
    // every answer stayed bit-identical — which run_socket_phase itself
    // asserts).
    if let Some(cmd) = worker_command {
        let s = crate::serve::run_socket_phase(g, &hgpa, &knobs, &requests, cmd);
        report.push(
            "serve_socket_round_bytes_modeled".into(),
            s.modeled.round_bytes as f64,
            "bytes",
            Gate::Exact,
        );
        report.push(
            "serve_socket_round_bytes_measured".into(),
            s.socketed.round_bytes as f64,
            "bytes",
            Gate::Exact,
        );
        report.push(
            "serve_socket_mismatches".into(),
            s.mismatches as f64,
            "entries",
            Gate::Exact,
        );
        report.push(
            "serve_socket_fresh_sources".into(),
            s.socketed.fresh_sources as f64,
            "entries",
            Gate::Exact,
        );
        report.push("serve_socket_wall_seconds".into(), s.wall_seconds, "s", Gate::Info);
        report.push(
            "serve_socket_restarts".into(),
            s.supervisor.restarts as f64,
            "entries",
            Gate::Info,
        );
        report.push(
            "serve_socket_rx_bytes".into(),
            s.wire.bytes_received as f64,
            "bytes",
            Gate::Info,
        );
        report.push(
            "serve_socket_throughput_qps".into(),
            s.socketed.throughput_qps,
            "qps",
            Gate::Info,
        );
    }
    report
}

/// One regression found by [`compare`].
#[derive(Clone, Debug)]
pub struct Regression {
    /// Which metric regressed.
    pub name: String,
    /// Human-readable description of the failure.
    pub detail: String,
}

/// Gate a fresh report against a committed baseline. Returns every
/// failure; empty means the gate passes. `tolerance` is the allowed
/// relative wall-clock slowdown (0.25 = +25%).
pub fn compare(
    baseline: &BaselineReport,
    fresh: &BaselineReport,
    tolerance: f64,
) -> Vec<Regression> {
    let mut failures = Vec::new();
    for m in &baseline.metrics {
        if m.gate == Gate::Info {
            continue;
        }
        let Some(value) = fresh.value(&m.name) else {
            failures.push(Regression {
                name: m.name.clone(),
                detail: format!("{}: missing from the fresh run", m.name),
            });
            continue;
        };
        match m.gate {
            Gate::Wall => {
                if value > m.value * (1.0 + tolerance) {
                    failures.push(Regression {
                        name: m.name.clone(),
                        detail: format!(
                            "{}: {} -> {} (+{:.0}%, tolerance {:.0}%)",
                            m.name,
                            fmt_secs(m.value),
                            fmt_secs(value),
                            (value / m.value - 1.0) * 100.0,
                            tolerance * 100.0
                        ),
                    });
                }
            }
            Gate::Exact => {
                if value != m.value {
                    failures.push(Regression {
                        name: m.name.clone(),
                        detail: format!(
                            "{}: deterministic count changed {} -> {}",
                            m.name, m.value, value
                        ),
                    });
                }
            }
            Gate::Floor => {
                if value <= 1.0 {
                    failures.push(Regression {
                        name: m.name.clone(),
                        detail: format!(
                            "{}: {value:.2}x fell to or below the 1x floor \
                             (baseline recorded {:.2}x)",
                            m.name, m.value
                        ),
                    });
                }
            }
            Gate::Info => unreachable!("filtered above"),
        }
    }
    failures
}

/// The `repro bench-baseline` entry point: run all phases on the quick
/// (or `--full`) profile, print the sweep tables, and write both JSON
/// files to [`BaselineKnobs::out_dir`].
pub fn run_and_write(profile: &Profile) {
    let knobs = BaselineKnobs::from_env();
    let g = dataset_graph(Dataset::Web, profile);
    let cfg = PprConfig::default();
    println!(
        "bench-baseline: Web graph n={} | worker sweep {:?} | out {}",
        g.node_count(),
        knobs.threads,
        knobs.out_dir.display()
    );

    let offline = run_offline(&g, &cfg, &knobs.threads);
    // bench-baseline runs as the `repro` binary, which carries the
    // hidden `worker` subcommand — so the socket phase can spawn its
    // worker fleet by re-invoking this very executable.
    let worker = std::env::current_exe()
        .ok()
        .map(|exe| vec![exe.display().to_string(), "worker".to_string()]);
    let serve = run_serve(&g, &cfg, &knobs.threads, profile, worker);

    let mut t = Table::new(
        "Offline build sweep (wall = this host; modeled = dedicated machines)",
        &["workers", "gpa wall", "gpa speedup", "hgpa wall", "hgpa speedup", "hgpa modeled max", "peak scratch"],
    );
    for &w in &knobs.threads {
        t.row(vec![
            w.to_string(),
            fmt_secs(offline.value(&format!("gpa_build_wall_seconds_t{w}")).unwrap_or(0.0)),
            format!("{:.2}x", offline.value(&format!("gpa_build_speedup_t{w}")).unwrap_or(1.0)),
            fmt_secs(offline.value(&format!("hgpa_build_wall_seconds_t{w}")).unwrap_or(0.0)),
            format!("{:.2}x", offline.value(&format!("hgpa_build_speedup_t{w}")).unwrap_or(1.0)),
            fmt_secs(
                offline
                    .value(&format!("hgpa_build_modeled_max_seconds_t{w}"))
                    .unwrap_or(0.0),
            ),
            fmt_bytes(
                offline
                    .value(&format!("hgpa_build_peak_scratch_bytes_t{w}"))
                    .unwrap_or(0.0) as u64,
            ),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "Query fan-out + serving sweep",
        &["workers", "fanout wall", "serve wall", "serve throughput", "serve p99"],
    );
    for &w in &knobs.threads {
        t.row(vec![
            w.to_string(),
            fmt_secs(serve.value(&format!("fanout_wall_seconds_t{w}")).unwrap_or(0.0)),
            fmt_secs(serve.value(&format!("serve_wall_seconds_t{w}")).unwrap_or(0.0)),
            format!(
                "{:.0} q/s",
                serve.value(&format!("serve_throughput_qps_t{w}")).unwrap_or(0.0)
            ),
            format!("{:.2} ms", serve.value(&format!("serve_p99_ms_t{w}")).unwrap_or(0.0)),
        ]);
    }
    t.print();

    for report in [&offline, &serve] {
        match report.write_to(&knobs.out_dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", report.file_name());
                std::process::exit(1);
            }
        }
    }
}

/// The `repro bench-compare <baseline-dir> <fresh-dir>` entry point.
/// Exits non-zero when any gated metric regressed.
pub fn compare_dirs(baseline_dir: &Path, fresh_dir: &Path) {
    let tolerance = std::env::var("PPR_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for kind in ["offline", "serve", "incremental", "faults"] {
        let baseline = match BaselineReport::read_from(baseline_dir, kind) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-compare: {e}");
                std::process::exit(1);
            }
        };
        let fresh = match BaselineReport::read_from(fresh_dir, kind) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-compare: {e}");
                std::process::exit(1);
            }
        };
        if baseline.host_cores != fresh.host_cores {
            eprintln!(
                "bench-compare: note: {kind} baseline was produced on a {}-core host, \
                 fresh run on {} cores — wall comparisons are meaningful in the \
                 regression direction only; refresh the committed baseline from \
                 comparable hardware if this gate misfires",
                baseline.host_cores, fresh.host_cores
            );
        }
        checked += baseline
            .metrics
            .iter()
            .filter(|m| m.gate != Gate::Info)
            .count();
        failures.extend(compare(&baseline, &fresh, tolerance));
    }
    if failures.is_empty() {
        println!(
            "bench-compare: {checked} gated metrics within tolerance ({:.0}% wall)",
            tolerance * 100.0
        );
    } else {
        eprintln!("bench-compare: {} regression(s):", failures.len());
        for f in &failures {
            eprintln!("  {}", f.detail);
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> Profile {
        Profile {
            node_cap: Some(600),
            queries: 2,
            ..Profile::quick()
        }
    }

    fn sample_report() -> BaselineReport {
        BaselineReport {
            kind: "offline",
            host_cores: 1,
            threads: vec![1, 2],
            metrics: vec![
                Metric {
                    name: "x_wall_seconds_t1".into(),
                    value: 1.0,
                    unit: "s",
                    gate: Gate::Wall,
                },
                Metric {
                    name: "x_entries".into(),
                    value: 42.0,
                    unit: "entries",
                    gate: Gate::Exact,
                },
                Metric {
                    name: "x_speedup_t2".into(),
                    value: 1.8,
                    unit: "x",
                    gate: Gate::Info,
                },
                Metric {
                    name: "x_incr_speedup".into(),
                    value: 6.0,
                    unit: "x",
                    gate: Gate::Floor,
                },
            ],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = sample_report();
        let parsed = BaselineReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.kind, "offline");
        assert_eq!(parsed.threads, vec![1, 2]);
        assert_eq!(parsed.metrics.len(), 4);
        assert_eq!(parsed.value("x_entries"), Some(42.0));
        assert_eq!(parsed.metrics[0].gate, Gate::Wall);
        assert_eq!(parsed.metrics[2].gate, Gate::Info);
        assert_eq!(parsed.metrics[3].gate, Gate::Floor);
    }

    #[test]
    fn compare_gates_wall_and_exact_only() {
        let base = sample_report();
        // Within tolerance: +20% wall, same entries, info wildly off.
        let mut fresh = base.clone();
        fresh.metrics[0].value = 1.2;
        fresh.metrics[2].value = 0.1;
        assert!(compare(&base, &fresh, 0.25).is_empty());
        // Beyond tolerance.
        fresh.metrics[0].value = 1.3;
        let fails = compare(&base, &fresh, 0.25);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].name.contains("wall"));
        // Exact drift.
        fresh.metrics[0].value = 1.0;
        fresh.metrics[1].value = 43.0;
        let fails = compare(&base, &fresh, 0.25);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].detail.contains("deterministic"));
        // Floor: a worse-but-still-above-1x speedup passes, dropping to
        // the floor (or under) fails no matter what the baseline stored.
        fresh.metrics[1].value = 42.0;
        fresh.metrics[3].value = 1.2;
        assert!(compare(&base, &fresh, 0.25).is_empty());
        fresh.metrics[3].value = 0.9;
        let fails = compare(&base, &fresh, 0.25);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].detail.contains("floor"));
        fresh.metrics[3].value = 6.0;
        // Missing metric.
        fresh.metrics.remove(0);
        assert!(!compare(&base, &fresh, 0.25).is_empty());
    }

    #[test]
    fn offline_phase_emits_sweep_metrics_and_is_self_consistent() {
        let profile = tiny_profile();
        let g = dataset_graph(Dataset::Web, &profile);
        let threads = [1usize, 2];
        let r = run_offline(&g, &PprConfig::default(), &threads);
        for t in threads {
            for algo in ["gpa", "hgpa"] {
                let wall = r
                    .value(&format!("{algo}_build_wall_seconds_t{t}"))
                    .expect("wall metric");
                assert!(wall > 0.0);
                assert!(
                    r.value(&format!("{algo}_build_modeled_sum_seconds_t{t}"))
                        .expect("modeled sum")
                        > 0.0
                );
                assert!(
                    r.value(&format!("{algo}_build_peak_scratch_bytes_t{t}"))
                        .expect("scratch")
                        > 0.0
                );
            }
        }
        assert!(r.value("gpa_stored_entries").unwrap() > 0.0);
        assert!(r.value("hgpa_stored_entries").unwrap() > 0.0);
        assert!(r.value("hgpa_build_speedup_t2").unwrap() > 0.0);
        // Persistence metrics: artifacts are non-empty and load timing
        // plus the load-vs-build ratio are present for both indexes.
        for algo in ["gpa", "hgpa"] {
            assert!(r.value(&format!("{algo}_bytes_on_disk")).unwrap() > 0.0);
            assert!(r.value(&format!("{algo}_load_seconds")).unwrap() > 0.0);
            assert!(r.value(&format!("{algo}_save_seconds")).unwrap() > 0.0);
            assert!(r.value(&format!("{algo}_load_vs_build_speedup")).unwrap() > 0.0);
        }
        // The file under the committed name parses back.
        let dir = std::env::temp_dir().join("ppr-baseline-test");
        let path = r.write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_offline.json"));
        let back = BaselineReport::read_from(&dir, "offline").unwrap();
        assert!(compare(&r, &back, 0.0).is_empty(), "roundtrip must gate clean");
    }

    #[test]
    fn serve_phase_emits_sweep_metrics() {
        let profile = tiny_profile();
        let g = dataset_graph(Dataset::Web, &profile);
        let r = run_serve(&g, &PprConfig::default(), &[1, 2], &profile, None);
        assert!(r.value("fanout_wall_seconds_t1").unwrap() > 0.0);
        assert!(r.value("fanout_reply_entries").unwrap() > 0.0);
        assert!(r.value("serve_wall_seconds_t2").unwrap() > 0.0);
        assert!(r.value("serve_fresh_sources_t1").unwrap() > 0.0);
        assert!(r.value("serve_fresh_sources_t2").unwrap() > 0.0);
    }
}
