//! Experiment sizing profiles.

/// How big the experiment instances are.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Cap on generated graph node counts (`None` = DESIGN.md sizes).
    pub node_cap: Option<usize>,
    /// Queries averaged per measurement (the paper averages 1000; the
    /// quick profile uses fewer).
    pub queries: usize,
    /// Machine counts swept in the machines experiments.
    pub machine_sweep: &'static [usize],
    /// Label printed in headers.
    pub name: &'static str,
}

impl Profile {
    /// Fast profile used by `cargo bench` (minutes, not hours).
    pub fn quick() -> Self {
        Self {
            node_cap: Some(2_500),
            queries: 8,
            machine_sweep: &[2, 4, 6, 8, 10],
            name: "quick",
        }
    }

    /// Full profile: DESIGN.md dataset sizes, more queries.
    pub fn full() -> Self {
        Self {
            node_cap: None,
            queries: 50,
            machine_sweep: &[2, 4, 6, 8, 10],
            name: "full",
        }
    }

    /// Select from the environment: `PPR_BENCH_FULL=1` upgrades quick runs.
    pub fn from_env() -> Self {
        if std::env::var("PPR_BENCH_FULL").map(|v| v == "1").unwrap_or(false) {
            Self::full()
        } else {
            Self::quick()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = Profile::quick();
        let f = Profile::full();
        assert!(q.node_cap.is_some());
        assert!(f.node_cap.is_none());
        assert!(q.queries < f.queries);
    }
}
