#![warn(missing_docs)]

//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§6 and Appendices A/B).
//!
//! Each `exp_*` module implements one table/figure group and prints the
//! same rows/series the paper reports. Entry points:
//!
//! * `cargo bench` — every figure runs as a harness=false bench target at
//!   the *quick* profile (smaller graphs, fewer queries), plus criterion
//!   micro-benches for the kernels.
//! * `cargo run --release -p ppr-bench --bin repro -- <experiment|all>
//!   [--full]` — run individual experiments; `--full` uses the DESIGN.md
//!   dataset sizes.
//!
//! Absolute numbers will not match the paper (scaled synthetic data, one
//! host simulating the cluster); the *shapes* — who wins, how metrics
//! move with machines/levels/tolerance — are the reproduction target.
//! EXPERIMENTS.md records both sides.

pub mod artifacts;
pub mod audit;
pub mod baseline;
pub mod exp_fig09;
pub mod exp_fig10_13;
pub mod exp_fig14_16;
pub mod exp_fig17;
pub mod exp_fig18_19;
pub mod exp_fig20_27;
pub mod exp_fig21_22;
pub mod exp_fig23_26;
pub mod exp_fig28;
pub mod exp_tables;
pub mod faults;
pub mod incremental;
pub mod json;
pub mod profile;
pub mod report;
pub mod serve;

pub use profile::Profile;

use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::PprConfig;
use ppr_graph::CsrGraph;
use ppr_partition::HierarchyConfig;
use ppr_workload::Dataset;

/// Generate a dataset graph at the profile's scale.
///
/// The profile's `node_cap` is interpreted *proportionally*: it states the
/// node count the reference dataset (Web, 10k in DESIGN.md) should get,
/// and every other dataset scales by the same factor — so the Meetup
/// M1–M5 series keeps growing and PLD stays the biggest, as in the paper.
pub fn dataset_graph(d: Dataset, profile: &Profile) -> CsrGraph {
    const REFERENCE_NODES: f64 = 10_000.0; // Web's DESIGN.md size
    let spec_nodes = d.spec().config.nodes;
    match profile.node_cap {
        Some(cap) if (cap as f64) < REFERENCE_NODES => {
            let factor = cap as f64 / REFERENCE_NODES;
            let nodes = ((spec_nodes as f64 * factor).round() as usize).max(300);
            d.generate_with_nodes(nodes)
        }
        _ => d.generate(),
    }
}

/// The workspace-default HGPA build options for experiments.
///
/// Builds honour `PPR_BUILD_THREADS` (default sequential): the modeled
/// per-machine offline seconds are work-item sums either way, so the
/// figure numbers keep their dedicated-machine meaning, threaded or not.
pub fn default_hgpa_opts(machines: usize) -> HgpaBuildOptions {
    HgpaBuildOptions {
        machines,
        hierarchy: HierarchyConfig::default(),
        drop_threshold: None,
        parallelism: ppr_core::ParallelismMode::build_from_env(),
    }
}

/// Build an HGPA index with defaults for a dataset graph.
pub fn build_hgpa(g: &CsrGraph, machines: usize, cfg: &PprConfig) -> HgpaIndex {
    HgpaIndex::build(g, cfg, &default_hgpa_opts(machines))
}

/// Run every experiment at the given profile (the `repro all` path),
/// plus the serving scenario.
pub fn run_all(profile: &Profile) {
    exp_tables::run(profile);
    exp_fig09::run(profile);
    exp_fig10_13::run(profile);
    exp_fig14_16::run(profile);
    exp_fig17::run(profile);
    exp_fig18_19::run(profile);
    exp_fig20_27::run(profile);
    exp_fig21_22::run(profile);
    exp_fig23_26::run(profile);
    exp_fig28::run(profile);
    serve::run(profile);
}
