//! Reproduce the paper's tables and figures from the command line.
//!
//! ```text
//! cargo run --release -p ppr-bench --bin repro -- all
//! cargo run --release -p ppr-bench --bin repro -- fig21 fig22 --full
//! cargo run --release -p ppr-bench --bin repro -- list
//! ```

use ppr_bench::{profile::Profile, *};

const EXPERIMENTS: &[(&str, &str)] = &[
    ("tables", "Tables 2–6: hub nodes per level + Meetup sizes"),
    ("fig09", "Figure 9: GPA vs HGPA"),
    ("fig10", "Figures 10–13: machine-count sweep (alias fig11/fig12/fig13)"),
    ("fig14", "Figures 14–16: partitioning-level sweep (alias fig15/fig16)"),
    ("fig17", "Figure 17: multi-way partitioning"),
    ("fig18", "Figures 18–19: tolerance sweep + accuracy (alias fig19)"),
    ("fig20", "Figures 20 & 27: Meetup scalability (alias fig27)"),
    ("fig21", "Figures 21–22: vs Pregel+/Blogel (alias fig22)"),
    ("fig23", "Figures 23–26: centralized + FastPPV (alias fig24/fig25/fig26)"),
    ("fig28", "Figure 28: PLD_full processor sweep"),
    (
        "serve",
        "Serving scenario: Zipf stream -> batching + PPV cache + top-k, then an open-loop \
         dynamic phase with edge updates + queueing delay (PPR_SERVE_* env knobs)",
    ),
    (
        "index-save",
        "Build GPA + HGPA for the serving scenario and persist them as checksummed \
         artifacts (PPR_INDEX_PATH selects the dir, default target/ppr-index)",
    ),
    (
        "index-load",
        "Cold-start both persisted artifacts — no rebuild — and serve a query batch \
         from each (the save -> load -> serve path; fails if artifacts are missing)",
    ),
    (
        "bench-baseline",
        "Persistent perf baseline: offline builds + query fan-out + serving across the \
         1/2/4/8 worker sweep; writes BENCH_offline.json / BENCH_serve.json \
         (PPR_BENCH_BASELINE selects the output dir, PPR_BENCH_THREADS the sweep)",
    ),
    (
        "bench-incremental",
        "Initial-vs-incremental speedup curves: single-edge inserts at leaf/mid/root \
         hierarchy positions on Email/Web/Youtube; writes BENCH_incremental.json with \
         floor-gated localized-update speedups (PPR_BENCH_BASELINE selects the dir)",
    ),
    (
        "bench-faults",
        "Overload/failure resilience baseline: bursty open loop with and without the \
         scripted fault scenario (straggler + crash window + transient drops); writes \
         BENCH_faults.json with exact-gated shed/degraded counts (PPR_FAULT_SEED, \
         PPR_SERVE_QUEUE_CAP, PPR_SERVE_SLO_MS)",
    ),
    (
        "bench-compare",
        "Regression gate: bench-compare <baseline-dir> <fresh-dir> fails on >25% \
         wall-clock regressions, drifted deterministic counts, or incremental \
         speedups at/below the 1x floor (PPR_BENCH_TOLERANCE)",
    ),
    (
        "audit",
        "Static determinism/concurrency audit over the workspace sources; \
         audit [--json <path>] [--baseline <path>] exits nonzero on violations \
         or on suppressions beyond the committed AUDIT_baseline.json",
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let profile = if full { Profile::full() } else { Profile::from_env() };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if selected.is_empty() || selected.contains(&"list") {
        println!("usage: repro [--full] <experiment...>|all|list");
        println!("       repro bench-compare <baseline-dir> <fresh-dir>");
        println!("       repro audit [--json <path>] [--baseline <path>]\n");
        for (name, desc) in EXPERIMENTS {
            println!("  {name:<8} {desc}");
        }
        return;
    }

    // Hidden subcommand: run as one socket-cluster worker process. The
    // supervisor spawns `current_exe() worker` so the serve experiment's
    // socket phase needs no second binary on disk; identity arrives via
    // the `PPR_WORKER_*` environment.
    if args.first().map(String::as_str) == Some("worker") {
        match ppr_serve::worker::run_from_env() {
            Ok(()) => return,
            Err(e) => {
                eprintln!("worker: {e}");
                std::process::exit(1);
            }
        }
    }

    // `audit` takes value flags (`--json x`, `--baseline y`), which the
    // generic `--`-prefix filter above would mangle — parse them here.
    if args.first().map(String::as_str) == Some("audit") {
        let mut json_out = None;
        let mut baseline = None;
        let mut rest = args[1..].iter();
        while let Some(a) = rest.next() {
            match a.as_str() {
                "--json" => match rest.next() {
                    Some(p) => json_out = Some(std::path::PathBuf::from(p)),
                    None => {
                        eprintln!("usage: repro audit [--json <path>] [--baseline <path>]");
                        std::process::exit(2);
                    }
                },
                "--baseline" => match rest.next() {
                    Some(p) => baseline = Some(std::path::PathBuf::from(p)),
                    None => {
                        eprintln!("usage: repro audit [--json <path>] [--baseline <path>]");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!("audit: unknown argument {other:?}");
                    eprintln!("usage: repro audit [--json <path>] [--baseline <path>]");
                    std::process::exit(2);
                }
            }
        }
        std::process::exit(audit::run(json_out.as_deref(), baseline.as_deref()));
    }

    // `bench-compare` takes positional directories, not experiment names.
    if selected[0] == "bench-compare" {
        let &[baseline, fresh] = &selected[1..] else {
            eprintln!("usage: repro bench-compare <baseline-dir> <fresh-dir>");
            std::process::exit(2);
        };
        baseline::compare_dirs(std::path::Path::new(baseline), std::path::Path::new(fresh));
        return;
    }

    println!(
        "profile: {} (node cap {:?}, {} queries/measurement)",
        profile.name, profile.node_cap, profile.queries
    );

    for sel in selected {
        match sel {
            "all" => run_all(&profile),
            "tables" => exp_tables::run(&profile),
            "fig09" | "fig9" => exp_fig09::run(&profile),
            "fig10" | "fig11" | "fig12" | "fig13" => exp_fig10_13::run(&profile),
            "fig14" | "fig15" | "fig16" => exp_fig14_16::run(&profile),
            "fig17" => exp_fig17::run(&profile),
            "fig18" | "fig19" => exp_fig18_19::run(&profile),
            "fig20" | "fig27" => exp_fig20_27::run(&profile),
            "fig21" | "fig22" => exp_fig21_22::run(&profile),
            "fig23" | "fig24" | "fig25" | "fig26" => exp_fig23_26::run(&profile),
            "fig28" => exp_fig28::run(&profile),
            "serve" => serve::run(&profile),
            "index-save" => artifacts::run_save(&profile),
            "index-load" => artifacts::run_load(&profile),
            "bench-baseline" => baseline::run_and_write(&profile),
            "bench-incremental" => incremental::run_and_write(&profile),
            "bench-faults" => faults::run_and_write(&profile),
            other => {
                eprintln!("unknown experiment {other:?}; try `repro list`");
                std::process::exit(2);
            }
        }
    }
}
