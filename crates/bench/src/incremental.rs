//! `repro bench-incremental` — initial-build vs incremental-update
//! speedup curves, by dataset topology and update position.
//!
//! The differential update engine's whole value proposition is that
//! maintaining the index under a localized change costs a small fraction
//! of rebuilding it. This phase makes that claim a *gated number*: for
//! each dataset (Email / Web / Youtube at the profile's scale) it times
//! the initial HGPA build, then times a single-edge insertion through
//! [`MaintenanceEngine::apply_edges`] at three positions in the
//! hierarchy —
//!
//! * **leaf**: both endpoints share a home leaf — the most localized
//!   change, touching one leaf plus the hub vectors that reach it;
//! * **mid**: the endpoints' lowest common ancestor is an internal
//!   subgraph below the root — the insert crosses children there and
//!   forces a promotion cascade at that level;
//! * **root**: the LCA is the root — the least localized insert, whose
//!   promotion recomputes root-level skeleton state.
//!
//! Each position reports wall seconds (min-of-N over a pristine cloned
//! index per repetition), the speedup over the initial build, and the
//! exact number of vectors the affected-region sweep recomputed. The
//! speedups for **leaf and mid are floor-gated**: `repro bench-compare`
//! fails if either ever drops to 1x or below, i.e. if incremental
//! maintenance stops beating a from-scratch rebuild on localized
//! updates. The root position is recorded for trends only — a
//! root-level promotion legitimately approaches rebuild cost on small
//! quick-profile graphs. Results land in `BENCH_incremental.json`
//! (schema `ppr-bench-baseline/v1`), compared by the same gate as the
//! offline/serve baselines.
//!
//! Every timed update is also echoed against a scratch rebuild over the
//! maintained hierarchy at the inserted edge's source — an in-run spot
//! check of the bit-identity `tests/node_churn.rs` pins exhaustively.

use crate::baseline::{BaselineKnobs, BaselineReport, Gate};
use crate::report::{fmt_secs, Table};
use crate::{dataset_graph, default_hgpa_opts, Profile};
use ppr_core::hgpa::HgpaIndex;
use ppr_core::incremental::MaintenanceEngine;
use ppr_core::PprConfig;
use ppr_graph::{delta, CsrGraph, EdgeUpdate, NodeId};
use ppr_partition::Hierarchy;
use ppr_workload::Dataset;

/// Repetitions per wall-clock measurement; the minimum is recorded
/// (same rationale as the offline/serve baseline: a preempted run can
/// only be slower).
const TIMING_REPS: usize = 3;

/// Where in the hierarchy an inserted edge lands, by its endpoints'
/// lowest common ancestor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Position {
    /// LCA is a leaf: both endpoints share a home leaf.
    Leaf,
    /// LCA is internal but not the root.
    Mid,
    /// LCA is the root.
    Root,
}

impl Position {
    fn label(self) -> &'static str {
        match self {
            Position::Leaf => "leaf",
            Position::Mid => "mid",
            Position::Root => "root",
        }
    }

    /// Leaf and mid inserts are the "localized updates" the ISSUE's
    /// acceptance criterion gates; root-level cost is informational.
    fn gate(self) -> Gate {
        match self {
            Position::Leaf | Position::Mid => Gate::Floor,
            Position::Root => Gate::Info,
        }
    }
}

/// The arena index of `u` and `v`'s lowest common ancestor subgraph.
fn lca(h: &Hierarchy, u: NodeId, v: NodeId) -> usize {
    let pu = h.path_to(u);
    let pv = h.path_to(v);
    let mut lca = h.root();
    for (a, b) in pu.iter().zip(pv.iter()) {
        if a == b {
            lca = *a;
        } else {
            break;
        }
    }
    lca
}

fn classify(h: &Hierarchy, u: NodeId, v: NodeId) -> Position {
    let l = lca(h, u, v);
    if h.nodes[l].children.is_empty() {
        Position::Leaf
    } else if l == h.root() {
        Position::Root
    } else {
        Position::Mid
    }
}

/// Deterministically pick a non-edge `(u, v)` whose LCA sits at the
/// requested position. Returns `None` when the hierarchy is too shallow
/// to host one (e.g. a two-level tree has no mid position).
fn find_edge_at(h: &Hierarchy, g: &CsrGraph, pos: Position) -> Option<(NodeId, NodeId)> {
    // Candidate subgraphs whose *own* level matches the position; the
    // pair is drawn so that this subgraph is the LCA.
    let candidates: Vec<usize> = (0..h.nodes.len())
        .filter(|&i| match pos {
            Position::Leaf => h.nodes[i].children.is_empty() && h.nodes[i].members.len() >= 2,
            Position::Mid => i != h.root() && h.nodes[i].children.len() >= 2,
            Position::Root => i == h.root() && h.nodes[i].children.len() >= 2,
        })
        .collect();
    const SCAN: usize = 16; // first few members per side are plenty
    for &sg in &candidates {
        let node = &h.nodes[sg];
        let (left, right): (&[NodeId], &[NodeId]) = if node.children.is_empty() {
            (&node.members, &node.members)
        } else {
            // Members of two distinct children exclude this subgraph's
            // hubs, so the insert genuinely crosses children here.
            let c0 = node.children[0];
            let c1 = node.children[node.children.len() - 1];
            (&h.nodes[c0].members, &h.nodes[c1].members)
        };
        for &u in left.iter().take(SCAN) {
            for &v in right.iter().take(SCAN) {
                if u != v && !g.has_edge(u, v) && classify(h, u, v) == pos {
                    return Some((u, v));
                }
            }
        }
    }
    None
}

/// Run the phase for one dataset, appending its metrics to `report` and
/// one table row per update position.
fn run_dataset(ds: Dataset, profile: &Profile, report: &mut BaselineReport, table: &mut Table) {
    let g = dataset_graph(ds, profile);
    let cfg = PprConfig::default();
    let opts = default_hgpa_opts(6);
    let name = ds.name().to_lowercase();

    // Initial build, min-of-N (any repetition's index serves as the
    // pristine subject below — builds are bit-identical).
    let mut build_wall = f64::INFINITY;
    let mut idx = None;
    for _ in 0..TIMING_REPS {
        let sw = ppr_core::parallel::Stopwatch::start();
        let built = HgpaIndex::build(&g, &cfg, &opts);
        build_wall = build_wall.min(sw.elapsed_seconds());
        idx = Some(built);
    }
    let idx = idx.expect("TIMING_REPS >= 1");
    report.push(
        format!("incr_initial_build_seconds_{name}"),
        build_wall,
        "s",
        Gate::Wall,
    );

    for pos in [Position::Leaf, Position::Mid, Position::Root] {
        let Some((u, v)) = find_edge_at(idx.hierarchy(), &g, pos) else {
            // No silent coverage holes: a too-shallow hierarchy at this
            // profile scale is reported, not skipped quietly.
            println!(
                "bench-incremental: {name}: no {} position in a depth-{} hierarchy — skipped",
                pos.label(),
                idx.hierarchy().nodes.iter().map(|n| n.level).max().unwrap_or(0)
            );
            continue;
        };
        let g2 = delta::apply_edge_updates(&g, &[EdgeUpdate::Insert(u, v)]);
        let mut update_wall = f64::INFINITY;
        let mut vectors = 0usize;
        let mut updated = None;
        for _ in 0..TIMING_REPS {
            // Pristine state per repetition: a cloned index and a cold
            // engine, so no repetition inherits the previous one's
            // condensation cache or arenas.
            let mut fresh = idx.clone();
            let mut engine = MaintenanceEngine::new();
            let sw = ppr_core::parallel::Stopwatch::start();
            let stats = engine
                .apply_edges(&mut fresh, &g2, &[(u, v)])
                .expect("endpoints are live");
            update_wall = update_wall.min(sw.elapsed_seconds());
            vectors = stats.vectors_recomputed;
            updated = Some(fresh);
        }
        let updated = updated.expect("TIMING_REPS >= 1");
        // In-run exactness echo at the inserted edge's source.
        let rebuilt =
            HgpaIndex::build_with_hierarchy(&g2, &cfg, &opts, updated.hierarchy().clone());
        assert_eq!(
            updated.query(u),
            rebuilt.query(u),
            "{name}/{}: incremental update diverged from a scratch rebuild",
            pos.label()
        );

        let speedup = build_wall / update_wall.max(1e-12);
        report.push(
            format!("incr_update_seconds_{name}_{}", pos.label()),
            update_wall,
            "s",
            Gate::Wall,
        );
        report.push(
            format!("incr_speedup_{name}_{}", pos.label()),
            speedup,
            "x",
            pos.gate(),
        );
        report.push(
            format!("incr_vectors_recomputed_{name}_{}", pos.label()),
            vectors as f64,
            "entries",
            Gate::Exact,
        );
        table.row(vec![
            name.clone(),
            pos.label().to_string(),
            fmt_secs(build_wall),
            fmt_secs(update_wall),
            format!("{speedup:.1}x"),
            vectors.to_string(),
        ]);
    }
}

/// The `repro bench-incremental` entry point: run the three datasets,
/// print the speedup table, and write `BENCH_incremental.json` to
/// [`BaselineKnobs::out_dir`].
pub fn run_and_write(profile: &Profile) {
    let knobs = BaselineKnobs::from_env();
    println!(
        "bench-incremental: Email/Web/Youtube at profile {} | out {}",
        profile.name,
        knobs.out_dir.display()
    );
    let mut report = BaselineReport::new("incremental", &[1]);
    let mut table = Table::new(
        "Initial build vs incremental update (single-edge insert, min-of-3)",
        &["dataset", "position", "build", "update", "speedup", "vectors"],
    );
    for ds in [Dataset::Email, Dataset::Web, Dataset::Youtube] {
        run_dataset(ds, profile, &mut report, &mut table);
    }
    table.print();
    match report.write_to(&knobs.out_dir) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("cannot write {}: {e}", report.file_name());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_found_and_classified_consistently() {
        let profile = Profile {
            node_cap: Some(900),
            queries: 2,
            ..Profile::quick()
        };
        let g = dataset_graph(Dataset::Web, &profile);
        let idx = HgpaIndex::build(&g, &PprConfig::default(), &default_hgpa_opts(4));
        let h = idx.hierarchy();
        for pos in [Position::Leaf, Position::Mid, Position::Root] {
            let (u, v) = find_edge_at(h, &g, pos)
                .unwrap_or_else(|| panic!("no {} position at this scale", pos.label()));
            assert!(!g.has_edge(u, v));
            assert_eq!(classify(h, u, v), pos);
        }
    }

    #[test]
    fn incremental_phase_emits_gated_speedups() {
        let profile = Profile {
            node_cap: Some(900),
            queries: 2,
            ..Profile::quick()
        };
        let mut report = BaselineReport::new("incremental", &[1]);
        let mut table = Table::new("t", &["d", "p", "b", "u", "s", "v"]);
        run_dataset(Dataset::Web, &profile, &mut report, &mut table);
        let web_build = report
            .value("incr_initial_build_seconds_web")
            .expect("build metric");
        assert!(web_build > 0.0);
        for pos in ["leaf", "mid", "root"] {
            let secs = report
                .value(&format!("incr_update_seconds_web_{pos}"))
                .expect("update metric");
            assert!(secs > 0.0);
            assert!(
                report
                    .value(&format!("incr_vectors_recomputed_web_{pos}"))
                    .expect("vectors metric")
                    > 0.0
            );
        }
        // The acceptance criterion: localized updates beat a rebuild.
        let leaf = report.value("incr_speedup_web_leaf").expect("leaf speedup");
        assert!(leaf > 1.0, "leaf insert speedup {leaf:.2}x is not > 1x");
        // The gated names carry the Floor gate; root stays Info.
        let gate_of = |n: &str| {
            report
                .metrics
                .iter()
                .find(|m| m.name == n)
                .map(|m| m.gate)
                .expect("metric present")
        };
        assert_eq!(gate_of("incr_speedup_web_leaf"), Gate::Floor);
        assert_eq!(gate_of("incr_speedup_web_mid"), Gate::Floor);
        assert_eq!(gate_of("incr_speedup_web_root"), Gate::Info);
    }
}
