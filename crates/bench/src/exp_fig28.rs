//! Appendix B / Figure 28: HGPA on PLD_full across processor counts.
//!
//! The paper deploys 24 EC2 instances (500–1500 processors) on the
//! 101M-node graph at ε = 1e-2. The stand-in scales both axes down
//! 1:100 — the largest synthetic graph and 5–15 machines — preserving the
//! observations: runtime stays interactive and communication, while the
//! largest of any experiment, does not dominate runtime because there is
//! only one round.

use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::{dataset_graph, Profile};
use ppr_cluster::Cluster;
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::PprConfig;
use ppr_partition::{Hierarchy, HierarchyConfig};
use ppr_workload::{query_nodes, Dataset};

/// One processor-count point.
pub struct PldPoint {
    /// Simulated machine count (paper's processors / 100).
    pub machines: usize,
    /// Mean runtime, seconds.
    pub runtime: f64,
    /// Max per-machine offline seconds.
    pub offline: f64,
    /// Max per-machine space, bytes.
    pub space: u64,
    /// Mean per-query coordinator traffic, bytes.
    pub network: u64,
    /// Modeled network seconds per query (100 Mbps switch).
    pub modeled_wire: f64,
}

/// Sweep machine counts on PLD_full at ε = 1e-2 (the paper's setting).
pub fn sweep(profile: &Profile) -> Vec<PldPoint> {
    let g = dataset_graph(Dataset::PldFull, profile);
    let cfg = PprConfig {
        epsilon: 1e-2,
        ..Default::default()
    };
    let hierarchy = Hierarchy::build(&g, &HierarchyConfig::default());
    let queries = query_nodes(&g, profile.queries.min(6), 47);
    let cluster = Cluster::with_default_network();

    [5usize, 7, 10, 12, 15]
        .into_iter()
        .map(|machines| {
            let (idx, off) = HgpaIndex::build_distributed_with_hierarchy(
                &g,
                &cfg,
                &HgpaBuildOptions {
                    machines,
                    ..Default::default()
                },
                hierarchy.clone(),
            );
            let reports = cluster.query_batch(&idx, &queries);
            let nq = reports.len().max(1);
            PldPoint {
                machines,
                runtime: reports.iter().map(|r| r.runtime_seconds()).sum::<f64>() / nq as f64,
                offline: off.max_machine_seconds(),
                space: idx.storage_bytes_per_machine().into_iter().max().unwrap_or(0),
                network: reports.iter().map(|r| r.total_bytes()).sum::<u64>() / nq as u64,
                modeled_wire: reports
                    .iter()
                    .map(|r| r.modeled_network_seconds)
                    .sum::<f64>()
                    / nq as f64,
            }
        })
        .collect()
}

/// Print Figure 28.
pub fn run(profile: &Profile) {
    let points = sweep(profile);
    let mut t = Table::new(
        "Figure 28 (App. B): HGPA on PLD_full, ε = 1e-2 (processors scaled 1:100)",
        &[
            "machines",
            "runtime (a)",
            "offline (b)",
            "space (c)",
            "comm/query (d)",
            "modeled wire",
        ],
    );
    for p in &points {
        t.row(vec![
            p.machines.to_string(),
            fmt_secs(p.runtime),
            fmt_secs(p.offline),
            fmt_bytes(p.space),
            fmt_bytes(p.network),
            fmt_secs(p.modeled_wire),
        ]);
    }
    t.print();
    println!(
        "paper shape: communication is the largest of any experiment yet runtime stays \
         low — a single round means the wire does not dominate."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_round_keeps_wire_below_compute_scale() {
        let profile = Profile {
            node_cap: Some(1500),
            queries: 2,
            ..Profile::quick()
        };
        let points = sweep(&profile);
        for p in &points {
            // Space shrinks, communication grows, both stay finite and
            // positive; the modeled wire time for ~KB transfers on 100 Mbps
            // is sub-millisecond.
            assert!(p.space > 0);
            assert!(p.network > 0);
            assert!(p.modeled_wire < 0.05, "wire {}", p.modeled_wire);
        }
        assert!(points.last().unwrap().space <= points[0].space);
    }
}
