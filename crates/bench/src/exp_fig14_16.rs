//! Figures 14–16: effect of the number of partitioning levels on HGPA
//! (Email, Web, Youtube): query runtime rises slightly with depth while
//! precomputation space and time fall sharply.

use crate::report::{fmt_secs, Table};
use crate::{dataset_graph, Profile};
use ppr_cluster::Cluster;
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::PprConfig;
use ppr_partition::HierarchyConfig;
use ppr_workload::{query_nodes, Dataset};

/// One depth point.
pub struct DepthPoint {
    /// Depth cap used for the hierarchy.
    pub levels: u32,
    /// Mean query runtime, seconds.
    pub runtime: f64,
    /// Total stored entries (space proxy, machine-count independent).
    pub space_entries: usize,
    /// Max per-machine offline seconds.
    pub offline: f64,
}

/// Sweep hierarchy depth caps for a dataset.
pub fn sweep(d: Dataset, depths: &[u32], profile: &Profile) -> Vec<DepthPoint> {
    let g = dataset_graph(d, profile);
    let cfg = PprConfig::default();
    let queries = query_nodes(&g, profile.queries, 17);
    let cluster = Cluster::with_default_network();

    depths
        .iter()
        .map(|&levels| {
            let (idx, off) = HgpaIndex::build_distributed(
                &g,
                &cfg,
                &HgpaBuildOptions {
                    machines: 6,
                    hierarchy: HierarchyConfig {
                        max_depth: Some(levels),
                        // Depth is the experimental variable: disable the
                        // size-based stop so shallow caps bind.
                        max_leaf_size: 0,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            let reports = cluster.query_batch(&idx, &queries);
            let nq = reports.len().max(1) as f64;
            DepthPoint {
                levels,
                runtime: reports.iter().map(|r| r.runtime_seconds()).sum::<f64>() / nq,
                space_entries: idx.stored_entries(),
                offline: off.max_machine_seconds(),
            }
        })
        .collect()
}

/// Print Figures 14–16.
pub fn run(profile: &Profile) {
    let depth_sets: [(Dataset, &[u32]); 3] = [
        (Dataset::Email, &[1, 2, 3, 4, 5]),
        (Dataset::Web, &[2, 4, 6, 8]),
        (Dataset::Youtube, &[2, 4, 6, 8]),
    ];
    for (d, depths) in depth_sets {
        let points = sweep(d, depths, profile);
        let mut t = Table::new(
            format!("Figures 14–16 [{}]: effect of partitioning levels", d.name()),
            &[
                "levels",
                "runtime (Fig14)",
                "stored entries (Fig15)",
                "offline (Fig16)",
            ],
        );
        for p in &points {
            t.row(vec![
                p.levels.to_string(),
                fmt_secs(p.runtime),
                p.space_entries.to_string(),
                fmt_secs(p.offline),
            ]);
        }
        t.print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_hierarchy_stores_less() {
        // Figure 15's shape: space falls as levels increase.
        let profile = Profile {
            node_cap: Some(1200),
            queries: 3,
            ..Profile::quick()
        };
        let points = sweep(Dataset::Email, &[1, 4], &profile);
        assert!(
            points[1].space_entries < points[0].space_entries,
            "depth 4 {} vs depth 1 {}",
            points[1].space_entries,
            points[0].space_entries
        );
    }
}
