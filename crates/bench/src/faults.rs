//! `repro bench-faults` — the overload/failure resilience baseline.
//!
//! Two open-loop phases over the same bursty mixed read/write stream and
//! the same [`ppr_serve::DynamicPprServer`], differing only in the
//! injected [`ppr_cluster::FaultPlan`]:
//!
//! 1. **clean**: an empty plan. Admission control and the SLO check are
//!    armed, but healthy machines under the default load never trip
//!    them — the phase pins, as exact-gated zeros, that the resilience
//!    machinery is inert when nothing is wrong.
//! 2. **faults**: the standard scripted scenario from
//!    [`ppr_workload::fault_script`] — one straggler, one crash-recover
//!    window, a low transient drop rate — assembled into an executable
//!    plan by [`plan_from_script`]. The phase records shed rate,
//!    degraded-answer rate, and tail latency under the faults.
//!
//! Every count is **exact-gated**: arrivals, the fault plan, and the
//! modeled service clock are all deterministic, so shed/degraded/backfill
//! counts must reproduce bit-for-bit on any host — a drift means the
//! resilience semantics changed, not the hardware. Rates and latency
//! percentiles are informational trend metrics. Results land in
//! `BENCH_faults.json` (schema `ppr-bench-baseline/v1`) next to the other
//! committed baselines, and `repro bench-compare` gates them in CI.
//!
//! Knobs (environment variables, all optional):
//!
//! * `PPR_FAULT_SEED` — seed of the scripted fault scenario (0xFA17)
//! * `PPR_SERVE_QUEUE_CAP` — admission-control queue bound (64)
//! * `PPR_SERVE_SLO_MS` — degrade-to-approximate latency SLO (250.0)
//!
//! plus the `PPR_SERVE_*` load knobs shared with `repro serve`.

use crate::baseline::{BaselineKnobs, BaselineReport, Gate};
use crate::report::Table;
use crate::serve::{mixed_events, ServeKnobs};
use crate::{dataset_graph, default_hgpa_opts, Profile};
use ppr_cluster::FaultPlan;
use ppr_core::hgpa::HgpaIndex;
use ppr_core::PprConfig;
use ppr_graph::CsrGraph;
use ppr_serve::{
    run_open_loop, ArrivalPattern, DynamicPprServer, OpenLoopConfig, OpenLoopReport, ServeConfig,
    ServeEvent, ServiceModel,
};
use ppr_workload::{fault_script, Dataset, FaultScript, MixedStream, MixedStreamConfig};

/// Resilience knobs (env-overridable; see module docs).
#[derive(Clone, Copy, Debug)]
pub struct FaultKnobs {
    /// Seed of the scripted fault scenario (`PPR_FAULT_SEED`).
    pub fault_seed: u64,
    /// Admission-control queue bound (`PPR_SERVE_QUEUE_CAP`).
    pub queue_cap: usize,
    /// Latency SLO in milliseconds (`PPR_SERVE_SLO_MS`).
    pub slo_ms: f64,
}

impl FaultKnobs {
    /// Defaults, overridden by the `PPR_FAULT_SEED` /
    /// `PPR_SERVE_QUEUE_CAP` / `PPR_SERVE_SLO_MS` env vars.
    pub fn from_env() -> Self {
        fn env<T: std::str::FromStr>(k: &str, d: T) -> T {
            std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
        }
        Self {
            fault_seed: env("PPR_FAULT_SEED", 0xFA17),
            queue_cap: env("PPR_SERVE_QUEUE_CAP", 64),
            // Above one exact round's worst cold-cache modeled service at
            // the quick profile: clean bursts queue but never breach.
            slo_ms: env("PPR_SERVE_SLO_MS", 250.0),
        }
    }
}

/// Assemble the executable cluster fault plan from a cluster-agnostic
/// workload script (the bench-side half of the contract documented on
/// [`ppr_workload::FaultScript`]).
pub fn plan_from_script(s: &FaultScript) -> FaultPlan {
    let mut plan = FaultPlan::empty();
    for &(machine, factor) in &s.slow {
        plan = plan.slow(machine, factor);
    }
    for &(machine, from, until) in &s.fail {
        plan = plan.fail(machine, from, until);
    }
    if s.drop_rate > 0.0 {
        plan = plan.with_drops(s.drop_rate, s.drop_seed);
    }
    plan
}

/// The bursty arrival pattern both phases share: 4x-rate spikes for a
/// quarter of each 32-arrival cycle, long-run mean unchanged.
const PATTERN: ArrivalPattern = ArrivalPattern::Bursty {
    period_events: 32,
    on_events: 8,
    peak: 4.0,
};

/// Run one open-loop phase under `plan` and return its report. The
/// service model is fully modeled, so the report is a deterministic
/// function of the knobs and the plan.
fn run_phase(
    g: &CsrGraph,
    index: &HgpaIndex,
    events: &[ServeEvent],
    knobs: &ServeKnobs,
    fk: &FaultKnobs,
    plan: FaultPlan,
) -> OpenLoopReport {
    let mut server = DynamicPprServer::from_index(
        g.clone(),
        index.clone(),
        ServeConfig {
            cache_capacity_bytes: knobs.cache_bytes,
            max_batch: knobs.batch,
            ..Default::default()
        },
    );
    server.set_fault_plan(plan);
    run_open_loop(
        &mut server,
        events,
        &OpenLoopConfig {
            arrival_rate: knobs.arrival_qps,
            seed: 0xBEA7,
            service: ServiceModel::modeled_default(),
            pattern: PATTERN,
            queue_cap: Some(fk.queue_cap),
            slo_ms: Some(fk.slo_ms),
            ..Default::default()
        },
    )
}

/// Record one phase's metrics under `prefix` — deterministic counts
/// exact-gated, rates and percentiles informational.
fn record_phase(report: &mut BaselineReport, prefix: &str, r: &OpenLoopReport, events: usize) {
    assert_eq!(
        r.queries + r.shed + r.update_batches + r.rejected_batches,
        events,
        "{prefix}: an open-loop event vanished without resolving"
    );
    let counts: [(&str, f64); 6] = [
        ("queries", r.queries as f64),
        ("shed", r.shed as f64),
        ("degraded_answers", r.degraded_answers as f64),
        ("backfilled_sources", r.backfilled_sources as f64),
        ("max_queue_depth", r.max_queue_depth as f64),
        ("update_batches", r.update_batches as f64),
    ];
    for (name, value) in counts {
        report.push(format!("{prefix}_{name}"), value, "entries", Gate::Exact);
    }
    let served = (r.queries + r.shed).max(1) as f64;
    report.push(format!("{prefix}_shed_rate"), r.shed as f64 / served, "", Gate::Info);
    report.push(
        format!("{prefix}_degraded_rate"),
        r.degraded_answers as f64 / r.queries.max(1) as f64,
        "",
        Gate::Info,
    );
    report.push(format!("{prefix}_p99_sojourn_ms"), r.p99_sojourn_ms, "ms", Gate::Info);
    report.push(format!("{prefix}_p99_exact_ms"), r.p99_exact_ms, "ms", Gate::Info);
    report.push(format!("{prefix}_p99_approx_ms"), r.p99_approx_ms, "ms", Gate::Info);
    report.push(format!("{prefix}_achieved_qps"), r.achieved_qps, "qps", Gate::Info);
}

/// Run both phases at the profile's scale and return the baseline
/// report plus the per-phase open-loop reports (for the printed table).
pub fn run_phases(profile: &Profile) -> (BaselineReport, OpenLoopReport, OpenLoopReport) {
    let mut knobs = ServeKnobs::from_env(profile);
    if std::env::var("PPR_SERVE_ARRIVAL_QPS").is_err() {
        // The resilience phases run nearer saturation than `repro serve`
        // does: at 150 ev/s the bursts queue deeply but the clean phase
        // stays exact-only, so every degraded answer in the faults phase
        // is attributable to the injected faults.
        knobs.arrival_qps = 150.0;
    }
    let fk = FaultKnobs::from_env();
    let g = dataset_graph(Dataset::Web, profile);
    let cfg = PprConfig::default();
    let machines = 6; // paper default (§6.1), matching `repro serve`
    let index = HgpaIndex::build(&g, &cfg, &default_hgpa_opts(machines));

    let mut stream = MixedStream::new(
        &g,
        MixedStreamConfig {
            update_rate: knobs.update_rate,
            zipf_exponent: knobs.zipf,
            ..Default::default()
        },
        0xD1CE,
    );
    let events = mixed_events(&mut stream, knobs.queries);

    let mut report = BaselineReport::new("faults", &[1]);
    let clean = run_phase(&g, &index, &events, &knobs, &fk, FaultPlan::empty());
    record_phase(&mut report, "clean", &clean, events.len());

    let script = fault_script(machines, fk.fault_seed);
    let faults = run_phase(&g, &index, &events, &knobs, &fk, plan_from_script(&script));
    record_phase(&mut report, "faults", &faults, events.len());
    (report, clean, faults)
}

/// The `repro bench-faults` entry point: run both phases, print the
/// comparison table, and write `BENCH_faults.json` to
/// [`BaselineKnobs::out_dir`].
pub fn run_and_write(profile: &Profile) {
    let knobs = BaselineKnobs::from_env();
    let fk = FaultKnobs::from_env();
    let (report, clean, faults) = run_phases(profile);

    let mut t = Table::new(
        format!(
            "Resilience (bursty open loop): fault seed {:#x}, queue cap {}, SLO {} ms",
            fk.fault_seed, fk.queue_cap, fk.slo_ms
        ),
        &[
            "phase",
            "queries",
            "shed",
            "degraded",
            "backfilled",
            "max queue",
            "p99 sojourn",
            "p99 exact",
            "p99 approx",
        ],
    );
    for (name, r) in [("clean", &clean), ("faults", &faults)] {
        t.row(vec![
            name.to_string(),
            r.queries.to_string(),
            r.shed.to_string(),
            r.degraded_answers.to_string(),
            r.backfilled_sources.to_string(),
            r.max_queue_depth.to_string(),
            format!("{:.2} ms", r.p99_sojourn_ms),
            format!("{:.2} ms", r.p99_exact_ms),
            format!("{:.2} ms", r.p99_approx_ms),
        ]);
    }
    t.print();
    println!(
        "faults vs clean: shed {} -> {}, degraded {} -> {}, p99 {:.2} ms -> {:.2} ms",
        clean.shed, faults.shed, clean.degraded_answers, faults.degraded_answers,
        clean.p99_sojourn_ms, faults.p99_sojourn_ms,
    );

    match report.write_to(&knobs.out_dir) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("cannot write {}: {e}", report.file_name());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_from_script_maps_every_fault() {
        let s = fault_script(6, 7);
        let plan = plan_from_script(&s);
        let (slow_m, factor) = s.slow[0];
        assert_eq!(plan.slow_factor(slow_m), factor);
        let (fail_m, from, _until) = s.fail[0];
        assert!(plan.is_down(fail_m, from));
        assert!(!plan.is_empty());
        assert!(plan_from_script(&FaultScript {
            slow: vec![],
            fail: vec![],
            drop_rate: 0.0,
            drop_seed: 0,
        })
        .is_empty());
    }

    #[test]
    fn phases_emit_exact_counts_and_replay_identically() {
        let profile = Profile {
            node_cap: Some(700),
            queries: 3,
            ..Profile::quick()
        };
        let (report, clean, faults) = run_phases(&profile);
        for prefix in ["clean", "faults"] {
            for name in ["queries", "shed", "degraded_answers", "max_queue_depth"] {
                assert!(
                    report.value(&format!("{prefix}_{name}")).is_some(),
                    "missing {prefix}_{name}"
                );
            }
        }
        assert!(report.value("clean_queries").unwrap() > 0.0);
        // The scripted faults can only add pressure, never remove it.
        assert!(faults.degraded_answers + faults.shed >= clean.degraded_answers + clean.shed);
        // Deterministic end to end: a second run gates clean at zero
        // tolerance against the first.
        let (again, _, _) = run_phases(&profile);
        assert!(
            crate::baseline::compare(&report, &again, 0.0).is_empty(),
            "bench-faults must replay bit-identically"
        );
        let parsed = BaselineReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.kind, "faults");
    }
}
