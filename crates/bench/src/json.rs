//! Minimal JSON tree: emit + parse, no external crates.
//!
//! The vendored `serde` is a no-op stub (see `vendor/serde`), so the
//! benchmark baseline files (`BENCH_offline.json` / `BENCH_serve.json`)
//! are written and re-read through this self-contained value type
//! instead. Scope is exactly what the baseline schema needs: objects,
//! arrays, strings, IEEE numbers, booleans, null; numbers render via
//! Rust's shortest-roundtrip `Display`, so `parse(render(x)) == x` for
//! every finite value.

use std::collections::BTreeMap;

/// A JSON value. Objects keep insertion order out of scope — they are
/// sorted maps, which also makes rendered baselines diff-stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite IEEE double (JSON has one number type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted by key).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member by key (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                assert!(x.is_finite(), "JSON numbers must be finite, got {x}");
                out.push_str(&format!("{x}"));
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, depth + 1);
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, depth + 1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_into(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must contain exactly one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Convenience: an object from `(key, value)` pairs.
pub fn obj<const N: usize>(members: [(&str, Json); N]) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            what as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                members.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or '}}' at byte {} (found {:?})",
                            *pos,
                            other.map(|&b| b as char)
                        ))
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or ']' at byte {} (found {:?})",
                            *pos,
                            other.map(|&b| b as char)
                        ))
                    }
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (continuation bytes included).
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string")?;
                let c = s.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = obj([
            ("schema", Json::Str("demo/v1".into())),
            ("threads", Json::Arr(vec![Json::Num(1.0), Json::Num(8.0)])),
            (
                "metrics",
                Json::Arr(vec![obj([
                    ("name", Json::Str("wall \"quoted\"\n".into())),
                    ("value", Json::Num(0.037251)),
                    ("ok", Json::Bool(true)),
                    ("none", Json::Null),
                ])]),
            ),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for x in [0.0, -1.5, 1e-12, 123456.789, f64::MIN_POSITIVE, 2.0_f64.powi(60)] {
            let text = Json::Num(x).render();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(x), "{text}");
        }
    }

    #[test]
    fn accessors_navigate() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}], "c": 2e3}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(2000.0));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    /// The BENCH_*.json / AUDIT_baseline.json gating diffs rendered
    /// text, so render must be a fixed point: emit → parse → emit is
    /// byte-identical.
    #[test]
    fn render_parse_render_is_byte_stable() {
        let docs = [
            obj([
                ("zeta", Json::Num(-0.0)),
                ("alpha", Json::Num(0.15)),
                ("nested", obj([("deep", Json::Arr(vec![Json::Null, Json::Bool(false)]))])),
                ("text", Json::Str("line\nbreak \"q\" \\slash \u{1f600}".into())),
                ("empty_arr", Json::Arr(vec![])),
                ("empty_obj", obj([])),
            ]),
            Json::Arr(vec![Json::Num(1e-12), Json::Num(2.0_f64.powi(60)), Json::Num(123456.789)]),
            Json::Str(String::new()),
            Json::Num(f64::MIN_POSITIVE),
        ];
        for doc in docs {
            let first = doc.render();
            let reparsed = Json::parse(&first).expect("own output parses");
            let second = reparsed.render();
            assert_eq!(first, second, "render is not a fixed point for {doc:?}");
        }
    }

    /// Key order in the input must not affect the rendered form
    /// (objects are sorted maps) — the property that keeps committed
    /// baselines diff-stable no matter who writes them.
    #[test]
    fn object_key_order_is_canonical() {
        let a = Json::parse(r#"{"b": 1, "a": 2}"#).unwrap();
        let b = Json::parse(r#"{"a": 2, "b": 1}"#).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn rejects_structural_malformations() {
        // Unbalanced / mistyped structure.
        assert!(Json::parse("").is_err());
        assert!(Json::parse("   ").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("{\"a\": 1,}").is_err());
        assert!(Json::parse("{a: 1}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("}").is_err());
        // Bad literals and numbers.
        assert!(Json::parse("truthy").is_err());
        assert!(Json::parse("1.2.3").is_err());
        assert!(Json::parse("--5").is_err());
        // Bad escapes.
        assert!(Json::parse(r#""\x""#).is_err());
        assert!(Json::parse(r#""\u12""#).is_err());
        assert!(Json::parse(r#""\ud800""#).is_err()); // lone surrogate
    }

    #[test]
    fn malformed_inputs_never_parse_to_a_value_that_renders_differently() {
        // Inputs that DO parse must round-trip; nearby corruptions must
        // be rejected rather than silently coerced.
        let good = r#"{"k": [1, true, "s"]}"#;
        let v = Json::parse(good).expect("well-formed");
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        for bad in [
            r#"{"k": [1, true, "s"]}extra"#,
            r#"{"k": [1, true, "s"}"#,
            r#"{"k": [1, true, s]}"#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }
}
