//! harness=false bench target: prints the paper-style rows for this
//! figure group at the quick profile (set PPR_BENCH_FULL=1 for full).
fn main() {
    let profile = ppr_bench::Profile::from_env();
    println!("[bench:fig14_16_levels] profile = {}", profile.name);
    ppr_bench::exp_fig14_16::run(&profile);
}
