//! Criterion micro-benchmarks for the PPV kernels and index queries,
//! including the ablations DESIGN.md §7 calls out (Jacobi vs push
//! skeleton columns; König vs greedy hub covers are covered by
//! `tables_hubs`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ppr_core::gpa::{GpaBuildOptions, GpaIndex};
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::power::power_iteration;
use ppr_core::push::local_ppv_push;
use ppr_core::skeleton::{skeleton_column_jacobi, skeleton_column_push};
use ppr_core::PprConfig;
use ppr_graph::CsrGraph;
use ppr_partition::kway::partition_graph_kway;
use ppr_partition::PartitionConfig;
use ppr_workload::Dataset;
use std::hint::black_box;

fn bench_graph() -> CsrGraph {
    Dataset::Web.generate_with_nodes(3_000)
}

fn kernels(c: &mut Criterion) {
    let g = bench_graph();
    let cfg = PprConfig::default();

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    group.bench_function("power_iteration", |b| {
        b.iter(|| black_box(power_iteration(&g, 17, &cfg)))
    });
    group.bench_function("forward_push_local_ppv", |b| {
        b.iter(|| black_box(local_ppv_push(&g, 17, &cfg)))
    });
    group.bench_function("skeleton_column_push", |b| {
        b.iter(|| black_box(skeleton_column_push(&g, 17, &cfg)))
    });
    group.bench_function("skeleton_column_jacobi_ablation", |b| {
        b.iter(|| black_box(skeleton_column_jacobi(&g, 17, &cfg)))
    });
    group.bench_function("multilevel_partition_4way", |b| {
        b.iter(|| black_box(partition_graph_kway(&g, 4, &PartitionConfig::default())))
    });
    group.finish();
}

fn queries(c: &mut Criterion) {
    let g = bench_graph();
    let cfg = PprConfig::default();
    let gpa = GpaIndex::build(&g, &cfg, &GpaBuildOptions::default());
    let hgpa = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());
    let hgpa_ad = HgpaIndex::build(
        &g,
        &cfg,
        &HgpaBuildOptions {
            drop_threshold: Some(1e-4),
            ..Default::default()
        },
    );

    let mut group = c.benchmark_group("query");
    group.sample_size(20);
    group.bench_function("gpa", |b| b.iter(|| black_box(gpa.query(17))));
    group.bench_function("hgpa", |b| b.iter(|| black_box(hgpa.query(17))));
    group.bench_function("hgpa_session_reuse", |b| {
        let mut session = hgpa.session();
        b.iter(|| black_box(session.query(17)))
    });
    group.bench_function("hgpa_point_query", |b| {
        b.iter(|| black_box(hgpa.query_value(17, 42)))
    });
    group.bench_function("hgpa_ad", |b| b.iter(|| black_box(hgpa_ad.query(17))));
    group.bench_function("power_iteration_baseline", |b| {
        b.iter(|| black_box(power_iteration(&g, 17, &cfg)))
    });
    group.finish();

    let mut build = c.benchmark_group("build");
    build.sample_size(10);
    let small = Dataset::Email.generate_with_nodes(1_000);
    build.bench_function("hgpa_index_1k", |b| {
        b.iter_batched(
            || (),
            |_| black_box(HgpaIndex::build(&small, &cfg, &HgpaBuildOptions::default())),
            BatchSize::PerIteration,
        )
    });
    build.finish();
}

criterion_group!(benches, kernels, queries);
criterion_main!(benches);
