//! Criterion micro-benchmarks for the serving hot path: cache hits vs
//! cold fan-out rounds, batched vs per-query rounds, the top-k early-cut
//! selection vs the full sort, and thread-scaling of the sharded server
//! (1/2/4/8 workers; wall-clock, so the scaling shows the host's cores).

use criterion::{criterion_group, criterion_main, Criterion};
use ppr_cluster::{Cluster, ClusterConfig, ParallelismMode};
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::PprConfig;
use ppr_serve::{PprServer, Request, ServeConfig, ShardedPprServer};
use ppr_workload::{Dataset, ZipfQueryStream};
use std::hint::black_box;

fn serving(c: &mut Criterion) {
    let g = Dataset::Web.generate_with_nodes(3_000);
    let cfg = PprConfig::default();
    let hgpa = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());
    let cluster = Cluster::with_default_network();

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);

    // Warm server: every source resident, requests are pure cache hits.
    let mut stream = ZipfQueryStream::new(&g, 1.1, 7);
    let hot: Vec<u32> = stream.take(64);
    let mut warm = PprServer::new(&hgpa, ServeConfig::default());
    for &u in &hot {
        warm.query(u);
    }
    let mut i = 0usize;
    group.bench_function("cache_hit_query", |b| {
        b.iter(|| {
            i = (i + 1) % hot.len();
            black_box(warm.query(hot[i]))
        })
    });
    group.bench_function("cache_hit_top_20", |b| {
        b.iter(|| {
            i = (i + 1) % hot.len();
            black_box(warm.top_k(hot[i], 20))
        })
    });

    // Cold path: one uncached fan-out per call (cache disabled).
    let mut cold = PprServer::new(
        &hgpa,
        ServeConfig {
            cache_capacity_bytes: 0,
            ..Default::default()
        },
    );
    group.bench_function("cold_query_fanout", |b| {
        b.iter(|| {
            i = (i + 1) % hot.len();
            black_box(cold.query(hot[i]))
        })
    });

    // Batched round vs the same 16 sources as individual rounds.
    let sources: Vec<u32> = ZipfQueryStream::new(&g, 0.0, 11).take(16);
    group.bench_function("batched_round_16_sources", |b| {
        b.iter(|| black_box(cluster.query_many(&hgpa, &sources)))
    });
    group.bench_function("per_query_rounds_16_sources", |b| {
        b.iter(|| black_box(cluster.query_batch(&hgpa, &sources)))
    });

    // One uncached batch through the server (the `repro serve` hot loop).
    let requests: Vec<Request> = sources.iter().map(|&u| Request::Ppv(u)).collect();
    group.bench_function("server_batch_16_no_cache", |b| {
        b.iter(|| {
            let mut s = PprServer::new(
                &hgpa,
                ServeConfig {
                    cache_capacity_bytes: 0,
                    ..Default::default()
                },
            );
            black_box(s.run_batch(&requests))
        })
    });

    // Selection: early-cut vs full sort on a big PPV.
    let ppv = hgpa.query(sources[0]);
    group.bench_function("top_20_early_cut", |b| {
        b.iter(|| black_box(ppv.top_k_early_cut(20)))
    });
    group.bench_function("top_20_full_sort", |b| b.iter(|| black_box(ppv.top_k(20))));
    group.finish();
}

/// Thread-scaling: one uncached 64-request batch through the sharded
/// server at 1/2/4/8 workers (reader shards + fan-out threads), and the
/// raw threaded fan-out round next to the sequential one. Per-iteration
/// time shrinking with workers is real parallel speedup; on a single
/// core the lines collapse (plus thread overhead) by design.
fn scaling(c: &mut Criterion) {
    let g = Dataset::Web.generate_with_nodes(3_000);
    let cfg = PprConfig::default();
    let hgpa = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());

    let sources: Vec<u32> = ZipfQueryStream::new(&g, 0.0, 23).take(64);
    let requests: Vec<Request> = sources.iter().map(|&u| Request::Ppv(u)).collect();

    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(&format!("server_batch_64_workers_{workers}"), |b| {
            b.iter(|| {
                let mut s = ShardedPprServer::new(
                    &hgpa,
                    ServeConfig {
                        cache_capacity_bytes: 0,
                        shards: workers,
                        parallelism: ParallelismMode::with_workers(workers),
                        ..Default::default()
                    },
                );
                black_box(s.run_batch(&requests))
            })
        });
        group.bench_function(&format!("fanout_round_64_workers_{workers}"), |b| {
            let cluster = Cluster::new(ClusterConfig {
                parallelism: ParallelismMode::with_workers(workers),
                ..ClusterConfig::default()
            });
            b.iter(|| black_box(cluster.query_many(&hgpa, &sources)))
        });
    }
    group.finish();
}

criterion_group!(benches, serving, scaling);
criterion_main!(benches);
