//! harness=false bench target: prints the paper-style rows for this
//! figure group at the quick profile (set PPR_BENCH_FULL=1 for full).
fn main() {
    let profile = ppr_bench::Profile::from_env();
    println!("[bench:fig18_19_tolerance] profile = {}", profile.name);
    ppr_bench::exp_fig18_19::run(&profile);
}
