//! Serving on a graph that changes underneath the server.
//!
//! [`PprServer`](crate::PprServer) assumes a frozen index: an edge change
//! forces the caller to rebuild out of band and blast the whole PPV cache.
//! [`DynamicPprServer`] instead *owns* a mutable [`HgpaIndex`] plus the
//! current [`CsrGraph`] and accepts interleaved query batches and
//! [`GraphDelta`] batches (edge updates plus node churn):
//!
//! * updates flow through `ppr-core`'s exact incremental maintenance — a
//!   persistent [`MaintenanceEngine`] whose push/skeleton buffers and SCC
//!   condensation survive across batches — with per-vector staleness
//!   scoped by reachability, never a rebuild. Batches may churn the node
//!   set: an added node joins a leaf and serves immediately, a removed
//!   node is excised (tombstoned) and thereafter answers empty;
//! * invalid batches are **rejected, not panicked on**: a structurally
//!   broken delta ([`ppr_graph::DeltaError`]) or a reference to a
//!   tombstoned node ([`UpdateError::DeadNode`](ppr_core::incremental::UpdateError))
//!   returns `Err` and leaves graph, index, cache, and epoch exactly as
//!   they were;
//! * cache invalidation is **fine-grained**: the updater reports the
//!   touched node set ([`UpdateStats::dirty_nodes`]) and the server evicts
//!   only cached sources that can *reach* a touched node
//!   ([`ppr_graph::reach::reverse_reachable`]) — the conservative
//!   staleness predicate. Sources provably unaffected keep their entries,
//!   so hit rates survive updates instead of resetting to zero.
//!
//! Queries run through the exact same batch engine as the static server
//! (one fan-out round per batch, LRU PPV cache, exact top-k), so every
//! exactness invariant pinned in `tests/serving.rs` carries over;
//! `tests/dynamic_serving.rs` adds the differential update/query suite
//! (served answers bit-identical to a from-scratch recomputation on the
//! current graph).
//!
//! ## Epochs: updates as barriers between sharded readers
//!
//! The cache is sharded (`ServeConfig::shards`, hash-by-source) and read
//! batches assemble on one worker per shard, like
//! [`ShardedPprServer`](crate::ShardedPprServer). Writes follow an
//! **epoch discipline** echoing incremental view maintenance: all serving
//! inside one epoch sees a single `(graph, index)` version. An update
//! batch (1) *quiesces* readers — `apply_delta` takes `&mut self`, so
//! the borrow checker itself guarantees every scoped reader worker has
//! drained before the writer runs, exactly the hand-off a
//! write-preferring lock would enforce across real threads; (2) applies
//! the batch at the graph level — node churn first, then the **coalesced
//! net** edge change ([`ppr_graph::apply_delta`]) — and runs incremental
//! maintenance *once*; (3) runs fine-grained invalidation per shard, in
//! parallel — shards share nothing; and (4) releases the next
//! [`DynamicPprServer::epoch`]. No query batch ever spans an epoch
//! boundary, which is what makes the differential suites' bit-for-bit
//! comparisons well-defined under real concurrency.

use crate::cache::CacheStats;
use crate::degrade::{Answer, Degrader, DEGRADED_WALKS};
use crate::server::{
    assemble, execute_batch, BatchOutcome, Request, Response, ServeConfig, ServeStats,
};
use crate::shard::ShardSet;
use crate::replica::{plan_delta, DeltaPlan};
use ppr_cluster::{
    Cluster, ClusterConfig, FanoutOutcome, FaultPlan, ResilienceConfig, SocketCluster,
};
use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
use ppr_core::incremental::{MaintenanceEngine, UpdateError, UpdateStats};
use ppr_core::{PprConfig, SparseVector};
use ppr_graph::reach::reverse_reachable;
use ppr_graph::{CsrGraph, EdgeUpdate, GraphDelta, NodeId};
use ppr_core::parallel::Stopwatch;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// What one [`DynamicPprServer::apply_delta`] call did.
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// Net updates applied to the edge set (after coalescing). Node churn
    /// is reported separately, via [`UpdateStats::nodes_added`] /
    /// [`UpdateStats::nodes_removed`] on `stats`.
    pub applied: usize,
    /// Updates skipped as no-ops (inserting an existing edge, removing a
    /// missing one, self-loops).
    pub skipped: usize,
    /// Effective-in-sequence updates eliminated by net-effect coalescing
    /// before they could reach the incremental updater
    /// (insert-then-delete pairs and the like).
    pub coalesced: usize,
    /// The incremental updater's report (dirty sets, promotions, work).
    pub stats: UpdateStats,
    /// Cached sources evicted because they can reach a touched node.
    pub evicted: usize,
    /// Cached sources that provably cannot reach any touched node and
    /// therefore survived the update.
    pub retained: usize,
    /// The epoch serving resumes in after this batch (unchanged when the
    /// batch had no net effect).
    pub epoch: u64,
    /// Real wall-clock seconds spent applying the batch (graph rebuild +
    /// index maintenance + invalidation).
    pub seconds: f64,
}

/// Cumulative update-side counters of a [`DynamicPprServer`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DynamicStats {
    /// Update batches applied.
    pub update_batches: u64,
    /// Net edge changes applied.
    pub edges_changed: u64,
    /// Updates eliminated by net-effect coalescing across all batches.
    pub updates_coalesced: u64,
    /// Nodes added by churn batches.
    pub nodes_added: u64,
    /// Nodes tombstoned by churn batches.
    pub nodes_removed: u64,
    /// Subgraph recomputations performed by the incremental updater.
    pub subgraphs_recomputed: u64,
    /// Vectors (bases + skeleton columns) recomputed.
    pub vectors_recomputed: u64,
    /// Nodes promoted to hub status to restore separation.
    pub hubs_promoted: u64,
    /// Cache entries evicted by fine-grained invalidation.
    pub entries_evicted: u64,
    /// Cache entries retained across updates (provably unaffected).
    pub entries_retained: u64,
    /// Real seconds spent inside [`DynamicPprServer::apply_updates`].
    pub update_seconds: f64,
    /// Epoch barriers broadcast to an attached socket transport.
    pub epochs_published: u64,
    /// Times the socket transport was detached because an epoch snapshot
    /// could not be persisted (serving continued on the modeled path).
    pub socket_detaches: u64,
}

/// Most sources a degraded round may park for exact backfill. The backlog
/// is the one place the resilience path accumulates state across batches,
/// so it is capped: overflow is *counted*
/// ([`ResilienceStats::backlog_overflow`]), never silently grown — an
/// extended outage must not turn the coordinator into the failure.
pub const BACKLOG_CAP: usize = 1024;

/// Default seed for the degraded-answer Monte Carlo estimator.
const DEFAULT_DEGRADE_SEED: u64 = 0xDE64_4ADE;

/// Cumulative resilience counters of a [`DynamicPprServer`]. Kept apart
/// from [`ServeStats`], which continues to describe only the exact
/// serving path.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResilienceStats {
    /// Batches routed through [`DynamicPprServer::run_batch_resilient`].
    pub resilient_batches: u64,
    /// Fan-out rounds that came back with machines missing (including
    /// failed backfill attempts).
    pub incomplete_rounds: u64,
    /// Requests answered exactly by the resilient path (complete rounds
    /// plus cache-resident requests during an outage).
    pub exact_answers: u64,
    /// Requests answered approximately, each with its explicit bound.
    pub degraded_answers: u64,
    /// Sources recovered to the exact cache by
    /// [`DynamicPprServer::backfill`].
    pub backfilled_sources: u64,
    /// Sources an incomplete round could not park because the backlog was
    /// at [`BACKLOG_CAP`] (they degrade again on their next request).
    pub backlog_overflow: u64,
}

/// What one [`DynamicPprServer::run_batch_resilient`] call did.
#[derive(Clone, Debug)]
pub struct ResilientBatchOutcome {
    /// Answers, parallel to the submitted requests. Every request resolves
    /// to exactly one [`Answer`] — the no-silent-drop invariant.
    pub answers: Vec<Answer>,
    /// Distinct sources served from cache.
    pub cached_sources: usize,
    /// Distinct sources computed fresh (exactly) this batch.
    pub fresh_sources: usize,
    /// Distinct sources answered approximately because the round came back
    /// incomplete (0 on the exact path).
    pub degraded_sources: usize,
    /// Did every machine of the batch's fan-out round answer? (`true` when
    /// no fan-out was needed.)
    pub round_complete: bool,
    /// The fan-out round's per-machine outcome, when one ran.
    pub outcome: Option<FanoutOutcome>,
    /// Modeled wire time of the round (delivered replies only).
    pub modeled_network_seconds: f64,
    /// Modeled seconds the round lost to timeouts, retries, and backoff.
    pub modeled_fault_seconds: f64,
    /// Real wall-clock seconds spent serving the batch.
    pub seconds: f64,
}

/// What one [`DynamicPprServer::backfill`] call did.
#[derive(Clone, Copy, Debug)]
pub struct BackfillOutcome {
    /// Sources the backfill round asked the cluster for.
    pub attempted: usize,
    /// Sources recovered into the exact PPV cache this call.
    pub recovered: usize,
    /// Sources still parked in the backlog afterwards.
    pub remaining: usize,
    /// Whether the backfill fan-out round was complete (`true` when the
    /// backlog was already empty and no round ran). An incomplete round
    /// recovers nothing — partial sums are never admitted.
    pub round_complete: bool,
    /// Modeled wire time of the round (delivered replies only).
    pub modeled_network_seconds: f64,
    /// Modeled seconds the round lost to timeouts, retries, and backoff.
    pub modeled_fault_seconds: f64,
    /// Real wall-clock seconds spent in the call.
    pub seconds: f64,
}

/// An owning serving front-end over one mutable HGPA index: interleaves
/// exact query serving with exact incremental index maintenance.
///
/// ```
/// use ppr_core::hgpa::HgpaBuildOptions;
/// use ppr_core::PprConfig;
/// use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
/// use ppr_graph::{EdgeUpdate, GraphDelta, NodeUpdate};
/// use ppr_serve::{DynamicPprServer, ServeConfig};
///
/// let graph = hierarchical_sbm(&HsbmConfig { nodes: 150, ..Default::default() }, 3);
/// let cfg = PprConfig { epsilon: 1e-7, ..Default::default() };
/// let mut server = DynamicPprServer::build(
///     graph,
///     &cfg,
///     &HgpaBuildOptions::default(),
///     ServeConfig::default(),
/// );
/// let before = server.query(5);
/// let outcome = server.apply_updates(&[EdgeUpdate::Insert(5, 120)]).expect("live endpoints");
/// assert_eq!(outcome.applied, 1);
/// let after = server.query(5); // exact on the *new* graph
/// assert!(server.graph().has_edge(5, 120));
/// // Node churn flows through the same epoch barrier: add node 150 and
/// // wire it in one batch — it serves exactly, immediately.
/// let churn = GraphDelta {
///     nodes: vec![NodeUpdate::Add],
///     edges: vec![EdgeUpdate::Insert(150, 5)],
/// };
/// let outcome = server.apply_delta(&churn).expect("valid churn batch");
/// assert_eq!(outcome.stats.nodes_added, 1);
/// assert!(server.query(150).get(5) > 0.0);
/// # let _ = (before, after);
/// ```
pub struct DynamicPprServer {
    graph: CsrGraph,
    index: HgpaIndex,
    engine: MaintenanceEngine,
    cluster: Cluster,
    cache: ShardSet,
    config: ServeConfig,
    stats: ServeStats,
    dynamic_stats: DynamicStats,
    resilience_stats: ResilienceStats,
    backlog: BTreeSet<NodeId>,
    degrade_seed: u64,
    degrade_walks: u64,
    epoch: u64,
}

impl DynamicPprServer {
    /// Build the index on `graph` and serve from it.
    pub fn build(
        graph: CsrGraph,
        cfg: &PprConfig,
        opts: &HgpaBuildOptions,
        config: ServeConfig,
    ) -> Self {
        let index = HgpaIndex::build(&graph, cfg, opts);
        Self::from_index(graph, index, config)
    }

    /// Serve from an already-built index. `graph` must be the graph the
    /// index is current for.
    ///
    /// # Panics
    /// Panics if the node counts disagree.
    pub fn from_index(graph: CsrGraph, index: HgpaIndex, config: ServeConfig) -> Self {
        assert_eq!(
            graph.node_count(),
            index.node_count(),
            "index and graph disagree on the node set"
        );
        let cluster = Cluster::new(ClusterConfig {
            machines: index.machines(),
            network: config.network,
            parallelism: config.parallelism,
        });
        Self {
            graph,
            index,
            engine: MaintenanceEngine::new(),
            cluster,
            cache: ShardSet::new(config.shards.max(1), config.cache_capacity_bytes),
            config,
            stats: ServeStats::default(),
            dynamic_stats: DynamicStats::default(),
            resilience_stats: ResilienceStats::default(),
            backlog: BTreeSet::new(),
            degrade_seed: DEFAULT_DEGRADE_SEED,
            degrade_walks: DEGRADED_WALKS,
            epoch: 0,
        }
    }

    /// Apply a batch of edge updates as one **epoch barrier** — the
    /// edge-only convenience wrapper over
    /// [`DynamicPprServer::apply_delta`].
    ///
    /// # Errors
    /// Rejected exactly as [`DynamicPprServer::apply_delta`] rejects; an
    /// `Err` leaves the server untouched.
    pub fn apply_updates(&mut self, updates: &[EdgeUpdate]) -> Result<UpdateOutcome, UpdateError> {
        self.apply_delta(&GraphDelta::from_edges(updates.to_vec()))
    }

    /// Apply one [`GraphDelta`] — node churn plus edge updates — as one
    /// **epoch barrier**: apply the batch at the graph level (churn
    /// first, then the coalesced net edge change), bring the index up to
    /// date incrementally (once, through the persistent maintenance
    /// engine), evict — per shard, in parallel — exactly the cached
    /// sources whose PPVs the batch can affect (those reaching a touched
    /// node), and release the next epoch.
    ///
    /// Readers are quiesced structurally: this method takes `&mut self`,
    /// so every scoped assembly worker of the previous query batch has
    /// provably terminated before maintenance starts — the single-writer
    /// hand-off an epoch-based RwLock would enforce in a multi-threaded
    /// deployment.
    ///
    /// # Errors
    /// A structurally invalid batch ([`UpdateError::Delta`]) or one
    /// referencing a node that is not live in the index
    /// ([`UpdateError::DeadNode`]) is rejected before any state moves:
    /// graph, index, cache, epoch, and counters stay exactly as they
    /// were, and serving continues on the current version.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<UpdateOutcome, UpdateError> {
        let t0 = Stopwatch::start();

        // Net changes only: the incremental updater derives dirty sets
        // from the changed-edge list, so feeding it no-ops — or pairs
        // that cancel within the batch — would invalidate (and
        // recompute) for nothing. `replica::plan_delta` is the single
        // decision point every replica (this server and the socket
        // workers) shares, so the coalesce-vs-rebuild call can never
        // diverge across the cluster.
        let applied = match plan_delta(&self.graph, delta).map_err(UpdateError::from)? {
            DeltaPlan::Noop { skipped, cancelled } => {
                // Edge-only fast path: a batch with no net effect skips
                // the CSR rebuild entirely (and the epoch barrier with
                // it — nothing is broadcast to socket workers either).
                self.dynamic_stats.updates_coalesced += cancelled as u64;
                return Ok(UpdateOutcome {
                    applied: 0,
                    skipped,
                    coalesced: cancelled,
                    stats: UpdateStats::default(),
                    evicted: 0,
                    retained: 0,
                    epoch: self.epoch,
                    seconds: t0.elapsed_seconds(),
                });
            }
            DeltaPlan::Apply(applied) => applied,
        };

        // Exact incremental maintenance, once per barrier. The engine
        // validates the whole batch before mutating anything, so an `Err`
        // here leaves the server on its current (consistent) version.
        let stats = self.engine.apply(&mut self.index, &applied)?;

        // Fine-grained invalidation, shard by shard: a cached PPV of
        // source `s` can only be stale if `s` reaches a touched node (see
        // UpdateStats::dirty_nodes for why this is conservative, bit for
        // bit). Shards share nothing, so they sweep concurrently.
        let mut evicted = 0usize;
        let mut retained = 0usize;
        if !self.cache.is_empty() {
            let stale = reverse_reachable(&applied.graph, &stats.dirty_nodes);
            (evicted, retained) = self.cache.invalidate_stale(&stale, self.config.parallelism);
        }
        let changed = applied.net.len();
        self.graph = applied.graph;
        self.epoch += 1; // release the next epoch to readers

        // Socket transport: push the barrier to the worker processes.
        // Snapshot-first ordering inside `publish_epoch` makes worker
        // crashes at any point recoverable; only a failed snapshot
        // *write* is fatal to the transport, in which case queries fall
        // back to the modeled path (still exact) rather than risk
        // serving from workers stuck on the previous epoch.
        if let Some(sock) = self.cluster.socket().cloned() {
            if sock
                .publish_epoch(&self.index, &self.graph, delta, self.epoch)
                .is_err()
            {
                self.cluster.detach_socket();
                self.dynamic_stats.socket_detaches += 1;
            } else {
                self.dynamic_stats.epochs_published += 1;
            }
        }

        let seconds = t0.elapsed_seconds();
        self.dynamic_stats.update_batches += 1;
        self.dynamic_stats.edges_changed += changed as u64;
        self.dynamic_stats.updates_coalesced += applied.cancelled as u64;
        self.dynamic_stats.nodes_added += stats.nodes_added as u64;
        self.dynamic_stats.nodes_removed += stats.nodes_removed as u64;
        self.dynamic_stats.subgraphs_recomputed += stats.subgraphs_recomputed as u64;
        self.dynamic_stats.vectors_recomputed += stats.vectors_recomputed as u64;
        self.dynamic_stats.hubs_promoted += stats.promoted_hubs.len() as u64;
        self.dynamic_stats.entries_evicted += evicted as u64;
        self.dynamic_stats.entries_retained += retained as u64;
        self.dynamic_stats.update_seconds += seconds;

        Ok(UpdateOutcome {
            applied: changed,
            skipped: applied.skipped,
            coalesced: applied.cancelled,
            stats,
            evicted,
            retained,
            epoch: self.epoch,
            seconds,
        })
    }

    /// Answer a request stream, coalescing up to `max_batch` requests per
    /// fan-out round. Responses come back in request order.
    pub fn serve(&mut self, requests: &[Request]) -> Vec<Response> {
        let chunk = self.config.max_batch.max(1);
        let mut out = Vec::with_capacity(requests.len());
        for batch in requests.chunks(chunk) {
            out.extend(self.run_batch(batch).responses);
        }
        out
    }

    /// Execute one batch in (at most) one cluster fan-out round — the
    /// same engine as [`PprServer::run_batch`](crate::PprServer::run_batch),
    /// with one assembly worker per cache shard when parallelism is on.
    /// The whole batch runs inside the current epoch.
    pub fn run_batch(&mut self, requests: &[Request]) -> BatchOutcome {
        let assembly = self.cache.assembly_mode(self.config.parallelism);
        execute_batch(
            &self.index,
            &self.cluster,
            &mut self.cache,
            &self.config,
            &mut self.stats,
            requests,
            assembly,
        )
    }

    /// Route this server's fan-outs over a real multi-process
    /// [`SocketCluster`]. Answers stay bit-identical to the modeled
    /// path; epoch barriers are pushed to the workers automatically
    /// ([`DynamicPprServer::apply_delta`] publishes after applying
    /// locally). The socket cluster must have been launched from this
    /// server's current index and epoch.
    pub fn attach_socket(&mut self, socket: Arc<SocketCluster>) {
        self.cluster.attach_socket(socket);
    }

    /// Detach the socket transport; fan-outs return to the modeled
    /// in-process path.
    pub fn detach_socket(&mut self) -> Option<Arc<SocketCluster>> {
        self.cluster.detach_socket()
    }

    /// The attached socket transport, if any.
    pub fn socket(&self) -> Option<&Arc<SocketCluster>> {
        self.cluster.socket()
    }

    /// Install a deterministic fault plan (and keep the current retry /
    /// timeout policy). With [`FaultPlan::empty`] — the default — the
    /// resilient path is bit-identical to [`DynamicPprServer::run_batch`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.cluster.set_fault_plan(plan);
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.cluster.fault_plan()
    }

    /// Replace the retry / timeout / hedging policy.
    pub fn set_resilience(&mut self, resilience: ResilienceConfig) {
        self.cluster.set_resilience(resilience);
    }

    /// Reconfigure the degraded-answer estimator: `seed` fixes the walk
    /// stream (degraded answers replay bit-identically), `walks` trades
    /// cost for precision ([`Degrader::bound`] shrinks as `1/√walks`).
    ///
    /// # Panics
    /// Panics if `walks` is zero.
    pub fn set_degradation(&mut self, seed: u64, walks: u64) {
        assert!(walks > 0, "a degraded answer needs at least one walk");
        self.degrade_seed = seed;
        self.degrade_walks = walks;
    }

    /// The per-source precision bound degraded answers currently carry.
    pub fn degraded_bound(&self) -> f64 {
        Degrader::new(&self.graph, self.index.config(), self.degrade_seed, self.degrade_walks)
            .bound()
    }

    /// Cumulative resilience counters.
    pub fn resilience_stats(&self) -> &ResilienceStats {
        &self.resilience_stats
    }

    /// Sources parked for exact backfill after degraded rounds.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Execute one batch under the resilience policy: at most one fan-out
    /// round with per-machine deadlines, retries, and hedging
    /// ([`ppr_cluster::Cluster::try_query_many`]).
    ///
    /// * **Complete round** (or no round needed): every answer is
    ///   [`Answer::Exact`], produced by the same probe → fan-out →
    ///   assemble → admit engine as [`DynamicPprServer::run_batch`] — bit
    ///   identical, including cache admission and [`ServeStats`]
    ///   accounting.
    /// * **Incomplete round**: the partial coordinator sums are
    ///   *discarded* — a partial Eq. 5 sum is silently wrong, which is
    ///   worse than visibly approximate — and each request is answered by
    ///   the seeded Monte Carlo [`Degrader`] with its explicit Hoeffding
    ///   bound. Cache-resident sources still resolve exactly (a request
    ///   whose every source is cached comes back [`Answer::Exact`] even
    ///   mid-outage), nothing approximate is admitted to the exact PPV
    ///   cache, and the batch's missing sources are parked (up to
    ///   [`BACKLOG_CAP`]) for [`DynamicPprServer::backfill`].
    ///
    /// Every request resolves to exactly one [`Answer`]; this method never
    /// sheds (admission control lives in the open-loop driver and
    /// [`ShardedPprServer::serve_bounded`](crate::ShardedPprServer::serve_bounded)).
    pub fn run_batch_resilient(&mut self, requests: &[Request]) -> ResilientBatchOutcome {
        let t0 = Stopwatch::start();
        let assembly = self.cache.assembly_mode(self.config.parallelism);

        // Probe phase — identical to the exact batch engine.
        let mut missing: Vec<NodeId> = Vec::new();
        let mut probed: HashSet<NodeId> = HashSet::new();
        for req in requests {
            for u in req.sources() {
                if probed.insert(u) && self.cache.get(u).is_none() {
                    missing.push(u);
                }
            }
        }
        let cached_sources = probed.len() - missing.len();

        let mut fresh: HashMap<NodeId, SparseVector> = HashMap::new();
        let mut modeled_network_seconds = 0.0;
        let mut modeled_fault_seconds = 0.0;
        let mut round_bytes = 0u64;
        let mut outcome = None;
        let mut round_complete = true;
        if !missing.is_empty() {
            let round = self.cluster.try_query_many(&self.index, &missing);
            modeled_network_seconds = round.modeled_network_seconds;
            modeled_fault_seconds = round.modeled_fault_seconds;
            round_bytes = round.delivered_bytes();
            round_complete = round.complete();
            if round_complete {
                self.stats.rounds += 1;
                for (u, ppv) in missing.iter().copied().zip(round.results) {
                    fresh.insert(u, ppv);
                }
            }
            outcome = Some(round.outcome);
        }

        if round_complete {
            let responses = assemble(&self.index, &fresh, &self.cache, requests, assembly);
            // Admit the round's PPVs in batch order (deterministic
            // recency) — exactly as `execute_batch` does.
            if self.config.cache_capacity_bytes > 0 {
                for &u in &missing {
                    if let Some(ppv) = fresh.remove(&u) {
                        self.cache.insert(u, ppv);
                    }
                }
            }
            let seconds = t0.elapsed_seconds();
            self.stats.requests += requests.len() as u64;
            self.stats.batches += 1;
            self.stats.fresh_sources += missing.len() as u64;
            self.stats.cached_sources += cached_sources as u64;
            self.stats.busy_seconds += seconds;
            self.stats.modeled_network_seconds += modeled_network_seconds;
            self.stats.round_bytes += round_bytes;
            self.resilience_stats.resilient_batches += 1;
            self.resilience_stats.exact_answers += requests.len() as u64;
            return ResilientBatchOutcome {
                answers: responses.into_iter().map(Answer::Exact).collect(),
                cached_sources,
                fresh_sources: missing.len(),
                degraded_sources: 0,
                round_complete: true,
                outcome,
                modeled_network_seconds,
                modeled_fault_seconds,
                seconds,
            };
        }

        // Degraded path: answer + error bar, never a lie.
        let degrader = Degrader::new(
            &self.graph,
            self.index.config(),
            self.degrade_seed,
            self.degrade_walks,
        );
        let cache = &self.cache;
        let answers: Vec<Answer> = requests
            .iter()
            .map(|req| degrader.answer(req, |u| cache.peek(u)))
            .collect();
        for &u in &missing {
            if self.backlog.contains(&u) {
                continue;
            }
            if self.backlog.len() < BACKLOG_CAP {
                // audit:allow(unbounded-queue): guarded by the
                // BACKLOG_CAP check one line up; overflow is counted,
                // never silently absorbed.
                self.backlog.insert(u);
            } else {
                self.resilience_stats.backlog_overflow += 1;
            }
        }
        let seconds = t0.elapsed_seconds();
        self.resilience_stats.resilient_batches += 1;
        self.resilience_stats.incomplete_rounds += 1;
        for a in &answers {
            if a.is_exact() {
                self.resilience_stats.exact_answers += 1;
            } else {
                self.resilience_stats.degraded_answers += 1;
            }
        }
        ResilientBatchOutcome {
            answers,
            cached_sources,
            fresh_sources: 0,
            degraded_sources: missing.len(),
            round_complete: false,
            outcome,
            modeled_network_seconds,
            modeled_fault_seconds,
            seconds,
        }
    }

    /// Execute one batch **without any fan-out round**: the
    /// load-shedding flavor of [`DynamicPprServer::run_batch_resilient`]
    /// the open-loop driver takes when the queue has already blown its
    /// SLO. Cache-resident sources answer [`Answer::Exact`]; everything
    /// else is answered by the Monte Carlo [`Degrader`] with its explicit
    /// bound — far cheaper than a fresh exact fan-out — and parked (up to
    /// [`BACKLOG_CAP`]) for [`DynamicPprServer::backfill`]. Every request
    /// resolves to exactly one [`Answer`]; nothing approximate enters the
    /// exact PPV cache.
    pub fn run_batch_degraded(&mut self, requests: &[Request]) -> ResilientBatchOutcome {
        let t0 = Stopwatch::start();
        let mut missing: Vec<NodeId> = Vec::new();
        let mut probed: HashSet<NodeId> = HashSet::new();
        for req in requests {
            for u in req.sources() {
                if probed.insert(u) && self.cache.get(u).is_none() {
                    missing.push(u);
                }
            }
        }
        let cached_sources = probed.len() - missing.len();

        let degrader = Degrader::new(
            &self.graph,
            self.index.config(),
            self.degrade_seed,
            self.degrade_walks,
        );
        let cache = &self.cache;
        let answers: Vec<Answer> = requests
            .iter()
            .map(|req| degrader.answer(req, |u| cache.peek(u)))
            .collect();
        for &u in &missing {
            if self.backlog.contains(&u) {
                continue;
            }
            if self.backlog.len() < BACKLOG_CAP {
                // audit:allow(unbounded-queue): guarded by the
                // BACKLOG_CAP check one line up; overflow is counted,
                // never silently absorbed.
                self.backlog.insert(u);
            } else {
                self.resilience_stats.backlog_overflow += 1;
            }
        }
        let seconds = t0.elapsed_seconds();
        self.resilience_stats.resilient_batches += 1;
        for a in &answers {
            if a.is_exact() {
                self.resilience_stats.exact_answers += 1;
            } else {
                self.resilience_stats.degraded_answers += 1;
            }
        }
        ResilientBatchOutcome {
            answers,
            cached_sources,
            fresh_sources: 0,
            degraded_sources: missing.len(),
            round_complete: false,
            outcome: None,
            modeled_network_seconds: 0.0,
            modeled_fault_seconds: 0.0,
            seconds,
        }
    }

    /// Recover up to `limit` parked sources to the exact PPV cache in one
    /// fan-out round (under the active fault plan and resilience policy).
    /// On a complete round the recovered sources leave the backlog and —
    /// when the cache is enabled — their *exact* PPVs are admitted, so
    /// subsequent answers for them are bit-identical to fault-free
    /// serving. An incomplete round admits nothing and leaves the backlog
    /// as it was: backfill only ever writes exact results.
    pub fn backfill(&mut self, limit: usize) -> BackfillOutcome {
        let t0 = Stopwatch::start();
        let take: Vec<NodeId> = self.backlog.iter().copied().take(limit).collect();
        if take.is_empty() {
            return BackfillOutcome {
                attempted: 0,
                recovered: 0,
                remaining: self.backlog.len(),
                round_complete: true,
                modeled_network_seconds: 0.0,
                modeled_fault_seconds: 0.0,
                seconds: t0.elapsed_seconds(),
            };
        }
        let round = self.cluster.try_query_many(&self.index, &take);
        if !round.complete() {
            self.resilience_stats.incomplete_rounds += 1;
            return BackfillOutcome {
                attempted: take.len(),
                recovered: 0,
                remaining: self.backlog.len(),
                round_complete: false,
                modeled_network_seconds: round.modeled_network_seconds,
                modeled_fault_seconds: round.modeled_fault_seconds,
                seconds: t0.elapsed_seconds(),
            };
        }
        self.stats.rounds += 1;
        self.stats.fresh_sources += take.len() as u64;
        self.stats.modeled_network_seconds += round.modeled_network_seconds;
        self.stats.round_bytes += round.delivered_bytes();
        for (u, ppv) in take.iter().copied().zip(round.results) {
            if self.config.cache_capacity_bytes > 0 {
                self.cache.insert(u, ppv);
            }
            self.backlog.remove(&u);
        }
        self.resilience_stats.backfilled_sources += take.len() as u64;
        BackfillOutcome {
            attempted: take.len(),
            recovered: take.len(),
            remaining: self.backlog.len(),
            round_complete: true,
            modeled_network_seconds: round.modeled_network_seconds,
            modeled_fault_seconds: round.modeled_fault_seconds,
            seconds: t0.elapsed_seconds(),
        }
    }

    /// Single-request convenience: exact PPV of `u` on the current graph.
    pub fn query(&mut self, u: NodeId) -> SparseVector {
        match self.run_batch(&[Request::Ppv(u)]).responses.pop() {
            Some(Response::Ppv(v)) => v,
            // audit:allow(serve-panic): execute_batch maps each request to its
            // same-variant response in order
            _ => unreachable!("Ppv request yields Ppv response"),
        }
    }

    /// Single-request convenience: exact top-k of `u`'s PPV.
    pub fn top_k(&mut self, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        match self
            .run_batch(&[Request::TopK { source: u, k }])
            .responses
            .pop()
        {
            Some(Response::TopK(t)) => t,
            // audit:allow(serve-panic): execute_batch maps each request to its
            // same-variant response in order
            _ => unreachable!("TopK request yields TopK response"),
        }
    }

    /// The graph the index is currently exact for.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The incrementally maintained index.
    pub fn index(&self) -> &HgpaIndex {
        &self.index
    }

    /// Cumulative serving counters (query side).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Cumulative update counters.
    pub fn dynamic_stats(&self) -> &DynamicStats {
        &self.dynamic_stats
    }

    /// The current epoch: the number of effective update barriers applied
    /// so far. All queries between two [`DynamicPprServer::apply_updates`]
    /// calls observe one epoch's `(graph, index)` version.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of reader cache shards.
    pub fn shard_count(&self) -> usize {
        self.cache.shard_count()
    }

    /// Cumulative cache counters per shard, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.cache.per_shard_stats()
    }

    /// Cumulative cache counters (preserved across invalidations), summed
    /// over shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resident cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Bytes currently resident in the PPV cache.
    pub fn cache_bytes(&self) -> u64 {
        self.cache.bytes()
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
    use ppr_partition::HierarchyConfig;

    fn sample(n: usize, seed: u64) -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: n,
                depth: 4,
                locality: 0.9,
                ..Default::default()
            },
            seed,
        )
    }

    fn opts(machines: usize) -> HgpaBuildOptions {
        HgpaBuildOptions {
            machines,
            hierarchy: HierarchyConfig {
                max_leaf_size: 16,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn server(n: usize, seed: u64) -> DynamicPprServer {
        DynamicPprServer::build(
            sample(n, seed),
            &PprConfig::default(),
            &opts(3),
            ServeConfig::default(),
        )
    }

    #[test]
    fn noop_updates_touch_nothing() {
        let mut s = server(150, 5);
        let warm = s.query(3);
        let existing = s.graph().edges().next().unwrap();
        let out = s
            .apply_updates(&[
                EdgeUpdate::Insert(existing.0, existing.1), // already present
                EdgeUpdate::Remove(9, 9),                   // absent self-loop
            ])
            .expect("no-op batch is valid");
        assert_eq!((out.applied, out.skipped), (0, 2));
        assert_eq!((out.evicted, out.retained), (0, 0));
        assert_eq!(s.dynamic_stats().update_batches, 0);
        assert_eq!(s.query(3), warm);
        assert_eq!(s.cache_stats().hits, 1, "no-op batch must not evict");
    }

    #[test]
    fn insert_then_remove_within_batch_coalesces_away() {
        let mut s = server(150, 7);
        let warm = s.query(3);
        let (u, v) = (0u32, 140u32);
        assert!(!s.graph().has_edge(u, v));
        let out = s
            .apply_updates(&[EdgeUpdate::Insert(u, v), EdgeUpdate::Remove(u, v)])
            .expect("cancelled batch is valid");
        // Both updates are effective in sequence, but their net effect is
        // nothing: coalescing cancels them before the (expensive)
        // incremental updater runs, no epoch barrier fires, and the cache
        // is untouched.
        assert_eq!((out.applied, out.coalesced, out.skipped), (0, 2, 0));
        assert_eq!(out.stats, UpdateStats::default());
        assert_eq!((out.evicted, out.retained), (0, 0));
        assert_eq!((out.epoch, s.epoch()), (0, 0));
        assert_eq!(s.dynamic_stats().update_batches, 0);
        assert_eq!(s.dynamic_stats().updates_coalesced, 2);
        assert!(!s.graph().has_edge(u, v));
        assert_eq!(s.query(3), warm, "cancelled batch must not evict");
    }

    #[test]
    fn effective_batches_advance_the_epoch() {
        let mut s = server(150, 11);
        assert_eq!(s.epoch(), 0);
        let out = s.apply_updates(&[EdgeUpdate::Insert(0, 140)]).expect("valid");
        assert_eq!((out.applied, out.epoch), (1, 1));
        assert_eq!(s.epoch(), 1);
        let out = s.apply_updates(&[EdgeUpdate::Remove(0, 140)]).expect("valid");
        assert_eq!((out.applied, out.epoch), (1, 2));
        assert_eq!(s.epoch(), 2);
    }

    #[test]
    fn updates_change_served_answers_exactly() {
        let g0 = sample(160, 9);
        let cfg = PprConfig::default();
        let mut s = DynamicPprServer::build(g0.clone(), &cfg, &opts(3), ServeConfig::default());
        let (u, v) = (2u32, 150u32);
        assert!(!g0.has_edge(u, v));
        let before = s.query(u);
        let out = s.apply_updates(&[EdgeUpdate::Insert(u, v)]).expect("valid");
        assert_eq!(out.applied, 1);
        let after = s.query(u);
        assert_ne!(before, after, "inserting an out-edge of u must change its PPV");
        // Differential: recomputing every vector from scratch on the same
        // (updated) hierarchy must reproduce the maintained index bit for
        // bit. Central queries are the machine-agnostic comparison — a
        // promoted hub's machine assignment legitimately differs between
        // the incremental path and a rebuild, which permutes the
        // coordinator's summation order in served answers.
        let rebuilt = HgpaIndex::build_with_hierarchy(
            s.graph(),
            &cfg,
            &opts(3),
            s.index().hierarchy().clone(),
        );
        assert_eq!(s.index().query(u), rebuilt.query(u));
        // The served (cache) path must be bit-identical to a fresh
        // fan-out over the maintained index itself.
        let direct = ppr_cluster::Cluster::with_default_network()
            .query(s.index(), u)
            .result;
        assert_eq!(s.query(u), direct);
    }

    #[test]
    fn node_churn_is_served_exactly() {
        use ppr_graph::NodeUpdate;
        let cfg = PprConfig::default();
        let mut s = DynamicPprServer::build(sample(160, 21), &cfg, &opts(3), ServeConfig::default());
        let out = s
            .apply_delta(&GraphDelta {
                nodes: vec![NodeUpdate::Remove(40), NodeUpdate::Add],
                edges: vec![EdgeUpdate::Insert(2, 160), EdgeUpdate::Insert(160, 7)],
            })
            .expect("valid churn batch");
        assert_eq!((out.stats.nodes_added, out.stats.nodes_removed), (1, 1));
        assert_eq!((out.epoch, s.epoch()), (1, 1));
        assert!(s.index().is_live(160) && !s.index().is_live(40));
        assert_eq!(s.dynamic_stats().nodes_added, 1);
        assert_eq!(s.dynamic_stats().nodes_removed, 1);
        // The removed node answers empty; the added node serves at once.
        assert_eq!(s.query(40).nnz(), 0);
        assert!(s.query(160).get(7) > 0.0);
        // Differential: a from-scratch recomputation on the maintained
        // hierarchy reproduces the served answers bit for bit.
        let rebuilt = HgpaIndex::build_with_hierarchy(
            s.graph(),
            &cfg,
            &opts(3),
            s.index().hierarchy().clone(),
        );
        for u in [2u32, 7, 160] {
            assert_eq!(s.index().query(u), rebuilt.query(u));
        }
    }

    #[test]
    fn dead_node_updates_are_rejected_without_damage() {
        use ppr_graph::NodeUpdate;
        let mut s = server(150, 13);
        s.apply_delta(&GraphDelta {
            nodes: vec![NodeUpdate::Remove(9)],
            edges: vec![],
        })
        .expect("valid removal");
        let warm = s.query(3);
        let epoch = s.epoch();
        let batches = s.dynamic_stats().update_batches;
        // An edge on a tombstone is rejected by the index's liveness
        // check — an Err, not a panic — and nothing moves.
        let err = s.apply_updates(&[EdgeUpdate::Insert(9, 3)]).unwrap_err();
        assert!(matches!(err, UpdateError::DeadNode { node: 9 }), "{err}");
        assert!(err.to_string().contains("not live"));
        // Structurally invalid batches are rejected at the graph level.
        let err = s
            .apply_delta(&GraphDelta {
                nodes: vec![NodeUpdate::Remove(9), NodeUpdate::Remove(9)],
                edges: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, UpdateError::Delta(_)), "{err}");
        assert_eq!(s.epoch(), epoch, "rejected batches release no epoch");
        assert_eq!(s.dynamic_stats().update_batches, batches);
        assert_eq!(s.query(3), warm, "serving continues on the old version");
    }

    #[test]
    fn resilient_batch_with_empty_plan_matches_run_batch() {
        let reqs = vec![
            Request::Ppv(3),
            Request::TopK { source: 9, k: 4 },
            Request::Preference(vec![(3, 0.5), (11, 0.5)]),
            Request::Ppv(3),
        ];
        let mut exact = server(150, 17);
        let mut resilient = server(150, 17);
        for round in 0..2 {
            let want = exact.run_batch(&reqs);
            let got = resilient.run_batch_resilient(&reqs);
            assert!(got.round_complete);
            assert_eq!(got.degraded_sources, 0);
            assert_eq!(got.answers.len(), want.responses.len());
            for (a, r) in got.answers.iter().zip(&want.responses) {
                assert_eq!(a, &Answer::Exact(r.clone()), "round {round}");
            }
            assert_eq!(got.cached_sources, want.cached_sources);
            assert_eq!(got.fresh_sources, want.fresh_sources);
        }
        // Identical cache state and exact-path accounting afterwards.
        assert_eq!(resilient.cache_len(), exact.cache_len());
        assert_eq!(resilient.stats().fresh_sources, exact.stats().fresh_sources);
        assert_eq!(resilient.stats().cached_sources, exact.stats().cached_sources);
        assert_eq!(resilient.stats().rounds, exact.stats().rounds);
        assert_eq!(resilient.resilience_stats().degraded_answers, 0);
        assert_eq!(resilient.resilience_stats().exact_answers, 8);
        assert_eq!(resilient.backlog_len(), 0);
    }

    #[test]
    fn outage_degrades_with_a_bound_that_holds_then_backfills_exactly() {
        let mut clean = server(150, 19);
        let mut s = server(150, 19);
        // Machine 0 down for the next hundred rounds.
        s.set_fault_plan(FaultPlan::empty().fail(0, 0, 100));
        let out = s.run_batch_resilient(&[Request::Ppv(5)]);
        assert!(!out.round_complete);
        assert_eq!(out.degraded_sources, 1);
        let a = &out.answers[0];
        assert!(a.is_approximate());
        let bound = a.precision_bound().unwrap();
        assert_eq!(bound, s.degraded_bound());
        // The advertised bound holds coordinate-wise against the exact PPV.
        let exact = clean.query(5);
        let approx = a.response().unwrap().as_ppv().unwrap();
        for v in 0..150u32 {
            let err = (approx.get(v) - exact.get(v)).abs();
            assert!(err <= bound, "v {v}: err {err} > bound {bound}");
        }
        // Nothing approximate entered the cache; the source is parked.
        assert_eq!(s.cache_len(), 0);
        assert_eq!(s.backlog_len(), 1);
        assert_eq!(s.resilience_stats().degraded_answers, 1);
        // Backfill under the outage recovers nothing...
        let b = s.backfill(8);
        assert!(!b.round_complete);
        assert_eq!((b.recovered, b.remaining), (0, 1));
        // ...and after recovery it restores bit-identical exact serving.
        s.set_fault_plan(FaultPlan::empty());
        let b = s.backfill(8);
        assert!(b.round_complete);
        assert_eq!((b.recovered, b.remaining), (1, 0));
        assert_eq!(s.resilience_stats().backfilled_sources, 1);
        let after = s.run_batch_resilient(&[Request::Ppv(5)]);
        assert_eq!(after.answers[0], Answer::Exact(Response::Ppv(exact)));
    }

    #[test]
    fn cached_sources_answer_exactly_even_mid_outage() {
        let mut s = server(150, 23);
        let warm = s.query(4); // cached before the fault
        s.set_fault_plan(FaultPlan::empty().fail(1, 0, u64::MAX));
        // Fully cached request: exact despite the outage, no degradation.
        let out = s.run_batch_resilient(&[Request::Ppv(4)]);
        assert!(out.round_complete && out.outcome.is_none());
        assert_eq!(out.answers[0], Answer::Exact(Response::Ppv(warm.clone())));
        // Mixed preference: the cached member stays exact, only the
        // missing member's weight is covered by the bound.
        let out = s.run_batch_resilient(&[Request::Preference(vec![(4, 0.75), (90, 0.25)])]);
        assert!(out.answers[0].is_approximate());
        assert_eq!(
            out.answers[0].precision_bound().unwrap(),
            s.degraded_bound() * 0.25
        );
        assert_eq!(s.backlog_len(), 1, "only the missing source is parked");
        // The fully-cached batch answered exactly; the mixed one degraded.
        assert_eq!(s.resilience_stats().exact_answers, 1);
        assert_eq!(s.resilience_stats().degraded_answers, 1);
    }

    #[test]
    #[should_panic(expected = "node set")]
    fn mismatched_graph_rejected() {
        let g = sample(100, 1);
        let idx = HgpaIndex::build(&sample(101, 1), &PprConfig::default(), &opts(2));
        DynamicPprServer::from_index(g, idx, ServeConfig::default());
    }
}
