//! Worker process main loop for the socket-transport cluster.
//!
//! One worker is one *machine* of the paper's cluster, as a real OS
//! process: it cold-starts from the persisted `.pprx` snapshot named in
//! `PPR_WORKER_INDEX`, connects back to the coordinator at
//! `PPR_WORKER_ADDR`, introduces itself (`Hello` with its machine id
//! from `PPR_WORKER_MACHINE`), receives the current graph and epoch
//! (`Welcome`), and then serves fan-out frames until told to stop:
//!
//! * `Request` / `RequestPref` → the machine's Eq. 5/7 share, computed
//!   with the same `machine_vectors_into` the modeled transport calls
//!   in-process (bit-identity by construction), shipped as one `Reply`;
//! * `Update` → apply the epoch delta through the shared
//!   [`IndexReplica`] path and ack;
//! * `Ping` → `Pong` (the supervisor's heartbeat);
//! * `Shutdown`, or EOF because the coordinator died → exit. A worker
//!   never outlives its coordinator — no orphan processes.
//!
//! `PPR_WORKER_CHAOS` arms deterministic fault injection for the crash
//! and corruption test suites (`kill-after-requests:N` aborts the
//! process on the Nth request before replying — a `kill -9` mid-batch —
//! and `garbage-reply:N` answers the Nth request with a deliberately
//! malformed frame).

use crate::replica::IndexReplica;
use ppr_cluster::DistributedQueryable;
use ppr_core::parallel::Stopwatch;
use ppr_core::persist;
use ppr_core::Scratch;
use ppr_wire::{FramedStream, Message, PROTOCOL_VERSION};
use std::io;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// Deterministic fault injection, armed via `PPR_WORKER_CHAOS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Chaos {
    /// Serve honestly forever.
    #[default]
    None,
    /// Abort the process (as if `kill -9`ed) upon *receiving* request
    /// number N (1-based) — after the coordinator committed to the
    /// round, before any reply: the crash-mid-batch case.
    KillAfterRequests(u64),
    /// Answer request number N (1-based) with a malformed frame instead
    /// of a `Reply`, then keep serving. The coordinator must treat the
    /// corruption as a dropped reply, never crash on it.
    GarbageReply(u64),
}

impl Chaos {
    /// Parse the `PPR_WORKER_CHAOS` syntax (empty = none).
    ///
    /// # Errors
    /// Unknown directives — a typo must fail loudly, not serve honestly.
    pub fn parse(spec: &str) -> io::Result<Self> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(Self::None);
        }
        let parse_n = |rest: &str| {
            rest.parse::<u64>()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))
        };
        if let Some(rest) = spec.strip_prefix("kill-after-requests:") {
            return Ok(Self::KillAfterRequests(parse_n(rest)?));
        }
        if let Some(rest) = spec.strip_prefix("garbage-reply:") {
            return Ok(Self::GarbageReply(parse_n(rest)?));
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown PPR_WORKER_CHAOS directive: {spec:?}"),
        ))
    }
}

/// Everything one worker process needs to serve.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// This worker's machine id (shard of the fan-out it answers).
    pub machine: u32,
    /// Coordinator address to connect back to (`host:port`).
    pub addr: String,
    /// The `.pprx` snapshot to cold-start from.
    pub index_path: PathBuf,
    /// Per-operation socket deadline.
    pub io_deadline: Duration,
    /// Armed fault injection.
    pub chaos: Chaos,
}

impl WorkerConfig {
    /// Read the `PPR_WORKER_*` environment contract the supervisor sets.
    ///
    /// # Errors
    /// Missing or malformed variables.
    pub fn from_env() -> io::Result<Self> {
        let var = |name: &str| {
            std::env::var(name)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, format!("{name} not set")))
        };
        let machine = var("PPR_WORKER_MACHINE")?
            .parse::<u32>()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let addr = var("PPR_WORKER_ADDR")?;
        let index_path = PathBuf::from(var("PPR_WORKER_INDEX")?);
        let io_ms = std::env::var("PPR_WORKER_IO_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(10_000);
        let chaos = Chaos::parse(&std::env::var("PPR_WORKER_CHAOS").unwrap_or_default())?;
        Ok(Self {
            machine,
            addr,
            index_path,
            io_deadline: Duration::from_millis(io_ms.max(1)),
            chaos,
        })
    }
}

/// Run one worker to completion under the environment contract — the
/// whole body of the `ppr-worker` binary and the hidden `repro worker`
/// subcommand.
///
/// # Errors
/// Startup failures (bad env, unreadable snapshot, handshake) and
/// protocol violations; a vanished coordinator is a clean `Ok` exit.
pub fn run_from_env() -> io::Result<()> {
    run(&WorkerConfig::from_env()?)
}

/// Run one worker to completion.
///
/// # Errors
/// See [`run_from_env`].
pub fn run(config: &WorkerConfig) -> io::Result<()> {
    let index = persist::load_hgpa_file(&config.index_path)?;
    let machine = config.machine;
    let stream = connect_with_retries(&config.addr)?;
    let mut fs = FramedStream::new(stream, config.io_deadline);
    fs.send(&Message::Hello {
        machine,
        proto: PROTOCOL_VERSION,
    })?;
    // The Welcome graph describes the same node set as the snapshot, so
    // the snapshot's node count bounds every id in it.
    let (welcome, _) = fs.recv(index.node_count() as u64)?;
    let (epoch, graph) = match welcome {
        Message::Welcome { epoch, graph } => (epoch, graph),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker {machine}: expected Welcome, got {other:?}"),
            ))
        }
    };
    let mut replica = IndexReplica::new(graph, index, epoch);
    let mut scratch = Scratch::with_len(replica.index().node_count());
    let mut served = 0u64;

    loop {
        let bound = replica.graph().node_count() as u64;
        let msg = match fs.recv(bound) {
            Ok((msg, _)) => msg,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue; // idle coordinator; keep waiting
            }
            // EOF or reset: the coordinator is gone. Exit instead of
            // lingering — the supervisor owns restarts, and a worker
            // without a coordinator is an orphan.
            Err(_) => return Ok(()),
        };
        match msg {
            Message::Request { round, sources } => {
                served += 1;
                if chaos_strikes(config.chaos, served, &mut fs)? {
                    continue;
                }
                let t = Stopwatch::start();
                let vectors = replica
                    .index()
                    .machine_vectors_into(&sources, machine, &mut scratch);
                let compute_seconds = t.elapsed_seconds();
                fs.send(&Message::Reply {
                    round,
                    machine,
                    compute_seconds,
                    vectors,
                })?;
            }
            Message::RequestPref { round, pairs } => {
                served += 1;
                if chaos_strikes(config.chaos, served, &mut fs)? {
                    continue;
                }
                let t = Stopwatch::start();
                let v = replica
                    .index()
                    .machine_vector_preference_into(&pairs, machine, &mut scratch);
                let compute_seconds = t.elapsed_seconds();
                fs.send(&Message::Reply {
                    round,
                    machine,
                    compute_seconds,
                    vectors: vec![v],
                })?;
            }
            Message::Update { epoch, delta } => {
                // The coordinator only publishes deltas it applied
                // successfully, so a failure here is real divergence:
                // exit nonzero and let the supervisor cold-start a fresh
                // replica from the post-delta snapshot.
                replica.apply(&delta, epoch).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("worker {machine}: epoch {epoch} delta rejected: {e:?}"),
                    )
                })?;
                // Node churn can resize the id space; the scratch arena
                // must track it.
                scratch = Scratch::with_len(replica.index().node_count());
                fs.send(&Message::UpdateAck { epoch, machine })?;
            }
            Message::Ping { seq } => {
                fs.send(&Message::Pong {
                    seq,
                    machine,
                    epoch: replica.epoch(),
                })?;
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker {machine}: unexpected frame {other:?}"),
                ))
            }
        }
    }
}

/// Fire any armed chaos for request number `served`. Returns `true` when
/// the request was consumed by the chaos (no honest reply must follow).
fn chaos_strikes(chaos: Chaos, served: u64, fs: &mut FramedStream) -> io::Result<bool> {
    match chaos {
        Chaos::None => Ok(false),
        Chaos::KillAfterRequests(n) if served == n => {
            // As close to `kill -9` as a process can do to itself: no
            // unwinding, no cleanup, no reply — the coordinator sees a
            // dead connection mid-round.
            std::process::abort();
        }
        Chaos::KillAfterRequests(_) => Ok(false),
        Chaos::GarbageReply(n) if served == n => {
            // A frame-sized lie: valid length so the coordinator's read
            // completes, then garbage where the payload should be.
            fs.send_raw(b"PPRW\x05\x08\x00\x00\x00\xde\xad\xbe\xefXXXXXXXX")?;
            Ok(true)
        }
        Chaos::GarbageReply(_) => Ok(false),
    }
}

/// Connect to the coordinator, retrying briefly: the supervisor binds
/// its listener before spawning workers, but a loaded host can still
/// reorder the first connect ahead of the accept loop.
fn connect_with_retries(addr: &str) -> io::Result<TcpStream> {
    let mut last = io::Error::new(io::ErrorKind::TimedOut, "no connect attempt made");
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    Err(last)
}
