//! Byte-accounted LRU cache for precomputed PPVs.
//!
//! The serving layer caches whole exact PPVs keyed by source node. Unlike
//! a count-bounded LRU, capacity is accounted in *bytes* under the same
//! serialization model the cluster uses for communication costs
//! ([`SparseVector::wire_bytes`]) — PPV sizes vary by orders of magnitude
//! between a leaf-locked source and a high-level hub, so an entry-count
//! bound would make memory use unpredictable.
//!
//! The implementation is a classic intrusive doubly-linked recency list
//! over a slab, with a `HashMap` from source node to slot: `get`, `insert`
//! and eviction are all O(1) (amortized, modulo hashing).

use ppr_core::SparseVector;
use ppr_graph::NodeId;
use std::collections::HashMap;

/// Sentinel slot index for list ends.
const NIL: usize = usize::MAX;

/// One cached PPV plus its recency-list links.
struct Slot {
    key: NodeId,
    value: SparseVector,
    bytes: u64,
    prev: usize,
    next: usize,
}

/// Cumulative cache counters.
///
/// All counters are monotone over the cache's lifetime: neither capacity
/// eviction nor invalidation ([`PpvCache::clear`] / [`PpvCache::remove`])
/// resets them, so hit rates stay meaningful across index updates — an
/// invalidation empties the *contents*, never the *history*.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found the source's PPV resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries rejected because they alone exceed the capacity.
    pub oversized_rejections: u64,
    /// Entries dropped by invalidation ([`PpvCache::clear`] or
    /// [`PpvCache::remove`]) rather than by capacity pressure.
    pub invalidated: u64,
}

impl CacheStats {
    /// Accumulate `other`'s counters into `self` (used to sum per-shard
    /// stats). Destructures so that adding a counter to [`CacheStats`]
    /// without summing it here is a compile error, not a silent zero in
    /// sharded totals.
    pub fn merge(&mut self, other: &CacheStats) {
        let CacheStats {
            hits,
            misses,
            insertions,
            evictions,
            oversized_rejections,
            invalidated,
        } = *other;
        self.hits += hits;
        self.misses += misses;
        self.insertions += insertions;
        self.evictions += evictions;
        self.oversized_rejections += oversized_rejections;
        self.invalidated += invalidated;
    }

    /// Fraction of lookups served from cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU cache of exact PPVs with a byte-accounted capacity.
pub struct PpvCache {
    capacity_bytes: u64,
    bytes: u64,
    map: HashMap<NodeId, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: CacheStats,
}

impl PpvCache {
    /// Cache holding at most `capacity_bytes` of PPV data. Zero capacity
    /// yields a cache that stores nothing (every lookup misses).
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            bytes: 0,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Look up the PPV of `u`, marking it most recently used on a hit.
    pub fn get(&mut self, u: NodeId) -> Option<&SparseVector> {
        match self.map.get(&u).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.unlink(slot);
                self.push_front(slot);
                Some(&self.slots[slot].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Look up without touching recency or hit/miss counters (used when a
    /// batch re-reads a source it already probed).
    pub fn peek(&self, u: NodeId) -> Option<&SparseVector> {
        self.map.get(&u).map(|&slot| &self.slots[slot].value)
    }

    /// Insert (or replace) the PPV of `u`, evicting least-recently-used
    /// entries until it fits. A vector larger than the whole capacity is
    /// rejected rather than flushing the cache for nothing.
    pub fn insert(&mut self, u: NodeId, value: SparseVector) {
        let bytes = value.wire_bytes();
        if bytes > self.capacity_bytes {
            self.stats.oversized_rejections += 1;
            return;
        }
        if let Some(&slot) = self.map.get(&u) {
            // Replace in place (e.g. after an index update invalidation).
            self.bytes = self.bytes - self.slots[slot].bytes + bytes;
            self.slots[slot].value = value;
            self.slots[slot].bytes = bytes;
            self.unlink(slot);
            self.push_front(slot);
        } else {
            while self.bytes + bytes > self.capacity_bytes {
                self.evict_lru();
            }
            let slot = self.alloc(Slot {
                key: u,
                value,
                bytes,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(u, slot);
            self.bytes += bytes;
            self.push_front(slot);
            self.stats.insertions += 1;
        }
        // Replacement can also overflow; trim from the cold end either way.
        while self.bytes > self.capacity_bytes {
            self.evict_lru();
        }
    }

    /// Drop every entry (the blunt invalidation for index rebuilds).
    ///
    /// Cumulative [`CacheStats`] survive — only [`CacheStats::invalidated`]
    /// advances, by the number of entries dropped.
    pub fn clear(&mut self) {
        self.stats.invalidated += self.map.len() as u64;
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }

    /// Drop the entry for `u` if resident (fine-grained invalidation after
    /// an index update). Returns whether an entry was removed; counted
    /// under [`CacheStats::invalidated`], not eviction.
    pub fn remove(&mut self, u: NodeId) -> bool {
        let Some(slot) = self.map.remove(&u) else {
            return false;
        };
        self.unlink(slot);
        self.bytes -= self.slots[slot].bytes;
        self.slots[slot].value = SparseVector::new();
        self.free.push(slot);
        self.stats.invalidated += 1;
        true
    }

    /// The source nodes currently resident, in ascending id order.
    ///
    /// Sorted at the emission point so callers that report or sweep the
    /// resident set (shard invalidation, diagnostics) never observe the
    /// hash map's internal order — the listing is reproducible across
    /// runs and identical for caches holding the same set.
    pub fn resident_keys(&self) -> Vec<NodeId> {
        self.map.keys().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently resident.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn alloc(&mut self, slot: Slot) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        }
    }

    fn evict_lru(&mut self) {
        let slot = self.tail;
        assert_ne!(slot, NIL, "evict on empty cache — capacity accounting bug");
        self.unlink(slot);
        let key = self.slots[slot].key;
        self.bytes -= self.slots[slot].bytes;
        self.slots[slot].value = SparseVector::new();
        self.map.remove(&key);
        self.free.push(slot);
        self.stats.evictions += 1;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(id: NodeId, nnz: usize) -> SparseVector {
        SparseVector::from_entries((0..nnz as NodeId).map(|v| (v, 0.1 + id as f64)).collect())
    }

    #[test]
    fn hit_miss_and_recency() {
        let mut c = PpvCache::new(10_000);
        assert!(c.get(1).is_none());
        c.insert(1, vec_of(1, 4));
        c.insert(2, vec_of(2, 4));
        assert_eq!(c.get(1).unwrap().get(0), 1.1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 2));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_lru_by_bytes() {
        // Each 4-entry vector costs 8 + 4*12 = 56 bytes; room for two.
        let mut c = PpvCache::new(120);
        c.insert(1, vec_of(1, 4));
        c.insert(2, vec_of(2, 4));
        assert_eq!(c.len(), 2);
        c.get(1); // 2 becomes LRU
        c.insert(3, vec_of(3, 4));
        assert_eq!(c.len(), 2);
        assert!(c.peek(2).is_none(), "LRU entry should be evicted");
        assert!(c.peek(1).is_some() && c.peek(3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.bytes() <= c.capacity_bytes());
    }

    #[test]
    fn oversized_entries_rejected() {
        let mut c = PpvCache::new(60);
        c.insert(1, vec_of(1, 4)); // 56 bytes: fits
        c.insert(2, vec_of(2, 10)); // 128 bytes: can never fit
        assert_eq!(c.stats().oversized_rejections, 1);
        assert!(c.peek(1).is_some(), "rejection must not flush the cache");
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = PpvCache::new(1000);
        c.insert(1, vec_of(1, 4));
        let before = c.bytes();
        c.insert(1, vec_of(1, 8));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), before + 4 * 12);
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = PpvCache::new(0);
        c.insert(1, vec_of(1, 1));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }

    #[test]
    fn clear_resets_contents_but_not_stats() {
        let mut c = PpvCache::new(1000);
        c.insert(1, vec_of(1, 4));
        assert!(c.get(1).is_some() && c.get(9).is_none()); // 1 hit, 1 miss
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        c.insert(2, vec_of(2, 4));
        assert_eq!(c.get(2).unwrap().nnz(), 4);
        // History survives invalidation; only `invalidated` advanced.
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 1, 2));
        assert_eq!(s.invalidated, 1);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn remove_is_targeted() {
        let mut c = PpvCache::new(10_000);
        c.insert(1, vec_of(1, 4));
        c.insert(2, vec_of(2, 4));
        c.insert(3, vec_of(3, 4));
        let before = c.bytes();
        assert!(c.remove(2));
        assert!(!c.remove(2), "second removal is a no-op");
        assert!(c.peek(2).is_none());
        assert!(c.peek(1).is_some() && c.peek(3).is_some());
        assert_eq!(c.bytes(), before - vec_of(2, 4).wire_bytes());
        assert_eq!(c.stats().invalidated, 1);
        assert_eq!(c.stats().evictions, 0);
        // The freed slot is reusable and the recency list stays sound.
        c.insert(4, vec_of(4, 4));
        let mut keys = c.resident_keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 3, 4]);
        for k in [1, 3, 4] {
            assert!(c.get(k).is_some());
        }
    }

    #[test]
    fn many_inserts_stay_consistent() {
        let mut c = PpvCache::new(2_000);
        for i in 0..200u32 {
            c.insert(i, vec_of(i, 1 + (i % 7) as usize));
            assert!(c.bytes() <= c.capacity_bytes());
            // Every resident key must resolve and round-trip.
            assert!(c.peek(i).is_some());
        }
        assert!(c.stats().evictions > 0);
        let resident: Vec<NodeId> = c.map.keys().copied().collect();
        for k in resident {
            assert!(c.get(k).is_some());
        }
    }
}
