//! Graceful degradation: bounded-precision answers when exactness is
//! unavailable.
//!
//! When a fan-out round comes back with machines missing, or the
//! open-loop SLO is already blown, the server answers from the Monte
//! Carlo baseline (promoted here from a figure-only comparison method to
//! a serving asset) instead of silently dropping the request or serving
//! a wrong "exact" partial sum. Every degraded answer is an
//! [`Answer::Approximate`] carrying an explicit per-coordinate
//! [Hoeffding bound](ppr_baselines::MonteCarloPpr::precision_bound) —
//! the degradation contract is *answer + error bar, never a lie* — and
//! approximate PPVs are **never** admitted to the exact PPV cache, so
//! recovery backfill restores bit-identical exact serving.

use crate::server::{Request, Response};
use ppr_baselines::MonteCarloPpr;
use ppr_core::{PprConfig, Scratch, SparseVector};
use ppr_graph::{CsrGraph, NodeId};

/// How a request resolved under the resilience policy. The no-silent-drop
/// invariant: every admitted request becomes exactly one of these.
#[derive(Clone, Debug, PartialEq)]
pub enum Answer {
    /// The exact answer — bit-identical to the fault-free serving path.
    Exact(Response),
    /// A degraded answer with its explicit error bar: every coordinate of
    /// the response's PPV content is within `precision_bound` of the
    /// exact value (per-source Hoeffding bound; for preference sets the
    /// bound is scaled by the total absolute weight estimated
    /// approximately).
    Approximate {
        /// The approximate response (same shape as the exact one).
        response: Response,
        /// Per-coordinate error bound on the PPV content.
        precision_bound: f64,
    },
    /// Rejected by admission control before any work was done.
    Shed,
}

impl Answer {
    /// Is this the exact answer?
    pub fn is_exact(&self) -> bool {
        matches!(self, Answer::Exact(_))
    }

    /// Is this a degraded (approximate, bounded-error) answer?
    pub fn is_approximate(&self) -> bool {
        matches!(self, Answer::Approximate { .. })
    }

    /// Was the request shed at admission?
    pub fn is_shed(&self) -> bool {
        matches!(self, Answer::Shed)
    }

    /// The response payload, if the request was answered at all.
    pub fn response(&self) -> Option<&Response> {
        match self {
            Answer::Exact(r) | Answer::Approximate { response: r, .. } => Some(r),
            Answer::Shed => None,
        }
    }

    /// The error bound (`Some(0.0)`-free: exact answers report `None`).
    pub fn precision_bound(&self) -> Option<f64> {
        match self {
            Answer::Approximate {
                precision_bound, ..
            } => Some(*precision_bound),
            _ => None,
        }
    }
}

/// Default walk budget for a degraded answer — cheap next to an exact
/// fresh-source fan-out, with a per-coordinate bound of
/// `sqrt(30 / 8192) ≈ 0.06`.
pub const DEGRADED_WALKS: u64 = 4_096;

/// The degraded-answer engine: a seeded Monte Carlo estimator over the
/// server's current graph plus the fixed walk budget.
///
/// Deterministic end to end: the estimator derives every walk from
/// `(seed, source)`, so a degraded answer replays bit-identically.
pub struct Degrader<'g> {
    mc: MonteCarloPpr<'g>,
    node_count: usize,
    walks: u64,
}

impl<'g> Degrader<'g> {
    /// An estimator on `graph` with the index's PPR configuration.
    pub fn new(graph: &'g CsrGraph, cfg: &PprConfig, seed: u64, walks: u64) -> Self {
        assert!(walks > 0, "a degraded answer needs at least one walk");
        Self {
            mc: MonteCarloPpr::new(graph, cfg, seed),
            node_count: graph.node_count(),
            walks,
        }
    }

    /// The per-source precision bound every answer from this degrader
    /// carries.
    pub fn bound(&self) -> f64 {
        MonteCarloPpr::precision_bound(self.walks)
    }

    /// The walk budget per estimated source.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Approximate PPV of one source.
    pub fn ppv(&self, u: NodeId) -> SparseVector {
        self.mc.query(u, self.walks)
    }

    /// Answer `request`, resolving as much as possible exactly through
    /// `resolve` (the caller's exact PPV cache) and estimating only the
    /// sources it cannot supply. Returns [`Answer::Exact`] when every
    /// source resolved — the cache-only fast path stays exact even while
    /// the cluster is degraded — and [`Answer::Approximate`] otherwise,
    /// with the bound covering exactly the estimated mass (per-source
    /// Hoeffding bound, scaled by the total absolute weight of the
    /// estimated preference members).
    pub fn answer<'c>(
        &self,
        request: &Request,
        resolve: impl Fn(NodeId) -> Option<&'c SparseVector>,
    ) -> Answer {
        let per_source = self.bound();
        match request {
            Request::Ppv(u) => match resolve(*u) {
                Some(v) => Answer::Exact(Response::Ppv(v.clone())),
                None => Answer::Approximate {
                    response: Response::Ppv(self.ppv(*u)),
                    precision_bound: per_source,
                },
            },
            Request::TopK { source, k } => match resolve(*source) {
                Some(v) => Answer::Exact(Response::TopK(v.top_k_early_cut(*k))),
                None => Answer::Approximate {
                    // Top-k over the estimate: each listed score is within
                    // the bound of its exact score (ranks may differ where
                    // exact scores are closer than twice the bound).
                    response: Response::TopK(self.ppv(*source).top_k_early_cut(*k)),
                    precision_bound: per_source,
                },
            },
            Request::Preference(members) => {
                let mut scratch = Scratch::with_len(self.node_count);
                let mut estimated_weight = 0.0f64;
                for &(u, w) in members {
                    match resolve(u) {
                        Some(v) => scratch.scatter(v, w),
                        None => {
                            scratch.scatter(&self.ppv(u), w);
                            estimated_weight += w.abs();
                        }
                    }
                }
                let combined = Response::Ppv(scratch.harvest());
                if estimated_weight == 0.0 {
                    Answer::Exact(combined)
                } else {
                    Answer::Approximate {
                        response: combined,
                        precision_bound: per_source * estimated_weight,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn sample() -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: 120,
                ..Default::default()
            },
            5,
        )
    }

    #[test]
    fn fully_resolved_requests_stay_exact() {
        let g = sample();
        let exact = ppr_graph::dense::dense_ppv(&g, 3, 0.15);
        let exact: SparseVector = SparseVector::from_entries(
            exact
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x > 0.0)
                .map(|(v, &x)| (v as NodeId, x))
                .collect(),
        );
        let d = Degrader::new(&g, &PprConfig::default(), 1, 64);
        let a = d.answer(&Request::Ppv(3), |u| (u == 3).then_some(&exact));
        assert_eq!(a, Answer::Exact(Response::Ppv(exact.clone())));
        let a = d.answer(&Request::TopK { source: 3, k: 5 }, |u| {
            (u == 3).then_some(&exact)
        });
        assert!(a.is_exact());
        assert_eq!(
            a.response().unwrap().as_top_k().unwrap(),
            exact.top_k_early_cut(5)
        );
        let a = d.answer(&Request::Preference(vec![(3, 1.0)]), |u| {
            (u == 3).then_some(&exact)
        });
        assert!(a.is_exact());
    }

    #[test]
    fn unresolved_requests_degrade_with_the_bound() {
        let g = sample();
        let d = Degrader::new(&g, &PprConfig::default(), 1, DEGRADED_WALKS);
        let a = d.answer(&Request::Ppv(3), |_| None);
        assert!(a.is_approximate());
        assert_eq!(a.precision_bound(), Some(d.bound()));
        // Replays bit-identically.
        assert_eq!(a, d.answer(&Request::Ppv(3), |_| None));
        // Preference bound scales with the estimated absolute weight.
        let a = d.answer(&Request::Preference(vec![(3, 0.5), (7, 0.25)]), |_| None);
        assert_eq!(a.precision_bound(), Some(d.bound() * 0.75));
    }

    #[test]
    fn mixed_preference_bounds_only_the_estimated_part() {
        let g = sample();
        let exact = SparseVector::from_entries(vec![(0, 1.0)]);
        let d = Degrader::new(&g, &PprConfig::default(), 2, 256);
        let a = d.answer(&Request::Preference(vec![(3, 0.5), (7, 0.5)]), |u| {
            (u == 3).then_some(&exact)
        });
        assert_eq!(a.precision_bound(), Some(d.bound() * 0.5));
    }
}
