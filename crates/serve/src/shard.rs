//! Sharded serving: N reader shards over one hash-partitioned PPV cache.
//!
//! [`PprServer`](crate::PprServer) owns a single LRU cache and assembles
//! every response in the calling thread. [`ShardedPprServer`] splits the
//! cache into `ServeConfig::shards` independent shards (sources routed by
//! a multiplicative hash) and assembles a batch's responses on one scoped
//! worker thread per shard, while the cluster fan-out underneath runs its
//! machines concurrently too ([`ParallelismMode`]). The result is the
//! real-parallel serving path the ROADMAP's "fast as the hardware allows"
//! north star asks for — with the hard invariant that every answer is
//! **bit-identical** to the sequential server's (pinned differentially in
//! `tests/concurrent_serving.rs`):
//!
//! * cache residency only decides *where* a PPV comes from, never its
//!   bits (whole exact PPVs are cached);
//! * response assembly is per-request pure given the per-source PPVs, so
//!   splitting requests across workers cannot change any response;
//! * the shard routing is deterministic, so runs are reproducible.
//!
//! Sharding also bounds writer stalls in the dynamic server: update
//! batches invalidate each shard independently (in parallel), see
//! [`DynamicPprServer`](crate::DynamicPprServer)'s epoch discipline.

use crate::cache::{CacheStats, PpvCache};
use crate::degrade::Answer;
use crate::server::{execute_batch, BatchOutcome, Request, Response, ServeConfig, ServeStats};
use ppr_cluster::{Cluster, ClusterConfig, DistributedQueryable, ParallelismMode};
use ppr_core::SparseVector;
use ppr_graph::NodeId;

/// A hash-partitioned set of PPV cache shards. One shard behaves exactly
/// like the single [`PpvCache`] (same capacity, same LRU order); `N`
/// shards split the byte budget evenly and let readers and invalidation
/// touch each shard independently.
pub(crate) struct ShardSet {
    shards: Vec<PpvCache>,
}

impl ShardSet {
    /// `shards` caches sharing `total_capacity_bytes` evenly (each shard
    /// gets `total / shards`; zero capacity stores nothing).
    pub fn new(shards: usize, total_capacity_bytes: u64) -> Self {
        let shards = shards.max(1);
        let per_shard = total_capacity_bytes / shards as u64;
        Self {
            shards: (0..shards).map(|_| PpvCache::new(per_shard)).collect(),
        }
    }

    /// Deterministic shard of source `u` (Fibonacci multiply-shift, so
    /// structured node-id patterns spread evenly).
    fn route(&self, u: NodeId) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let h = (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h % self.shards.len() as u64) as usize
    }

    /// Look up `u` in its shard, updating that shard's recency/stats.
    pub fn get(&mut self, u: NodeId) -> Option<&SparseVector> {
        let s = self.route(u);
        self.shards[s].get(u)
    }

    /// Look up `u` without touching recency or counters.
    pub fn peek(&self, u: NodeId) -> Option<&SparseVector> {
        self.shards[self.route(u)].peek(u)
    }

    /// Insert the PPV of `u` into its shard.
    pub fn insert(&mut self, u: NodeId, value: SparseVector) {
        let s = self.route(u);
        self.shards[s].insert(u, value);
    }

    /// Drop every entry in every shard.
    pub fn clear(&mut self) {
        for s in &mut self.shards {
            s.clear();
        }
    }

    /// Total resident entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(PpvCache::len).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(PpvCache::is_empty)
    }

    /// Total resident bytes across shards.
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(PpvCache::bytes).sum()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cumulative counters summed over shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total
    }

    /// The reader-side assembly mode for this shard set: one scoped
    /// worker per shard, unless `mode` is sequential (the global
    /// off-switch the `PPR_TEST_THREADS=1` CI lane exercises). Shared by
    /// every sharded front-end so the off-switch rule cannot diverge.
    pub(crate) fn assembly_mode(&self, mode: ParallelismMode) -> ParallelismMode {
        if mode.is_parallel() {
            ParallelismMode::Threads(self.shard_count())
        } else {
            ParallelismMode::Sequential
        }
    }

    /// Cumulative counters per shard, in shard order.
    pub fn per_shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(PpvCache::stats).collect()
    }

    /// Evict every resident source `s` with `stale[s]`, each shard
    /// independently — on scoped threads when `mode` is parallel (the
    /// shards share nothing, so this is safe and deterministic). Returns
    /// `(evicted, retained)` summed over shards.
    pub fn invalidate_stale(&mut self, stale: &[bool], mode: ParallelismMode) -> (usize, usize) {
        fn sweep(shard: &mut PpvCache, stale: &[bool]) -> (usize, usize) {
            let (mut evicted, mut retained) = (0usize, 0usize);
            for key in shard.resident_keys() {
                if stale.get(key as usize).copied().unwrap_or(false) {
                    shard.remove(key);
                    evicted += 1;
                } else {
                    retained += 1;
                }
            }
            (evicted, retained)
        }
        if mode.is_parallel() && self.shards.len() > 1 {
            let counts: Vec<(usize, usize)> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|shard| scope.spawn(move || sweep(shard, stale)))
                    .collect();
                handles
                    .into_iter()
                    // audit:allow(serve-panic): join only fails if the sweep
                    // already panicked; propagating beats hiding it
                    .map(|h| h.join().expect("shard invalidation thread"))
                    .collect()
            });
            counts
                .into_iter()
                .fold((0, 0), |(e, r), (de, dr)| (e + de, r + dr))
        } else {
            let mut total = (0usize, 0usize);
            for shard in &mut self.shards {
                let (e, r) = sweep(shard, stale);
                total.0 += e;
                total.1 += r;
            }
            total
        }
    }
}

/// A concurrent serving front-end over one distributed PPR index: the
/// sharded counterpart of [`PprServer`](crate::PprServer).
///
/// `ServeConfig::shards` reader shards each own a hash-partitioned slice
/// of the PPV cache; a batch's responses are assembled on one scoped
/// worker thread per shard and the cluster fan-out underneath runs
/// machines concurrently (`ServeConfig::parallelism`). Answers are
/// bit-identical to [`PprServer`](crate::PprServer)'s for any request
/// stream — sharding changes throughput, never bits.
///
/// ```
/// use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
/// use ppr_core::PprConfig;
/// use ppr_cluster::ParallelismMode;
/// use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
/// use ppr_serve::{PprServer, ShardedPprServer, ServeConfig};
///
/// let graph = hierarchical_sbm(&HsbmConfig { nodes: 200, ..Default::default() }, 9);
/// let cfg = PprConfig { epsilon: 1e-7, ..Default::default() };
/// let index = HgpaIndex::build(&graph, &cfg, &HgpaBuildOptions::default());
///
/// let mut sharded = ShardedPprServer::new(&index, ServeConfig {
///     shards: 4,
///     parallelism: ParallelismMode::Threads(4),
///     ..Default::default()
/// });
/// let mut sequential = PprServer::new(&index, ServeConfig {
///     parallelism: ParallelismMode::Sequential,
///     ..Default::default()
/// });
/// assert_eq!(sharded.query(5), sequential.query(5)); // bit-identical
/// assert_eq!(sharded.shard_count(), 4);
/// ```
pub struct ShardedPprServer<'i, I: DistributedQueryable> {
    index: &'i I,
    cluster: Cluster,
    shards: ShardSet,
    config: ServeConfig,
    stats: ServeStats,
}

impl<'i, I: DistributedQueryable> ShardedPprServer<'i, I> {
    /// Serve queries from `index` under `config`, with
    /// `config.shards.max(1)` reader shards.
    pub fn new(index: &'i I, config: ServeConfig) -> Self {
        Self {
            index,
            cluster: Cluster::new(ClusterConfig {
                machines: index.machines(),
                network: config.network,
                parallelism: config.parallelism,
            }),
            shards: ShardSet::new(config.shards.max(1), config.cache_capacity_bytes),
            config,
            stats: ServeStats::default(),
        }
    }

    /// Answer a request stream, coalescing up to `max_batch` requests per
    /// fan-out round. Responses come back in request order.
    pub fn serve(&mut self, requests: &[Request]) -> Vec<Response> {
        let chunk = self.config.max_batch.max(1);
        let mut out = Vec::with_capacity(requests.len());
        for batch in requests.chunks(chunk) {
            out.extend(self.run_batch(batch).responses);
        }
        out
    }

    /// Execute one batch: same engine as
    /// [`PprServer::run_batch`](crate::PprServer::run_batch), with
    /// sharded cache probes and per-shard assembly workers.
    pub fn run_batch(&mut self, requests: &[Request]) -> BatchOutcome {
        let assembly = self.shards.assembly_mode(self.config.parallelism);
        execute_batch(
            self.index,
            &self.cluster,
            &mut self.shards,
            &self.config,
            &mut self.stats,
            requests,
            assembly,
        )
    }

    /// Answer a request stream under **admission control**: the first
    /// `cap` requests are admitted and served exactly (same coalescing as
    /// [`ShardedPprServer::serve`]), the remainder are shed up front as
    /// [`Answer::Shed`] without touching the cluster or the cache. Answers
    /// come back in request order — every request resolves to exactly one
    /// [`Answer`], so overload degrades to explicit rejections, never to
    /// silent drops or unbounded queueing.
    pub fn serve_bounded(&mut self, requests: &[Request], cap: usize) -> Vec<Answer> {
        let admitted = cap.min(requests.len());
        let mut out: Vec<Answer> = self.serve(&requests[..admitted])
            .into_iter()
            .map(Answer::Exact)
            .collect();
        out.resize(requests.len(), Answer::Shed);
        out
    }

    /// Single-request convenience: exact PPV of `u`.
    pub fn query(&mut self, u: NodeId) -> SparseVector {
        match self.run_batch(&[Request::Ppv(u)]).responses.pop() {
            Some(Response::Ppv(v)) => v,
            // audit:allow(serve-panic): execute_batch maps each request to its
            // same-variant response in order
            _ => unreachable!("Ppv request yields Ppv response"),
        }
    }

    /// Single-request convenience: exact top-k of `u`'s PPV.
    pub fn top_k(&mut self, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        match self
            .run_batch(&[Request::TopK { source: u, k }])
            .responses
            .pop()
        {
            Some(Response::TopK(t)) => t,
            // audit:allow(serve-panic): execute_batch maps each request to its
            // same-variant response in order
            _ => unreachable!("TopK request yields TopK response"),
        }
    }

    /// Cumulative serving counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Cumulative cache counters, summed over shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.shards.stats()
    }

    /// Cumulative cache counters per shard, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.per_shard_stats()
    }

    /// Number of reader shards.
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    /// Resident cache entries across shards.
    pub fn cache_len(&self) -> usize {
        self.shards.len()
    }

    /// Bytes currently resident across shards.
    pub fn cache_bytes(&self) -> u64 {
        self.shards.bytes()
    }

    /// Drop every cached PPV in every shard.
    pub fn invalidate_cache(&mut self) {
        self.shards.clear();
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }
}
