//! The serving front-end: request batching over one cluster fan-out.
//!
//! [`PprServer`] sits between clients and a [`DistributedQueryable`]
//! index. Per batch it:
//!
//! 1. collects the *distinct* source nodes the batch's requests need
//!    (a preference-set query needs one source per member — linearity,
//!    Eq. 5/7, lets every answer be assembled from per-source PPVs);
//! 2. serves sources resident in the LRU PPV cache without recomputation;
//! 3. answers all remaining sources in **one** cluster fan-out round
//!    ([`Cluster::query_many`]), so the round latency and per-machine
//!    scratch allocations amortize across the batch, then caches them;
//! 4. assembles each request's response from the per-source exact PPVs —
//!    weighted dense accumulation for preference sets, the threshold
//!    early-cut selection for top-k.
//!
//! Every path returns *exact* answers: the cache stores full exact PPVs
//! (never truncated), linearity recombination is the same Jeh–Widom
//! theorem the index itself uses, and the top-k early cut provably equals
//! the full sort (see [`SparseVector::top_k_early_cut`]).

use crate::cache::CacheStats;
use crate::shard::ShardSet;
use ppr_cluster::{
    Cluster, ClusterConfig, DistributedQueryable, NetworkModel, ParallelismMode,
};
use ppr_core::{Scratch, SparseVector};
use ppr_graph::NodeId;
use std::collections::{HashMap, HashSet};
use ppr_core::parallel::Stopwatch;

/// Serving knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// PPV cache capacity in bytes ([`SparseVector::wire_bytes`]
    /// accounting). Zero disables caching entirely.
    pub cache_capacity_bytes: u64,
    /// Maximum requests coalesced into one fan-out round by
    /// [`PprServer::serve`]. [`PprServer::run_batch`] trusts the caller.
    pub max_batch: usize,
    /// Network model for the modeled wire time of each round.
    pub network: NetworkModel,
    /// Reader shards (hash-partitioned PPV cache + one assembly worker
    /// per shard). Honored by
    /// [`ShardedPprServer`](crate::ShardedPprServer) and
    /// [`DynamicPprServer`](crate::DynamicPprServer); [`PprServer`]
    /// always runs one shard. The `repro serve` load generator reads
    /// `PPR_SERVE_SHARDS` into this field.
    pub shards: usize,
    /// How the cluster fan-out (and, where shards > 1, response
    /// assembly) executes. Defaults to [`ParallelismMode::from_env`], so
    /// `PPR_TEST_THREADS=1` forces the sequential fallback everywhere.
    pub parallelism: ParallelismMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            cache_capacity_bytes: 64 << 20, // 64 MiB
            max_batch: 32,
            network: NetworkModel::default(),
            shards: 1,
            parallelism: ParallelismMode::from_env(),
        }
    }
}

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Full exact PPV of a single source (the paper's basic query).
    Ppv(NodeId),
    /// Exact PPV of a weighted preference set `P` (§1; Jeh–Widom
    /// linearity). Weights are used as given — callers normalize.
    Preference(Vec<(NodeId, f64)>),
    /// The k highest-scoring nodes of the source's exact PPV — PPR's
    /// search/recommendation shape (§7's top-k PPR problem).
    TopK {
        /// Source node.
        source: NodeId,
        /// Number of results.
        k: usize,
    },
}

impl Request {
    /// Source nodes this request needs PPVs for.
    pub(crate) fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        let slice: Vec<NodeId> = match self {
            Request::Ppv(u) | Request::TopK { source: u, .. } => vec![*u],
            Request::Preference(p) => p.iter().map(|&(u, _)| u).collect(),
        };
        slice.into_iter()
    }
}

/// One response, parallel to its [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Exact PPV (for [`Request::Ppv`] and [`Request::Preference`]).
    Ppv(SparseVector),
    /// Exact top-k list, value-descending (ties by node id ascending).
    TopK(Vec<(NodeId, f64)>),
}

impl Response {
    /// The PPV payload, or `None` for a top-k response.
    pub fn as_ppv(&self) -> Option<&SparseVector> {
        match self {
            Response::Ppv(v) => Some(v),
            Response::TopK(_) => None,
        }
    }

    /// The top-k payload, or `None` for a PPV response.
    pub fn as_top_k(&self) -> Option<&[(NodeId, f64)]> {
        match self {
            Response::TopK(t) => Some(t),
            Response::Ppv(_) => None,
        }
    }
}

/// What one batch cost.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Responses, parallel to the submitted requests.
    pub responses: Vec<Response>,
    /// Distinct sources served from cache.
    pub cached_sources: usize,
    /// Distinct sources computed fresh this batch (0 ⇒ no fan-out round).
    pub fresh_sources: usize,
    /// Real wall-clock seconds spent serving the batch.
    pub seconds: f64,
    /// Modeled wire time of the batch's fan-out round (0 without one).
    pub modeled_network_seconds: f64,
    /// Bytes shipped machine → coordinator in the round (0 without one).
    pub round_bytes: u64,
}

/// Cumulative serving counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Cluster fan-out rounds executed (batches fully served from cache
    /// need none).
    pub rounds: u64,
    /// Distinct sources computed fresh.
    pub fresh_sources: u64,
    /// Distinct sources served from cache.
    pub cached_sources: u64,
    /// Real wall-clock seconds spent inside `run_batch`.
    pub busy_seconds: f64,
    /// Modeled wire seconds across all rounds.
    pub modeled_network_seconds: f64,
    /// Bytes shipped machine → coordinator across all rounds.
    pub round_bytes: u64,
}

impl ServeStats {
    /// Fraction of per-batch distinct source lookups served from cache.
    pub fn source_hit_rate(&self) -> f64 {
        let total = self.cached_sources + self.fresh_sources;
        if total == 0 {
            0.0
        } else {
            self.cached_sources as f64 / total as f64
        }
    }
}

/// A serving front-end over one distributed PPR index.
///
/// ```
/// use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
/// use ppr_core::PprConfig;
/// use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
/// use ppr_serve::{PprServer, Request, ServeConfig};
///
/// let graph = hierarchical_sbm(&HsbmConfig { nodes: 200, ..Default::default() }, 9);
/// let cfg = PprConfig { epsilon: 1e-7, ..Default::default() };
/// let index = HgpaIndex::build(&graph, &cfg, &HgpaBuildOptions::default());
/// let mut server = PprServer::new(&index, ServeConfig::default());
///
/// let cold = server.query(5); // computed via one fan-out round
/// let warm = server.query(5); // served from cache, bit-identical
/// assert_eq!(cold, warm);
/// assert_eq!(server.top_k(5, 3), cold.top_k(3)); // also a cache hit
/// assert_eq!(server.stats().cached_sources, 2);
/// assert_eq!(server.stats().fresh_sources, 1);
/// ```
pub struct PprServer<'i, I: DistributedQueryable> {
    index: &'i I,
    cluster: Cluster,
    cache: ShardSet,
    config: ServeConfig,
    stats: ServeStats,
}

impl<'i, I: DistributedQueryable> PprServer<'i, I> {
    /// Serve queries from `index` under `config`. `config.shards` is
    /// ignored: this front-end always runs one cache shard and assembles
    /// responses in the calling thread (the cluster fan-out underneath
    /// still honors `config.parallelism`); use
    /// [`ShardedPprServer`](crate::ShardedPprServer) for reader shards.
    pub fn new(index: &'i I, config: ServeConfig) -> Self {
        Self {
            index,
            cluster: Cluster::new(ClusterConfig {
                machines: index.machines(),
                network: config.network,
                parallelism: config.parallelism,
            }),
            cache: ShardSet::new(1, config.cache_capacity_bytes),
            config,
            stats: ServeStats::default(),
        }
    }

    /// Answer a request stream, coalescing up to `max_batch` requests per
    /// fan-out round. Responses come back in request order.
    pub fn serve(&mut self, requests: &[Request]) -> Vec<Response> {
        let chunk = self.config.max_batch.max(1);
        let mut out = Vec::with_capacity(requests.len());
        for batch in requests.chunks(chunk) {
            out.extend(self.run_batch(batch).responses);
        }
        out
    }

    /// Execute one batch in (at most) one cluster fan-out round.
    pub fn run_batch(&mut self, requests: &[Request]) -> BatchOutcome {
        execute_batch(
            self.index,
            &self.cluster,
            &mut self.cache,
            &self.config,
            &mut self.stats,
            requests,
            ParallelismMode::Sequential, // single shard → in-thread assembly
        )
    }

    /// Single-request convenience: exact PPV of `u`.
    pub fn query(&mut self, u: NodeId) -> SparseVector {
        match self.run_batch(&[Request::Ppv(u)]).responses.pop() {
            Some(Response::Ppv(v)) => v,
            // audit:allow(serve-panic): execute_batch maps each request to its
            // same-variant response in order
            _ => unreachable!("Ppv request yields Ppv response"),
        }
    }

    /// Single-request convenience: exact preference-set PPV.
    pub fn query_preference(&mut self, preference: &[(NodeId, f64)]) -> SparseVector {
        let req = Request::Preference(preference.to_vec());
        match self.run_batch(&[req]).responses.pop() {
            Some(Response::Ppv(v)) => v,
            // audit:allow(serve-panic): execute_batch maps each request to its
            // same-variant response in order
            _ => unreachable!("Preference request yields Ppv response"),
        }
    }

    /// Single-request convenience: exact top-k of `u`'s PPV.
    pub fn top_k(&mut self, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let req = Request::TopK { source: u, k };
        match self.run_batch(&[req]).responses.pop() {
            Some(Response::TopK(t)) => t,
            // audit:allow(serve-panic): execute_batch maps each request to its
            // same-variant response in order
            _ => unreachable!("TopK request yields TopK response"),
        }
    }

    /// Cumulative serving counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Cumulative cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Bytes currently resident in the PPV cache.
    pub fn cache_bytes(&self) -> u64 {
        self.cache.bytes()
    }

    /// Resident cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drop every cached PPV (call after mutating the underlying index,
    /// e.g. via `ppr-core`'s incremental updater).
    ///
    /// Invalidation empties the cache *contents only*: cumulative
    /// [`CacheStats`] (hits, misses, insertions, …) keep accumulating
    /// across invalidations, with the dropped entries counted under
    /// [`CacheStats::invalidated`]. For update-aware serving that evicts
    /// only the sources an update can actually affect, see
    /// [`DynamicPprServer`](crate::DynamicPprServer).
    pub fn invalidate_cache(&mut self) {
        self.cache.clear();
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }
}

/// The shared batch engine: one batch, at most one cluster fan-out round.
/// [`PprServer`] (borrowed static index, one shard),
/// [`ShardedPprServer`](crate::ShardedPprServer) (N reader shards), and
/// [`DynamicPprServer`](crate::DynamicPprServer) (owned mutable index)
/// all delegate here, so the caching/batching/assembly semantics — and
/// the exactness tests that pin them — cover every front-end. `assembly`
/// selects where responses are assembled: in the calling thread, or
/// chunked over that many scoped workers (one per reader shard), each
/// with its own [`Scratch`] arena — bit-identical either way, since
/// assembly is per-request pure given the per-source PPVs.
pub(crate) fn execute_batch<I: DistributedQueryable>(
    index: &I,
    cluster: &Cluster,
    cache: &mut ShardSet,
    config: &ServeConfig,
    stats: &mut ServeStats,
    requests: &[Request],
    assembly: ParallelismMode,
) -> BatchOutcome {
    let t0 = Stopwatch::start();

    // Distinct sources, first-appearance order. Probe the cache once
    // per distinct source so recency and hit accounting are per batch,
    // not per duplicate.
    let mut missing: Vec<NodeId> = Vec::new();
    let mut probed: HashSet<NodeId> = HashSet::new();
    for req in requests {
        for u in req.sources() {
            if probed.insert(u) && cache.get(u).is_none() {
                missing.push(u);
            }
        }
    }
    let cached_sources = probed.len() - missing.len();

    // One fan-out round answers every missing source (Eq. 5/7: each
    // machine ships one reply vector per source; sums are exact PPVs).
    // Fresh PPVs are admitted to the cache only *after* assembly —
    // inserting first could evict a resident entry that another
    // request in this very batch probed successfully.
    let mut fresh: HashMap<NodeId, SparseVector> = HashMap::new();
    let mut modeled_network_seconds = 0.0;
    let mut round_bytes = 0;
    if !missing.is_empty() {
        let round = cluster.query_many(index, &missing);
        modeled_network_seconds = round.modeled_network_seconds;
        round_bytes = round.total_bytes();
        stats.rounds += 1;
        for (u, ppv) in missing.iter().copied().zip(round.results) {
            fresh.insert(u, ppv);
        }
    }

    let responses = assemble(index, &fresh, cache, requests, assembly);

    // Admit the round's PPVs in batch order (deterministic recency).
    if config.cache_capacity_bytes > 0 {
        for &u in &missing {
            if let Some(ppv) = fresh.remove(&u) {
                cache.insert(u, ppv);
            }
        }
    }

    let seconds = t0.elapsed_seconds();
    stats.requests += requests.len() as u64;
    stats.batches += 1;
    stats.fresh_sources += missing.len() as u64;
    stats.cached_sources += cached_sources as u64;
    stats.busy_seconds += seconds;
    stats.modeled_network_seconds += modeled_network_seconds;
    stats.round_bytes += round_bytes;

    BatchOutcome {
        responses,
        cached_sources,
        fresh_sources: missing.len(),
        seconds,
        modeled_network_seconds,
        round_bytes,
    }
}

/// Assemble per-request responses from the per-source exact PPVs, either
/// in the calling thread or chunked over scoped workers.
///
/// Lookups borrow (only `Ppv` responses clone, to hand the vector out);
/// preference requests accumulate through the worker's own [`Scratch`]
/// arena, reused across the batch. Assembly never mutates the cache —
/// during this phase the shards are shared read-only across workers, and
/// each response depends only on its own request plus the resolved PPVs,
/// so chunking cannot change any response's bits.
pub(crate) fn assemble<I: DistributedQueryable>(
    index: &I,
    fresh: &HashMap<NodeId, SparseVector>,
    cache: &ShardSet,
    requests: &[Request],
    assembly: ParallelismMode,
) -> Vec<Response> {
    fn resolve<'a>(
        fresh: &'a HashMap<NodeId, SparseVector>,
        cache: &'a ShardSet,
        u: NodeId,
    ) -> &'a SparseVector {
        fresh
            .get(&u)
            .or_else(|| cache.peek(u))
            // audit:allow(serve-panic): the probe phase inserted every batch
            // source into `fresh` or the cache before assembly runs
            .expect("source resolved earlier in the batch")
    }
    fn assemble_one(
        fresh: &HashMap<NodeId, SparseVector>,
        cache: &ShardSet,
        n: usize,
        scratch: &mut Scratch,
        req: &Request,
    ) -> Response {
        match req {
            Request::Ppv(u) => Response::Ppv(resolve(fresh, cache, *u).clone()),
            Request::TopK { source, k } => {
                Response::TopK(resolve(fresh, cache, *source).top_k_early_cut(*k))
            }
            Request::Preference(pref) => {
                scratch.ensure(n);
                for &(u, w) in pref {
                    scratch.scatter(resolve(fresh, cache, u), w);
                }
                Response::Ppv(scratch.harvest())
            }
        }
    }

    let n = index.node_count();
    let workers = assembly.workers().min(requests.len().max(1));
    if workers <= 1 {
        let mut scratch = Scratch::new();
        return requests
            .iter()
            .map(|req| assemble_one(fresh, cache, n, &mut scratch, req))
            .collect();
    }

    // Contiguous chunks keep responses in request order after concat.
    let chunk = requests.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .chunks(chunk)
            .map(|reqs| {
                scope.spawn(move || {
                    let mut scratch = Scratch::new();
                    reqs.iter()
                        .map(|req| assemble_one(fresh, cache, n, &mut scratch, req))
                        .collect::<Vec<Response>>()
                })
            })
            .collect();
        handles
            .into_iter()
            // audit:allow(serve-panic): join only fails if the worker already
            // panicked; propagating beats hiding the poisoned batch
            .flat_map(|h| h.join().expect("assembly worker thread"))
            .collect()
    })
}
