#![deny(missing_docs)]

//! Query-serving subsystem for the exact-PPR indexes.
//!
//! The paper's GPA (§3) and HGPA (§4) indexes exist to *serve* exact PPV
//! queries at scale, but on their own they answer one query per cluster
//! fan-out round. This crate adds the serving layer the ROADMAP's "heavy
//! traffic" north star asks for, without giving up exactness anywhere:
//!
//! * **Request batching** ([`PprServer::run_batch`]) — the distinct
//!   source nodes of a whole batch (single-source, preference-set, and
//!   top-k requests alike) are answered in *one* fan-out round via
//!   [`ppr_cluster::Cluster::query_many`], amortizing round latency and
//!   per-machine scratch allocations; per-request answers are then
//!   assembled by Jeh–Widom linearity (Eq. 5/7), which is exact.
//! * **A byte-accounted LRU PPV cache** ([`cache::PpvCache`]) — full
//!   exact PPVs keyed by source node, sized in the same wire-byte units
//!   the cluster's communication accounting uses. Repeated and
//!   *overlapping* queries (preference sets sharing members, top-k over a
//!   hot source) skip recomputation entirely; cached answers are
//!   bit-identical to fresh ones because whole untruncated vectors are
//!   stored.
//! * **Exact top-k** ([`Request::TopK`]) — selection by a threshold
//!   early-cut ([`ppr_core::SparseVector::top_k_early_cut`]) that returns
//!   exactly the full-sort top-k, proven in its docs and pinned by
//!   proptest in `tests/serving.rs`.
//!
//! Serving is **really parallel** when asked: [`ShardedPprServer`] runs
//! N reader shards over a hash-partitioned PPV cache, assembling each
//! batch's responses on one scoped worker per shard while the cluster
//! fan-out underneath computes machine replies concurrently
//! ([`ppr_cluster::ParallelismMode`]); answers stay bit-identical to the
//! sequential [`PprServer`] (pinned in `tests/concurrent_serving.rs`).
//! `PPR_TEST_THREADS=1` forces the sequential fallback everywhere, and
//! `PPR_SERVE_SHARDS` sizes the shard fleet in `repro serve`.
//!
//! Serving can **cold-start from disk**: [`ColdStart`] loads a persisted
//! index artifact (`ppr_core::persist`, either kind — the format is
//! self-describing) and owns it, so a serving process skips the offline
//! build entirely and still answers bit-identically to one serving the
//! freshly built index (pinned in `tests/persist_roundtrip.rs`).
//!
//! Serving does not stop when the graph changes. [`DynamicPprServer`]
//! owns a mutable HGPA index plus the current graph and interleaves query
//! batches with [`ppr_graph::GraphDelta`] batches — edge updates *and*
//! node churn (adds/removes): updates run through `ppr-core`'s exact
//! incremental maintenance (a persistent [`MaintenanceEngine`] that
//! narrows recomputation to reachability-stale vectors), invalid batches
//! come back as [`UpdateError`] values instead of panics, and instead of
//! flushing the PPV cache it evicts **only** the sources that can reach a
//! touched node (reverse reachability over the new graph — the
//! conservative staleness predicate), so hit rates survive updates. The
//! [`openloop`] module adds a Poisson-arrival virtual-clock driver whose
//! report separates queueing delay (sojourn) from service time.
//!
//! The `repro serve` mode in `ppr-bench` drives a Zipf-skewed query
//! stream through this server and reports throughput, p50/p99 latency,
//! and cache hit rate — plus an open-loop mixed read/write phase with
//! queueing-delay percentiles; `docs/ARCHITECTURE.md` has the data-flow
//! picture.

pub mod boot;
pub mod cache;
pub mod degrade;
pub mod dynamic;
pub mod openloop;
pub mod replica;
pub mod server;
pub mod shard;
pub mod worker;

pub use boot::ColdStart;
pub use cache::{CacheStats, PpvCache};
pub use degrade::{Answer, Degrader, DEGRADED_WALKS};
pub use dynamic::{
    BackfillOutcome, DynamicPprServer, DynamicStats, ResilienceStats, ResilientBatchOutcome,
    UpdateOutcome, BACKLOG_CAP,
};
pub use ppr_core::incremental::{MaintenanceEngine, UpdateError, UpdateStats};
pub use openloop::{run_open_loop, OpenLoopConfig, OpenLoopReport, ServeEvent, ServiceModel};
pub use ppr_workload::ArrivalPattern;
pub use replica::{plan_delta, DeltaPlan, IndexReplica};
pub use server::{BatchOutcome, PprServer, Request, Response, ServeConfig, ServeStats};
pub use shard::ShardedPprServer;
pub use worker::{Chaos, WorkerConfig};
