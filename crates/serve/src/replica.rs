//! Shared epoch-barrier semantics for every index replica.
//!
//! Two kinds of process maintain a live HGPA index: the coordinator's
//! [`DynamicPprServer`](crate::DynamicPprServer) and the socket-transport
//! worker processes ([`crate::worker`]), which each hold a full replica
//! cold-started from the persisted snapshot. Bit-identity across the
//! cluster requires every replica to make the **same decision** about
//! every [`GraphDelta`] — in particular whether an edge-only batch nets
//! out to nothing (no rebuild, no epoch barrier) or rebuilds the graph.
//! [`plan_delta`] is that single decision point; both the server and the
//! worker replica route through it, so a divergence would have to be a
//! bug in one shared function rather than two drifting copies.

use ppr_core::hgpa::HgpaIndex;
use ppr_core::incremental::{MaintenanceEngine, UpdateError, UpdateStats};
use ppr_graph::{delta, AppliedGraphDelta, CsrGraph, DeltaError, GraphDelta};

/// What one [`GraphDelta`] means for a replica's graph.
#[derive(Clone, Debug)]
pub enum DeltaPlan {
    /// The batch nets out to nothing: the graph stands, no epoch barrier
    /// fires, and only the bookkeeping counts survive.
    Noop {
        /// Updates dropped as no-ops against the current edge set.
        skipped: usize,
        /// Effective updates eliminated by within-batch cancellation.
        cancelled: usize,
    },
    /// An effective barrier: the rebuilt graph plus everything index
    /// maintenance needs.
    Apply(AppliedGraphDelta),
}

/// Decide — identically on every replica — what `d` does to `graph`.
///
/// Edge-only batches go through net-effect coalescing and may be a
/// [`DeltaPlan::Noop`]; batches with node churn always rebuild (the
/// churn itself is the net effect).
///
/// # Errors
/// Structurally invalid batches (double removes, edges on removed or
/// out-of-range nodes) are rejected before any state moves.
pub fn plan_delta(graph: &CsrGraph, d: &GraphDelta) -> Result<DeltaPlan, DeltaError> {
    if d.nodes.is_empty() {
        let c = delta::coalesce_updates(graph, &d.edges);
        let Some(rebuilt) = c.graph else {
            return Ok(DeltaPlan::Noop {
                skipped: c.skipped,
                cancelled: c.cancelled,
            });
        };
        return Ok(DeltaPlan::Apply(AppliedGraphDelta {
            graph: rebuilt,
            added: Vec::new(),
            removed: Vec::new(),
            dropped_edges: Vec::new(),
            net: c.net,
            skipped: c.skipped,
            cancelled: c.cancelled,
        }));
    }
    // A batch with node churn always has a net effect (the churn
    // itself), so the barrier always fires on this path.
    Ok(DeltaPlan::Apply(delta::apply_delta(graph, d)?))
}

/// A worker process's live copy of the served index: the graph, the
/// HGPA index (cold-started from the persisted snapshot), and the
/// persistent maintenance engine that keeps it exact across epochs.
pub struct IndexReplica {
    graph: CsrGraph,
    index: HgpaIndex,
    engine: MaintenanceEngine,
    epoch: u64,
}

impl IndexReplica {
    /// A replica serving `index` on `graph` at `epoch` (both exactly as
    /// shipped in the coordinator's `Welcome`).
    pub fn new(graph: CsrGraph, index: HgpaIndex, epoch: u64) -> Self {
        Self {
            graph,
            index,
            engine: MaintenanceEngine::new(),
            epoch,
        }
    }

    /// The replica's current graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The replica's current index.
    pub fn index(&self) -> &HgpaIndex {
        &self.index
    }

    /// The epoch this replica last acked.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Apply one epoch delta exactly as the coordinator did — same
    /// [`plan_delta`] decision, same deterministic maintenance engine —
    /// and advance to `epoch`.
    ///
    /// # Errors
    /// Anything the coordinator's own apply would have rejected. The
    /// coordinator only publishes deltas it applied successfully, so an
    /// `Err` here means real divergence: the caller must exit and let
    /// the supervisor cold-start a fresh replica from the snapshot.
    pub fn apply(&mut self, d: &GraphDelta, epoch: u64) -> Result<UpdateStats, UpdateError> {
        let stats = match plan_delta(&self.graph, d)? {
            DeltaPlan::Noop { .. } => UpdateStats::default(),
            DeltaPlan::Apply(applied) => {
                let stats = self.engine.apply(&mut self.index, &applied)?;
                self.graph = applied.graph;
                stats
            }
        };
        self.epoch = epoch;
        Ok(stats)
    }
}
