//! Open-loop load: Poisson arrivals on a deterministic virtual clock.
//!
//! The closed-loop harness (`repro serve`'s original mode) submits the
//! next batch the moment the previous one finishes, so it measures
//! *service time* only — a server keeping up at 99% utilization and one
//! melting down look identical. An **open-loop** driver instead lets
//! events arrive on their own schedule (exponential inter-arrival times,
//! i.e. Poisson arrivals — the standard heavy-traffic model) whether or
//! not the server is ready, which is what exposes **queueing delay**: the
//! report separates each request's *sojourn time* (arrival → completion)
//! from the *service time* of its batch, and their gap is time spent
//! waiting in queue.
//!
//! Everything runs on a virtual clock. Arrivals are drawn from a seeded
//! RNG via [`ppr_workload::arrival_times`] — Poisson by default, or the
//! bursty/diurnal [`ArrivalPattern`]s that model traffic spikes; service
//! times come from a [`ServiceModel`] — either the measured wall-clock
//! cost of each batch (realistic, but run-to-run noisy) or a
//! deterministic model priced from the batch's *deterministic* outputs
//! (fresh sources, modeled wire time, recomputed vectors), which makes
//! the whole simulation — batch composition, queue depths, every
//! percentile — reproducible bit for bit from the seed. The FIFO queue
//! coalesces up to `max_batch` waiting queries into one fan-out round;
//! an update batch is a barrier served alone, exactly like the real
//! server's write path.
//!
//! ## Overload and failure resilience
//!
//! Three optional knobs (all off by default, in which case the run is
//! bit-identical to the original driver) turn the driver into the
//! workspace's overload harness:
//!
//! * **Admission control** (`queue_cap`, env `PPR_SERVE_QUEUE_CAP`): a
//!   query arriving at a full queue is shed *at arrival* — an explicit
//!   [`Answer::Shed`](crate::Answer)-class rejection, never a silent drop
//!   or an unbounded queue. Write barriers are never shed.
//! * **SLO-aware degradation** (`slo_ms`, env `PPR_SERVE_SLO_MS`): a
//!   batch whose head-of-line wait already exceeds the SLO is served by
//!   [`DynamicPprServer::run_batch_degraded`] — bounded-precision Monte
//!   Carlo answers (cache-resident sources stay exact) priced far below
//!   an exact fan-out, so the queue drains instead of collapsing.
//! * **Idle backfill** (`backfill_per_idle`): gaps in the arrival process
//!   are spent recovering parked sources to the exact cache
//!   ([`DynamicPprServer::backfill`]), restoring bit-identical exact
//!   serving after faults clear.
//!
//! Query batches run through the resilient fan-out
//! ([`DynamicPprServer::run_batch_resilient`]), so a fault plan installed
//! on the server degrades answers (with bounds) instead of dropping them,
//! and the modeled fault time (timeouts, retries, backoff) is billed to
//! the virtual clock — which is exactly how injected faults surface in
//! the reported p99.

use crate::dynamic::{BackfillOutcome, DynamicPprServer, ResilientBatchOutcome, UpdateOutcome};
use crate::server::Request;
use ppr_core::incremental::UpdateError;
use ppr_graph::{EdgeUpdate, GraphDelta};
use ppr_workload::{arrival_times, ArrivalPattern};
use std::collections::VecDeque;

/// One event of the open-loop stream.
#[derive(Clone, Debug)]
pub enum ServeEvent {
    /// A client query.
    Query(Request),
    /// A batch of edge updates (served alone, as a write barrier).
    Update(Vec<EdgeUpdate>),
    /// A node-churn batch (edge updates plus node adds/removes), served
    /// alone as a write barrier exactly like [`ServeEvent::Update`].
    Churn(GraphDelta),
}

/// How a batch's time on the virtual clock is priced.
#[derive(Clone, Copy, Debug)]
pub enum ServiceModel {
    /// Real measured seconds (plus modeled wire time). Realistic, but the
    /// simulation is only as reproducible as the host's timers.
    Measured,
    /// Deterministic cost model: every term is priced from deterministic
    /// batch outputs, so the full simulation replays identically for a
    /// given seed. The defaults (see [`ServiceModel::modeled_default`])
    /// are in the right order of magnitude for the quick profile; the
    /// *shape* of the queueing report, not the absolute numbers, is the
    /// point.
    Modeled {
        /// Per-request assembly cost (applies to every request).
        seconds_per_request: f64,
        /// Per fresh source answered in the batch's fan-out round.
        seconds_per_fresh_source: f64,
        /// Per vector recomputed by the incremental updater.
        seconds_per_recomputed_vector: f64,
        /// Per source answered approximately by the Monte Carlo degrader
        /// (no fan-out round): the whole point of degradation is that
        /// this is much cheaper than `seconds_per_fresh_source`.
        seconds_per_degraded_source: f64,
    },
}

impl ServiceModel {
    /// The deterministic model with default constants.
    pub fn modeled_default() -> Self {
        ServiceModel::Modeled {
            seconds_per_request: 20e-6,
            seconds_per_fresh_source: 300e-6,
            seconds_per_recomputed_vector: 150e-6,
            seconds_per_degraded_source: 60e-6,
        }
    }

    /// Virtual service seconds of one query batch (exact or degraded).
    /// The batch's modeled fault time — timeouts, retries, backoff — is
    /// billed here, which is how injected faults reach the percentiles;
    /// it is 0 with an empty fault plan, keeping the fault-free run
    /// bit-identical to the original pricing.
    fn resilient_seconds(&self, out: &ResilientBatchOutcome) -> f64 {
        match *self {
            ServiceModel::Measured => {
                out.seconds + out.modeled_network_seconds + out.modeled_fault_seconds
            }
            ServiceModel::Modeled {
                seconds_per_request,
                seconds_per_fresh_source,
                seconds_per_degraded_source,
                ..
            } => {
                out.modeled_network_seconds
                    + out.modeled_fault_seconds
                    + out.answers.len() as f64 * seconds_per_request
                    + out.fresh_sources as f64 * seconds_per_fresh_source
                    + out.degraded_sources as f64 * seconds_per_degraded_source
            }
        }
    }

    /// Virtual service seconds of one update batch.
    fn update_seconds(&self, out: &UpdateOutcome) -> f64 {
        match *self {
            ServiceModel::Measured => out.seconds,
            ServiceModel::Modeled {
                seconds_per_recomputed_vector,
                ..
            } => out.stats.vectors_recomputed as f64 * seconds_per_recomputed_vector,
        }
    }

    /// Virtual service seconds of one idle-gap backfill round. Attempted
    /// sources are billed like fresh fan-out work whether or not the
    /// round completed (the machines that answered did the work), plus
    /// the round's wire and fault time — so a backfill attempt under an
    /// active outage still advances the clock.
    fn backfill_seconds(&self, out: &BackfillOutcome) -> f64 {
        match *self {
            ServiceModel::Measured => {
                out.seconds + out.modeled_network_seconds + out.modeled_fault_seconds
            }
            ServiceModel::Modeled {
                seconds_per_fresh_source,
                ..
            } => {
                out.modeled_network_seconds
                    + out.modeled_fault_seconds
                    + out.attempted as f64 * seconds_per_fresh_source
            }
        }
    }
}

/// Open-loop driver knobs.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Mean event arrival rate (events per virtual second); must be
    /// positive and finite.
    pub arrival_rate: f64,
    /// Seed of the arrival process.
    pub seed: u64,
    /// Service-time pricing.
    pub service: ServiceModel,
    /// Shape of the arrival process. [`ArrivalPattern::Poisson`] (the
    /// default) reproduces the original driver's arrivals bit for bit;
    /// the bursty/diurnal patterns keep the same long-run rate while
    /// concentrating arrivals into spikes.
    pub pattern: ArrivalPattern,
    /// Admission-control queue bound: a query arriving while the queue
    /// holds this many events is shed immediately. `None` (default)
    /// disables shedding. Env knob: `PPR_SERVE_QUEUE_CAP`.
    pub queue_cap: Option<usize>,
    /// Latency SLO in milliseconds: a query batch whose head-of-line
    /// wait already exceeds it is answered approximately (with explicit
    /// bounds) instead of running an exact fan-out. `None` (default)
    /// disables degradation. Env knob: `PPR_SERVE_SLO_MS`.
    pub slo_ms: Option<f64>,
    /// How many parked sources to backfill exactly per idle gap in the
    /// arrival process (0 disables idle backfill).
    pub backfill_per_idle: usize,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            arrival_rate: 500.0,
            seed: 0x0_BEA7,
            service: ServiceModel::modeled_default(),
            pattern: ArrivalPattern::Poisson,
            queue_cap: None,
            slo_ms: None,
            backfill_per_idle: 2,
        }
    }
}

/// The queueing-delay report of one open-loop run.
///
/// Internal-consistency invariants (pinned in `tests/dynamic_serving.rs`):
/// every query's sojourn ≥ its service time (so the p50/p99 sojourn
/// dominate the p50/p99 service pointwise), p99 ≥ p50, mean wait ≥ 0, and
/// `queries + update_batches + rejected_batches` equals the driven event
/// count.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenLoopReport {
    /// Configured mean arrival rate (events per virtual second).
    pub offered_rate: f64,
    /// Queries completed.
    pub queries: usize,
    /// Update/churn batches applied.
    pub update_batches: usize,
    /// Update/churn batches rejected as invalid (dead-node references,
    /// structurally broken deltas). A rejection bills no virtual service
    /// time: the server state never moved.
    pub rejected_batches: usize,
    /// Query batches (fan-out rounds, including all-cached ones) executed.
    pub batches: usize,
    /// Virtual seconds from first arrival to last completion.
    pub makespan_seconds: f64,
    /// Queries per virtual second actually completed.
    pub achieved_qps: f64,
    /// Median sojourn time (arrival → completion), milliseconds.
    pub p50_sojourn_ms: f64,
    /// 99th-percentile sojourn time, milliseconds.
    pub p99_sojourn_ms: f64,
    /// Worst sojourn time, milliseconds.
    pub max_sojourn_ms: f64,
    /// Median service time of the query's batch, milliseconds.
    pub p50_service_ms: f64,
    /// 99th-percentile service time, milliseconds.
    pub p99_service_ms: f64,
    /// Mean queueing delay (sojourn − service), milliseconds.
    pub mean_wait_ms: f64,
    /// Largest number of admitted-but-unserved events observed — the
    /// queue-depth high-water mark.
    pub max_queue_depth: usize,
    /// Fraction of distinct per-batch source lookups served from cache.
    pub hit_rate: f64,
    /// Cache entries evicted by update invalidation during the run.
    pub entries_evicted: u64,
    /// Cache entries retained across updates during the run.
    pub entries_retained: u64,
    /// Queries shed at admission (queue at `queue_cap`). Shed queries are
    /// excluded from `queries` and from the sojourn percentiles; every
    /// driven event still resolves:
    /// `queries + shed + update_batches + rejected_batches == events`.
    pub shed: usize,
    /// Queries answered approximately — with explicit precision bounds —
    /// after an SLO breach or an incomplete fan-out round.
    pub degraded_answers: usize,
    /// Sources recovered exactly to the PPV cache during idle gaps.
    pub backfilled_sources: usize,
    /// Median sojourn of exactly-answered queries, milliseconds.
    pub p50_exact_ms: f64,
    /// 99th-percentile sojourn of exactly-answered queries, milliseconds.
    pub p99_exact_ms: f64,
    /// Median sojourn of degraded (approximate) answers, milliseconds.
    pub p50_approx_ms: f64,
    /// 99th-percentile sojourn of degraded answers, milliseconds.
    pub p99_approx_ms: f64,
    /// Median time-to-rejection of shed queries, milliseconds (0 under
    /// fail-fast admission: the client learns at arrival).
    pub p50_shed_ms: f64,
    /// 99th-percentile time-to-rejection of shed queries, milliseconds.
    pub p99_shed_ms: f64,
}

/// Value at quantile `q ∈ [0, 1]` of an ascending-sorted sample (nearest
/// rank); 0 on an empty sample. Callers sort once and index all quantiles
/// (and the max, its last element) from the same array.
/// Settle one write barrier's result: an applied batch is billed its
/// virtual service seconds, a rejected one bills nothing (the server
/// state never moved — see [`DynamicPprServer::apply_delta`]).
fn settle_write(
    res: Result<UpdateOutcome, UpdateError>,
    service: &ServiceModel,
    update_batches: &mut usize,
    rejected_batches: &mut usize,
) -> f64 {
    match res {
        Ok(out) => {
            *update_batches += 1;
            service.update_seconds(&out)
        }
        Err(_) => {
            *rejected_batches += 1;
            0.0
        }
    }
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Drive `events` through `server` under open-loop arrivals.
///
/// Events are served strictly in arrival (FIFO) order: consecutive
/// already-arrived queries coalesce into batches of at most the server's
/// `max_batch`, and an update event is processed alone. With
/// [`ServiceModel::Modeled`] the run — including batch composition and
/// every reported number — is a pure function of `(server state, events,
/// config)`. With the resilience knobs at their defaults and an empty
/// fault plan on the server, the run is bit-identical to the original
/// (pre-resilience) driver.
pub fn run_open_loop(
    server: &mut DynamicPprServer,
    events: &[ServeEvent],
    cfg: &OpenLoopConfig,
) -> OpenLoopReport {
    assert!(
        cfg.arrival_rate.is_finite() && cfg.arrival_rate > 0.0,
        "arrival rate must be positive and finite, got {}",
        cfg.arrival_rate
    );
    let stats_before = *server.stats();
    let dyn_before = *server.dynamic_stats();
    let max_batch = server.config().max_batch.max(1);

    let arrivals = arrival_times(cfg.pattern, cfg.arrival_rate, cfg.seed, events.len());

    let mut clock = 0.0f64;
    let mut next = 0usize; // next arrival not yet admitted or shed
    // The driver's FIFO queue of admitted-but-unserved event indices.
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut sojourns: Vec<f64> = Vec::new();
    let mut services: Vec<f64> = Vec::new();
    let mut exact_sojourns: Vec<f64> = Vec::new();
    let mut approx_sojourns: Vec<f64> = Vec::new();
    let mut shed_sojourns: Vec<f64> = Vec::new();
    let mut total_wait = 0.0f64;
    let mut update_batches = 0usize;
    let mut rejected_batches = 0usize;
    let mut batches = 0usize;
    let mut max_queue_depth = 0usize;
    let mut backfilled_sources = 0usize;
    let mut requests: Vec<Request> = Vec::new();
    let mut members: Vec<usize> = Vec::new();

    loop {
        // Admit every arrival at or before `clock`; under admission
        // control a query finding the queue at capacity is shed at its
        // arrival instant (between service completions the queue only
        // grows, so batch-admitting here is exactly per-arrival
        // admission). Write barriers are never shed.
        while next < events.len() && arrivals[next] <= clock {
            let full = cfg.queue_cap.is_some_and(|cap| queue.len() >= cap);
            if full && matches!(events[next], ServeEvent::Query(_)) {
                shed_sojourns.push(0.0); // fail-fast: rejected at arrival
            } else {
                // audit:allow(unbounded-queue): growth is bounded by the
                // `queue_cap` check above when set; `queue_cap: None` is
                // the caller's explicit opt-in to unbounded queueing
                // (measuring collapse is the point of an open-loop
                // driver), and residency never exceeds `events.len()`.
                queue.push_back(next);
            }
            next += 1;
        }

        if queue.is_empty() {
            if next >= events.len() {
                break;
            }
            // Idle gap: recover parked sources exactly, billing the
            // backfill round to the clock; otherwise sleep to the next
            // arrival.
            if cfg.backfill_per_idle > 0 && server.backlog_len() > 0 {
                let b = server.backfill(cfg.backfill_per_idle);
                backfilled_sources += b.recovered;
                clock += cfg.service.backfill_seconds(&b);
            } else {
                clock = arrivals[next];
            }
            continue;
        }
        max_queue_depth = max_queue_depth.max(queue.len());

        let head = queue[0];
        match &events[head] {
            ServeEvent::Update(batch) => {
                queue.pop_front();
                clock += settle_write(
                    server.apply_updates(batch),
                    &cfg.service,
                    &mut update_batches,
                    &mut rejected_batches,
                );
            }
            ServeEvent::Churn(delta) => {
                queue.pop_front();
                clock += settle_write(
                    server.apply_delta(delta),
                    &cfg.service,
                    &mut update_batches,
                    &mut rejected_batches,
                );
            }
            ServeEvent::Query(_) => {
                // Is the head's wait already past the SLO when service
                // starts? Then the whole batch degrades: bounded-precision
                // answers now beat exact answers far too late.
                let degrade = cfg
                    .slo_ms
                    .is_some_and(|slo| (clock - arrivals[head]) * 1e3 > slo);
                // Coalesce the run of waiting queries at the queue head.
                requests.clear();
                members.clear();
                while members.len() < max_batch {
                    match queue.front() {
                        Some(&j) => match &events[j] {
                            ServeEvent::Query(req) => {
                                requests.push(req.clone());
                                members.push(j);
                                queue.pop_front();
                            }
                            // Write barriers end the batch.
                            ServeEvent::Update(_) | ServeEvent::Churn(_) => break,
                        },
                        None => break,
                    }
                }
                let out = if degrade {
                    server.run_batch_degraded(&requests)
                } else {
                    server.run_batch_resilient(&requests)
                };
                batches += 1;
                let service = cfg.service.resilient_seconds(&out);
                let completion = clock + service;
                for (&j, answer) in members.iter().zip(&out.answers) {
                    let sojourn = completion - arrivals[j];
                    sojourns.push(sojourn);
                    services.push(service);
                    total_wait += clock - arrivals[j];
                    if answer.is_approximate() {
                        approx_sojourns.push(sojourn);
                    } else {
                        exact_sojourns.push(sojourn);
                    }
                }
                clock = completion;
            }
        }
    }

    let stats = *server.stats();
    let dyn_stats = *server.dynamic_stats();
    let cached = stats.cached_sources - stats_before.cached_sources;
    let fresh = stats.fresh_sources - stats_before.fresh_sources;
    let lookups = cached + fresh;
    let queries = sojourns.len();
    sojourns.sort_unstable_by(f64::total_cmp);
    services.sort_unstable_by(f64::total_cmp);
    exact_sojourns.sort_unstable_by(f64::total_cmp);
    approx_sojourns.sort_unstable_by(f64::total_cmp);
    shed_sojourns.sort_unstable_by(f64::total_cmp);
    OpenLoopReport {
        offered_rate: cfg.arrival_rate,
        queries,
        update_batches,
        rejected_batches,
        batches,
        makespan_seconds: clock,
        achieved_qps: queries as f64 / clock.max(1e-12),
        p50_sojourn_ms: percentile_sorted(&sojourns, 0.50) * 1e3,
        p99_sojourn_ms: percentile_sorted(&sojourns, 0.99) * 1e3,
        max_sojourn_ms: sojourns.last().copied().unwrap_or(0.0) * 1e3,
        p50_service_ms: percentile_sorted(&services, 0.50) * 1e3,
        p99_service_ms: percentile_sorted(&services, 0.99) * 1e3,
        mean_wait_ms: total_wait / queries.max(1) as f64 * 1e3,
        max_queue_depth,
        hit_rate: if lookups == 0 {
            0.0
        } else {
            cached as f64 / lookups as f64
        },
        entries_evicted: dyn_stats.entries_evicted - dyn_before.entries_evicted,
        entries_retained: dyn_stats.entries_retained - dyn_before.entries_retained,
        shed: shed_sojourns.len(),
        degraded_answers: approx_sojourns.len(),
        backfilled_sources,
        p50_exact_ms: percentile_sorted(&exact_sojourns, 0.50) * 1e3,
        p99_exact_ms: percentile_sorted(&exact_sojourns, 0.99) * 1e3,
        p50_approx_ms: percentile_sorted(&approx_sojourns, 0.50) * 1e3,
        p99_approx_ms: percentile_sorted(&approx_sojourns, 0.99) * 1e3,
        p50_shed_ms: percentile_sorted(&shed_sojourns, 0.50) * 1e3,
        p99_shed_ms: percentile_sorted(&shed_sojourns, 0.99) * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use ppr_core::hgpa::HgpaBuildOptions;
    use ppr_core::PprConfig;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
    use ppr_partition::HierarchyConfig;

    fn make_server(seed: u64) -> DynamicPprServer {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 120,
                depth: 4,
                locality: 0.9,
                ..Default::default()
            },
            seed,
        );
        DynamicPprServer::build(
            g,
            &PprConfig::default(),
            &HgpaBuildOptions {
                machines: 3,
                hierarchy: HierarchyConfig {
                    max_leaf_size: 16,
                    ..Default::default()
                },
                ..Default::default()
            },
            ServeConfig {
                max_batch: 4,
                ..Default::default()
            },
        )
    }

    fn events() -> Vec<ServeEvent> {
        use ppr_graph::NodeUpdate;
        (0..40)
            .map(|i| {
                if i == 25 {
                    // Structurally invalid: removes a node outside the id
                    // space. Must be rejected, not served (or panicked on).
                    ServeEvent::Churn(GraphDelta {
                        nodes: vec![NodeUpdate::Remove(500)],
                        edges: vec![],
                    })
                } else if i % 13 == 6 {
                    ServeEvent::Churn(GraphDelta {
                        nodes: vec![NodeUpdate::Add],
                        edges: vec![],
                    })
                } else if i % 9 == 4 {
                    ServeEvent::Update(vec![ppr_graph::EdgeUpdate::Insert(
                        (i * 7) % 120,
                        (i * 13 + 1) % 120,
                    )])
                } else {
                    ServeEvent::Query(Request::Ppv((i * 3) % 120))
                }
            })
            .collect()
    }

    #[test]
    fn modeled_run_is_deterministic() {
        let cfg = OpenLoopConfig {
            arrival_rate: 400.0,
            seed: 21,
            ..Default::default()
        };
        let a = run_open_loop(&mut make_server(5), &events(), &cfg);
        let b = run_open_loop(&mut make_server(5), &events(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn report_is_internally_consistent() {
        let evs = events();
        let r = run_open_loop(
            &mut make_server(5),
            &evs,
            &OpenLoopConfig {
                arrival_rate: 800.0, // overload-ish: force queueing
                seed: 3,
                ..Default::default()
            },
        );
        assert_eq!(r.queries + r.update_batches + r.rejected_batches, evs.len());
        assert_eq!((r.shed, r.degraded_answers), (0, 0), "resilience off");
        assert!(r.update_batches > 0 && r.batches > 0);
        assert_eq!(r.rejected_batches, 1, "the invalid churn batch");
        assert!(r.p99_sojourn_ms >= r.p50_sojourn_ms);
        assert!(r.p99_service_ms >= r.p50_service_ms);
        assert!(r.p50_sojourn_ms >= r.p50_service_ms);
        assert!(r.p99_sojourn_ms >= r.p99_service_ms);
        assert!(r.max_sojourn_ms >= r.p99_sojourn_ms);
        assert!(r.mean_wait_ms >= 0.0);
        assert!(r.makespan_seconds > 0.0 && r.achieved_qps > 0.0);
        assert!(r.max_queue_depth >= 1);
    }

    #[test]
    fn slow_arrivals_mean_no_queueing() {
        // At 1 event per 10 virtual seconds nothing ever waits: sojourn
        // equals service for every query.
        let r = run_open_loop(
            &mut make_server(7),
            &events(),
            &OpenLoopConfig {
                arrival_rate: 0.1,
                seed: 9,
                ..Default::default()
            },
        );
        assert!(r.mean_wait_ms.abs() < 1e-9, "wait {}", r.mean_wait_ms);
        assert_eq!(r.max_queue_depth, 1);
        assert!((r.p50_sojourn_ms - r.p50_service_ms).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn zero_rate_rejected() {
        run_open_loop(
            &mut make_server(1),
            &[],
            &OpenLoopConfig {
                arrival_rate: 0.0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn bursty_arrivals_deepen_the_queue_at_the_same_rate() {
        let evs = events();
        let base = OpenLoopConfig {
            arrival_rate: 700.0,
            seed: 13,
            ..Default::default()
        };
        let poisson = run_open_loop(&mut make_server(5), &evs, &base);
        let bursty = run_open_loop(
            &mut make_server(5),
            &evs,
            &OpenLoopConfig {
                pattern: ArrivalPattern::Bursty {
                    period_events: 10,
                    on_events: 2,
                    peak: 8.0,
                },
                ..base
            },
        );
        // Same offered work, spikier arrivals: the high-water mark and
        // tail latency can only get worse.
        assert_eq!(bursty.queries, poisson.queries);
        assert!(
            bursty.max_queue_depth >= poisson.max_queue_depth,
            "bursty {} vs poisson {}",
            bursty.max_queue_depth,
            poisson.max_queue_depth
        );
        assert_eq!((bursty.shed, bursty.degraded_answers), (0, 0));
    }

    #[test]
    fn queue_cap_sheds_explicitly_and_no_request_vanishes() {
        let evs: Vec<ServeEvent> =
            (0..60).map(|i| ServeEvent::Query(Request::Ppv((i * 3) % 120))).collect();
        let cfg = OpenLoopConfig {
            arrival_rate: 50_000.0, // everything arrives nearly at once
            seed: 17,
            queue_cap: Some(8),
            ..Default::default()
        };
        let r = run_open_loop(&mut make_server(5), &evs, &cfg);
        assert!(r.shed > 0, "overload at cap 8 must shed");
        assert_eq!(r.queries + r.shed, evs.len(), "no silent drops");
        assert!(r.max_queue_depth <= 9, "depth {}", r.max_queue_depth);
        assert_eq!(r.p99_shed_ms, 0.0, "fail-fast rejection");
        // Determinism holds with the resilience knobs on.
        assert_eq!(r, run_open_loop(&mut make_server(5), &evs, &cfg));
    }

    #[test]
    fn slo_breach_degrades_with_bounds_and_idle_gaps_backfill() {
        use ppr_cluster::FaultPlan;
        let evs: Vec<ServeEvent> = (0..48)
            .map(|i| ServeEvent::Query(Request::Ppv((i * 5) % 120)))
            .collect();
        let mut server = make_server(9);
        // A straggler machine makes exact rounds slow enough to blow the
        // SLO under a burst; degraded batches answer from the estimator.
        server.set_fault_plan(FaultPlan::empty().slow(0, 64.0));
        let cfg = OpenLoopConfig {
            arrival_rate: 1_500.0,
            seed: 29,
            slo_ms: Some(2.0),
            pattern: ArrivalPattern::Bursty {
                period_events: 24,
                on_events: 16,
                peak: 20.0,
            },
            ..Default::default()
        };
        let r = run_open_loop(&mut server, &evs, &cfg);
        assert_eq!(r.queries, evs.len(), "nothing shed without a cap");
        assert!(r.degraded_answers > 0, "SLO 2ms must force degradation");
        assert!(r.degraded_answers < evs.len(), "some exact answers too");
        assert!(
            r.backfilled_sources > 0,
            "idle gaps between bursts must recover parked sources"
        );
        assert_eq!(
            server.resilience_stats().degraded_answers,
            r.degraded_answers as u64
        );
        // Degraded service is priced below exact fresh service, so the
        // degraded class must not have a *worse* median than the overall
        // worst case.
        assert!(r.p50_approx_ms <= r.max_sojourn_ms);
        // Replays bit-identically under faults too.
        let mut twin = make_server(9);
        twin.set_fault_plan(FaultPlan::empty().slow(0, 64.0));
        assert_eq!(r, run_open_loop(&mut twin, &evs, &cfg));
    }
}
