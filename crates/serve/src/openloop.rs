//! Open-loop load: Poisson arrivals on a deterministic virtual clock.
//!
//! The closed-loop harness (`repro serve`'s original mode) submits the
//! next batch the moment the previous one finishes, so it measures
//! *service time* only — a server keeping up at 99% utilization and one
//! melting down look identical. An **open-loop** driver instead lets
//! events arrive on their own schedule (exponential inter-arrival times,
//! i.e. Poisson arrivals — the standard heavy-traffic model) whether or
//! not the server is ready, which is what exposes **queueing delay**: the
//! report separates each request's *sojourn time* (arrival → completion)
//! from the *service time* of its batch, and their gap is time spent
//! waiting in queue.
//!
//! Everything runs on a virtual clock. Arrivals are drawn from a seeded
//! RNG; service times come from a [`ServiceModel`] — either the measured
//! wall-clock cost of each batch (realistic, but run-to-run noisy) or a
//! deterministic model priced from the batch's *deterministic* outputs
//! (fresh sources, modeled wire time, recomputed vectors), which makes
//! the whole simulation — batch composition, queue depths, every
//! percentile — reproducible bit for bit from the seed. The FIFO queue
//! coalesces up to `max_batch` waiting queries into one fan-out round;
//! an update batch is a barrier served alone, exactly like the real
//! server's write path.

use crate::dynamic::{DynamicPprServer, UpdateOutcome};
use crate::server::{BatchOutcome, Request};
use ppr_core::incremental::UpdateError;
use ppr_graph::{EdgeUpdate, GraphDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One event of the open-loop stream.
#[derive(Clone, Debug)]
pub enum ServeEvent {
    /// A client query.
    Query(Request),
    /// A batch of edge updates (served alone, as a write barrier).
    Update(Vec<EdgeUpdate>),
    /// A node-churn batch (edge updates plus node adds/removes), served
    /// alone as a write barrier exactly like [`ServeEvent::Update`].
    Churn(GraphDelta),
}

/// How a batch's time on the virtual clock is priced.
#[derive(Clone, Copy, Debug)]
pub enum ServiceModel {
    /// Real measured seconds (plus modeled wire time). Realistic, but the
    /// simulation is only as reproducible as the host's timers.
    Measured,
    /// Deterministic cost model: every term is priced from deterministic
    /// batch outputs, so the full simulation replays identically for a
    /// given seed. The defaults (see [`ServiceModel::modeled_default`])
    /// are in the right order of magnitude for the quick profile; the
    /// *shape* of the queueing report, not the absolute numbers, is the
    /// point.
    Modeled {
        /// Per-request assembly cost (applies to every request).
        seconds_per_request: f64,
        /// Per fresh source answered in the batch's fan-out round.
        seconds_per_fresh_source: f64,
        /// Per vector recomputed by the incremental updater.
        seconds_per_recomputed_vector: f64,
    },
}

impl ServiceModel {
    /// The deterministic model with default constants.
    pub fn modeled_default() -> Self {
        ServiceModel::Modeled {
            seconds_per_request: 20e-6,
            seconds_per_fresh_source: 300e-6,
            seconds_per_recomputed_vector: 150e-6,
        }
    }

    /// Virtual service seconds of one query batch.
    fn batch_seconds(&self, out: &BatchOutcome) -> f64 {
        match *self {
            ServiceModel::Measured => out.seconds + out.modeled_network_seconds,
            ServiceModel::Modeled {
                seconds_per_request,
                seconds_per_fresh_source,
                ..
            } => {
                out.modeled_network_seconds
                    + out.responses.len() as f64 * seconds_per_request
                    + out.fresh_sources as f64 * seconds_per_fresh_source
            }
        }
    }

    /// Virtual service seconds of one update batch.
    fn update_seconds(&self, out: &UpdateOutcome) -> f64 {
        match *self {
            ServiceModel::Measured => out.seconds,
            ServiceModel::Modeled {
                seconds_per_recomputed_vector,
                ..
            } => out.stats.vectors_recomputed as f64 * seconds_per_recomputed_vector,
        }
    }
}

/// Open-loop driver knobs.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Mean event arrival rate (events per virtual second); must be
    /// positive and finite.
    pub arrival_rate: f64,
    /// Seed of the arrival process.
    pub seed: u64,
    /// Service-time pricing.
    pub service: ServiceModel,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            arrival_rate: 500.0,
            seed: 0x0_BEA7,
            service: ServiceModel::modeled_default(),
        }
    }
}

/// The queueing-delay report of one open-loop run.
///
/// Internal-consistency invariants (pinned in `tests/dynamic_serving.rs`):
/// every query's sojourn ≥ its service time (so the p50/p99 sojourn
/// dominate the p50/p99 service pointwise), p99 ≥ p50, mean wait ≥ 0, and
/// `queries + update_batches + rejected_batches` equals the driven event
/// count.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenLoopReport {
    /// Configured mean arrival rate (events per virtual second).
    pub offered_rate: f64,
    /// Queries completed.
    pub queries: usize,
    /// Update/churn batches applied.
    pub update_batches: usize,
    /// Update/churn batches rejected as invalid (dead-node references,
    /// structurally broken deltas). A rejection bills no virtual service
    /// time: the server state never moved.
    pub rejected_batches: usize,
    /// Query batches (fan-out rounds, including all-cached ones) executed.
    pub batches: usize,
    /// Virtual seconds from first arrival to last completion.
    pub makespan_seconds: f64,
    /// Queries per virtual second actually completed.
    pub achieved_qps: f64,
    /// Median sojourn time (arrival → completion), milliseconds.
    pub p50_sojourn_ms: f64,
    /// 99th-percentile sojourn time, milliseconds.
    pub p99_sojourn_ms: f64,
    /// Worst sojourn time, milliseconds.
    pub max_sojourn_ms: f64,
    /// Median service time of the query's batch, milliseconds.
    pub p50_service_ms: f64,
    /// 99th-percentile service time, milliseconds.
    pub p99_service_ms: f64,
    /// Mean queueing delay (sojourn − service), milliseconds.
    pub mean_wait_ms: f64,
    /// Largest number of arrived-but-unserved events observed.
    pub max_queue_depth: usize,
    /// Fraction of distinct per-batch source lookups served from cache.
    pub hit_rate: f64,
    /// Cache entries evicted by update invalidation during the run.
    pub entries_evicted: u64,
    /// Cache entries retained across updates during the run.
    pub entries_retained: u64,
}

/// Value at quantile `q ∈ [0, 1]` of an ascending-sorted sample (nearest
/// rank); 0 on an empty sample. Callers sort once and index all quantiles
/// (and the max, its last element) from the same array.
/// Settle one write barrier's result: an applied batch is billed its
/// virtual service seconds, a rejected one bills nothing (the server
/// state never moved — see [`DynamicPprServer::apply_delta`]).
fn settle_write(
    res: Result<UpdateOutcome, UpdateError>,
    service: &ServiceModel,
    update_batches: &mut usize,
    rejected_batches: &mut usize,
) -> f64 {
    match res {
        Ok(out) => {
            *update_batches += 1;
            service.update_seconds(&out)
        }
        Err(_) => {
            *rejected_batches += 1;
            0.0
        }
    }
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Drive `events` through `server` under open-loop arrivals.
///
/// Events are served strictly in arrival (FIFO) order: consecutive
/// already-arrived queries coalesce into batches of at most the server's
/// `max_batch`, and an update event is processed alone. With
/// [`ServiceModel::Modeled`] the run — including batch composition and
/// every reported number — is a pure function of `(server state, events,
/// config)`.
pub fn run_open_loop(
    server: &mut DynamicPprServer,
    events: &[ServeEvent],
    cfg: &OpenLoopConfig,
) -> OpenLoopReport {
    assert!(
        cfg.arrival_rate.is_finite() && cfg.arrival_rate > 0.0,
        "arrival rate must be positive and finite, got {}",
        cfg.arrival_rate
    );
    let stats_before = *server.stats();
    let dyn_before = *server.dynamic_stats();
    let max_batch = server.config().max_batch.max(1);

    // Poisson arrivals: exponential inter-arrival times by inverse CDF.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut arrivals = Vec::with_capacity(events.len());
    let mut t = 0.0f64;
    for _ in 0..events.len() {
        let u: f64 = rng.random_range(0.0..1.0);
        t += -(1.0 - u).ln() / cfg.arrival_rate;
        arrivals.push(t);
    }

    let mut clock = 0.0f64;
    let mut i = 0usize;
    let mut sojourns: Vec<f64> = Vec::new();
    let mut services: Vec<f64> = Vec::new();
    let mut total_wait = 0.0f64;
    let mut update_batches = 0usize;
    let mut rejected_batches = 0usize;
    let mut batches = 0usize;
    let mut max_queue_depth = 0usize;
    let mut requests: Vec<Request> = Vec::new();

    while i < events.len() {
        if clock < arrivals[i] {
            clock = arrivals[i]; // server idles until the next arrival
        }
        let arrived = arrivals.partition_point(|&a| a <= clock);
        max_queue_depth = max_queue_depth.max(arrived - i);

        match &events[i] {
            ServeEvent::Update(batch) => {
                clock += settle_write(
                    server.apply_updates(batch),
                    &cfg.service,
                    &mut update_batches,
                    &mut rejected_batches,
                );
                i += 1;
            }
            ServeEvent::Churn(delta) => {
                clock += settle_write(
                    server.apply_delta(delta),
                    &cfg.service,
                    &mut update_batches,
                    &mut rejected_batches,
                );
                i += 1;
            }
            ServeEvent::Query(_) => {
                // Coalesce the run of arrived queries at the queue head.
                requests.clear();
                let start = i;
                while i < events.len() && requests.len() < max_batch && arrivals[i] <= clock {
                    match &events[i] {
                        ServeEvent::Query(req) => requests.push(req.clone()),
                        // Write barriers end the batch.
                        ServeEvent::Update(_) | ServeEvent::Churn(_) => break,
                    }
                    i += 1;
                }
                let out = server.run_batch(&requests);
                batches += 1;
                let service = cfg.service.batch_seconds(&out);
                let completion = clock + service;
                for &arrival in &arrivals[start..i] {
                    sojourns.push(completion - arrival);
                    services.push(service);
                    total_wait += clock - arrival;
                }
                clock = completion;
            }
        }
    }

    let stats = *server.stats();
    let dyn_stats = *server.dynamic_stats();
    let cached = stats.cached_sources - stats_before.cached_sources;
    let fresh = stats.fresh_sources - stats_before.fresh_sources;
    let lookups = cached + fresh;
    let queries = sojourns.len();
    sojourns.sort_unstable_by(f64::total_cmp);
    services.sort_unstable_by(f64::total_cmp);
    OpenLoopReport {
        offered_rate: cfg.arrival_rate,
        queries,
        update_batches,
        rejected_batches,
        batches,
        makespan_seconds: clock,
        achieved_qps: queries as f64 / clock.max(1e-12),
        p50_sojourn_ms: percentile_sorted(&sojourns, 0.50) * 1e3,
        p99_sojourn_ms: percentile_sorted(&sojourns, 0.99) * 1e3,
        max_sojourn_ms: sojourns.last().copied().unwrap_or(0.0) * 1e3,
        p50_service_ms: percentile_sorted(&services, 0.50) * 1e3,
        p99_service_ms: percentile_sorted(&services, 0.99) * 1e3,
        mean_wait_ms: total_wait / queries.max(1) as f64 * 1e3,
        max_queue_depth,
        hit_rate: if lookups == 0 {
            0.0
        } else {
            cached as f64 / lookups as f64
        },
        entries_evicted: dyn_stats.entries_evicted - dyn_before.entries_evicted,
        entries_retained: dyn_stats.entries_retained - dyn_before.entries_retained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use ppr_core::hgpa::HgpaBuildOptions;
    use ppr_core::PprConfig;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
    use ppr_partition::HierarchyConfig;

    fn make_server(seed: u64) -> DynamicPprServer {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 120,
                depth: 4,
                locality: 0.9,
                ..Default::default()
            },
            seed,
        );
        DynamicPprServer::build(
            g,
            &PprConfig::default(),
            &HgpaBuildOptions {
                machines: 3,
                hierarchy: HierarchyConfig {
                    max_leaf_size: 16,
                    ..Default::default()
                },
                ..Default::default()
            },
            ServeConfig {
                max_batch: 4,
                ..Default::default()
            },
        )
    }

    fn events() -> Vec<ServeEvent> {
        use ppr_graph::NodeUpdate;
        (0..40)
            .map(|i| {
                if i == 25 {
                    // Structurally invalid: removes a node outside the id
                    // space. Must be rejected, not served (or panicked on).
                    ServeEvent::Churn(GraphDelta {
                        nodes: vec![NodeUpdate::Remove(500)],
                        edges: vec![],
                    })
                } else if i % 13 == 6 {
                    ServeEvent::Churn(GraphDelta {
                        nodes: vec![NodeUpdate::Add],
                        edges: vec![],
                    })
                } else if i % 9 == 4 {
                    ServeEvent::Update(vec![ppr_graph::EdgeUpdate::Insert(
                        (i * 7) % 120,
                        (i * 13 + 1) % 120,
                    )])
                } else {
                    ServeEvent::Query(Request::Ppv((i * 3) % 120))
                }
            })
            .collect()
    }

    #[test]
    fn modeled_run_is_deterministic() {
        let cfg = OpenLoopConfig {
            arrival_rate: 400.0,
            seed: 21,
            service: ServiceModel::modeled_default(),
        };
        let a = run_open_loop(&mut make_server(5), &events(), &cfg);
        let b = run_open_loop(&mut make_server(5), &events(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn report_is_internally_consistent() {
        let evs = events();
        let r = run_open_loop(
            &mut make_server(5),
            &evs,
            &OpenLoopConfig {
                arrival_rate: 800.0, // overload-ish: force queueing
                seed: 3,
                service: ServiceModel::modeled_default(),
            },
        );
        assert_eq!(r.queries + r.update_batches + r.rejected_batches, evs.len());
        assert!(r.update_batches > 0 && r.batches > 0);
        assert_eq!(r.rejected_batches, 1, "the invalid churn batch");
        assert!(r.p99_sojourn_ms >= r.p50_sojourn_ms);
        assert!(r.p99_service_ms >= r.p50_service_ms);
        assert!(r.p50_sojourn_ms >= r.p50_service_ms);
        assert!(r.p99_sojourn_ms >= r.p99_service_ms);
        assert!(r.max_sojourn_ms >= r.p99_sojourn_ms);
        assert!(r.mean_wait_ms >= 0.0);
        assert!(r.makespan_seconds > 0.0 && r.achieved_qps > 0.0);
        assert!(r.max_queue_depth >= 1);
    }

    #[test]
    fn slow_arrivals_mean_no_queueing() {
        // At 1 event per 10 virtual seconds nothing ever waits: sojourn
        // equals service for every query.
        let r = run_open_loop(
            &mut make_server(7),
            &events(),
            &OpenLoopConfig {
                arrival_rate: 0.1,
                seed: 9,
                service: ServiceModel::modeled_default(),
            },
        );
        assert!(r.mean_wait_ms.abs() < 1e-9, "wait {}", r.mean_wait_ms);
        assert_eq!(r.max_queue_depth, 1);
        assert!((r.p50_sojourn_ms - r.p50_service_ms).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn zero_rate_rejected() {
        run_open_loop(
            &mut make_server(1),
            &[],
            &OpenLoopConfig {
                arrival_rate: 0.0,
                ..Default::default()
            },
        );
    }
}
