//! Cold-start: boot a serving stack from a persisted index artifact.
//!
//! The paper's split is precompute-once / serve-forever; this module is
//! the serve-forever half. [`ColdStart`] loads whichever index artifact
//! (GPA or HGPA) a path holds — the format is self-describing — and
//! owns it, so a serving process needs neither the graph nor the
//! builder: `ColdStart::from_path(..)?.server()` is a full
//! [`PprServer`] answering queries bit-identical to one running over the
//! freshly built in-memory index (pinned in `tests/persist_roundtrip.rs`).
//!
//! Everything here is `Err`-based: a truncated, corrupted, or
//! wrong-kind artifact surfaces as an [`io::Error`] from the loader,
//! never a panic (the `serve-panic` audit rule applies to this crate).

use crate::{DynamicPprServer, PprServer, ServeConfig, ShardedPprServer};
use ppr_core::persist::{self, PersistedIndex};
use ppr_graph::CsrGraph;
use std::io;
use std::path::Path;

/// An owning holder for a disk-loaded index plus the serving
/// configuration to run over it.
///
/// [`PprServer`] borrows its index, so *something* must own a loaded
/// one; `ColdStart` is that owner. Keep it alive as long as any server
/// built from it.
#[derive(Debug)]
pub struct ColdStart {
    index: PersistedIndex,
    config: ServeConfig,
}

impl ColdStart {
    /// Load the index artifact at `path` and pair it with `config`.
    ///
    /// Fails with an [`io::Error`] if the file is missing, truncated,
    /// corrupted, or not an index artifact; never panics.
    pub fn from_path<P: AsRef<Path>>(path: P, config: ServeConfig) -> io::Result<Self> {
        Ok(Self {
            index: persist::load_index_file(path)?,
            config,
        })
    }

    /// Wrap an already-loaded index (e.g. from an in-memory buffer).
    pub fn from_index(index: PersistedIndex, config: ServeConfig) -> Self {
        Self { index, config }
    }

    /// The loaded index.
    pub fn index(&self) -> &PersistedIndex {
        &self.index
    }

    /// The serving configuration this holder was created with.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// A batching/caching server over the loaded index.
    pub fn server(&self) -> PprServer<'_, PersistedIndex> {
        PprServer::new(&self.index, self.config)
    }

    /// A sharded (really-parallel) server over the loaded index.
    pub fn sharded_server(&self) -> ShardedPprServer<'_, PersistedIndex> {
        ShardedPprServer::new(&self.index, self.config)
    }
}

impl DynamicPprServer {
    /// Cold-start a dynamic (updatable) server from a persisted **HGPA**
    /// artifact plus the graph it was built from. The incremental
    /// updater maintains an HGPA index specifically, so a GPA artifact —
    /// or an artifact whose node count disagrees with `graph` — is an
    /// error, not a panic.
    pub fn from_persisted<P: AsRef<Path>>(
        path: P,
        graph: CsrGraph,
        config: ServeConfig,
    ) -> io::Result<Self> {
        let index = persist::load_hgpa_file(path)?;
        if index.node_count() != graph.node_count() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "persisted index covers {} nodes but the graph has {}",
                    index.node_count(),
                    graph.node_count()
                ),
            ));
        }
        Ok(Self::from_index(graph, index, config))
    }
}
