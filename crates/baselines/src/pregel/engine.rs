//! A general vertex-centric BSP engine (the Pregel model \\[36\\], with
//! Pregel+'s sender-side message combining \\[48\\]).
//!
//! Vertices are hash-partitioned over workers. A superstep runs three
//! phases: *compute* (each worker runs the [`VertexProgram`] on its
//! vertices, collecting outgoing messages combined per target), *exchange*
//! (messages are delivered; traffic crossing a worker boundary is counted
//! in bytes), and *aggregate* (the program folds per-vertex states into a
//! global aggregate that decides termination). This is the execution model
//! the paper's §6.2.8 baselines implement; the PPR and PageRank programs
//! in the sibling modules are its users, and any other vertex-centric
//! computation can run on it.

use crate::BspRunStats;
use ppr_graph::{Adjacency, CsrGraph, NodeId};
use std::collections::BTreeMap;
use ppr_core::parallel::Stopwatch;

/// A vertex-centric program in the Pregel style.
///
/// Messages are `f64` combined by summation — the combiner that covers
/// PageRank-family programs (and, per Pregel+, the main message-reduction
/// device). Vertex state is the program's `Value`.
pub trait VertexProgram: Sync {
    /// Per-vertex state.
    type Value: Clone + Send + Sync;

    /// Initial state of vertex `v` (superstep 0 input).
    fn init(&self, v: NodeId) -> Self::Value;

    /// One vertex step: combine the incoming message sum with the current
    /// state, returning the new state and the mass to emit along each
    /// out-edge (`None` = send nothing this superstep).
    fn compute(
        &self,
        v: NodeId,
        state: &Self::Value,
        incoming: f64,
        graph: &CsrGraph,
    ) -> (Self::Value, Option<f64>);

    /// Convergence measure folded over all vertices after each superstep;
    /// the run stops when it drops to `tolerance` or below.
    fn progress(&self, old: &Self::Value, new: &Self::Value) -> f64;
}

/// The engine: a graph, a worker placement, and run bookkeeping.
pub struct BspEngine<'g> {
    graph: &'g CsrGraph,
    workers: usize,
    worker_of: Vec<u32>,
}

impl<'g> BspEngine<'g> {
    /// Hash-partition `graph` over `workers`.
    pub fn new(graph: &'g CsrGraph, workers: usize) -> Self {
        assert!(workers >= 1);
        let n = graph.node_count();
        let worker_of = (0..n as u64)
            // audit:allow(lossy-id-cast): worker index, bounded by `% workers`
            .map(|v| ((v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % workers as u64) as u32)
            .collect();
        Self {
            graph,
            workers,
            worker_of,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker placement of a vertex.
    pub fn worker_of(&self, v: NodeId) -> u32 {
        self.worker_of[v as usize]
    }

    /// Node count of the underlying graph.
    pub fn graph_node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Run `program` until its progress measure is at most `tolerance` or
    /// `max_supersteps` elapse. Returns final states and run statistics.
    pub fn run<P: VertexProgram>(
        &self,
        program: &P,
        tolerance: f64,
        max_supersteps: u32,
    ) -> (Vec<P::Value>, BspRunStats) {
        let t0 = Stopwatch::start();
        let n = self.graph.node_count();
        let mut stats = BspRunStats::default();
        let mut states: Vec<P::Value> = (0..n as NodeId).map(|v| program.init(v)).collect();
        let mut incoming = vec![0.0f64; n];

        for _ in 0..max_supersteps {
            stats.supersteps += 1;

            // Compute phase: per worker, run the program and combine
            // outgoing messages per target vertex.
            type WorkerResult<V> = (Vec<(NodeId, V)>, BTreeMap<NodeId, f64>, f64);
            let results: Vec<WorkerResult<P::Value>> =
                std::thread::scope(|scope| {
                    let states = &states;
                    let incoming = &incoming;
                    let handles: Vec<_> = (0..self.workers as u32)
                        .map(|w| {
                            scope.spawn(move || {
                                let mut new_states: Vec<(NodeId, P::Value)> = Vec::new();
                                let mut combined: BTreeMap<NodeId, f64> = BTreeMap::new();
                                let mut progress = 0.0f64;
                                for v in 0..n as NodeId {
                                    if self.worker_of[v as usize] != w {
                                        continue;
                                    }
                                    let (new, emit) = program.compute(
                                        v,
                                        &states[v as usize],
                                        incoming[v as usize],
                                        self.graph,
                                    );
                                    progress =
                                        progress.max(program.progress(&states[v as usize], &new));
                                    if let Some(mass) = emit {
                                        let deg = self.graph.degree(v);
                                        if deg > 0 && mass != 0.0 {
                                            let share = mass / deg as f64;
                                            for &t in self.graph.out(v) {
                                                *combined.entry(t).or_insert(0.0) += share;
                                            }
                                        }
                                    }
                                    new_states.push((v, new));
                                }
                                (new_states, combined, progress)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker thread"))
                        .collect()
                });

            // Exchange + aggregate.
            for slot in incoming.iter_mut() {
                *slot = 0.0;
            }
            let mut max_progress = 0.0f64;
            for (w, (new_states, msgs, progress)) in results.into_iter().enumerate() {
                for (v, s) in new_states {
                    states[v as usize] = s;
                }
                for (t, m) in msgs {
                    if self.worker_of[t as usize] != w as u32 {
                        stats.cross_worker_messages += 1;
                        stats.network_bytes += 12;
                    }
                    incoming[t as usize] += m;
                }
                max_progress = max_progress.max(progress);
            }
            if max_progress <= tolerance {
                break;
            }
        }

        stats.elapsed_seconds = t0.elapsed_seconds();
        (states, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::csr::from_edges;

    /// A trivial program: every vertex forwards its value once, then
    /// settles (used to exercise the engine independent of PPR).
    struct OneShotSpread;

    impl VertexProgram for OneShotSpread {
        type Value = (f64, u32); // (value, age)

        fn init(&self, v: NodeId) -> Self::Value {
            (if v == 0 { 1.0 } else { 0.0 }, 0)
        }

        fn compute(
            &self,
            _v: NodeId,
            state: &Self::Value,
            incoming: f64,
            _graph: &CsrGraph,
        ) -> (Self::Value, Option<f64>) {
            let (val, age) = *state;
            let emit = (age == 0 && val > 0.0).then_some(val);
            ((val + incoming, age + 1), emit)
        }

        fn progress(&self, old: &Self::Value, new: &Self::Value) -> f64 {
            if new.1 <= 1 {
                1.0 // warm-up superstep: messages are still in flight
            } else {
                (new.0 - old.0).abs()
            }
        }
    }

    #[test]
    fn engine_delivers_and_combines() {
        // 0 -> {1, 2}; both get half of 0's unit.
        let g = from_edges(3, &[(0, 1), (0, 2)]);
        let engine = BspEngine::new(&g, 2);
        let (states, stats) = engine.run(&OneShotSpread, 1e-12, 10);
        assert!((states[1].0 - 0.5).abs() < 1e-12);
        assert!((states[2].0 - 0.5).abs() < 1e-12);
        assert!(stats.supersteps >= 2);
    }

    #[test]
    fn traffic_counted_only_across_workers() {
        let g = from_edges(3, &[(0, 1), (0, 2)]);
        let single = BspEngine::new(&g, 1);
        let (_, s1) = single.run(&OneShotSpread, 1e-12, 10);
        assert_eq!(s1.network_bytes, 0);
        let multi = BspEngine::new(&g, 3);
        let (_, s3) = multi.run(&OneShotSpread, 1e-12, 10);
        assert!(s3.network_bytes >= s1.network_bytes);
    }

    #[test]
    fn superstep_cap_respected() {
        // A cycle never converges under OneShotSpread-like forwarding if we
        // keep emitting; cap must bound the run. Use PPR-like decay via the
        // cap instead: just check the engine stops.
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        struct Forever;
        impl VertexProgram for Forever {
            type Value = f64;
            fn init(&self, v: NodeId) -> f64 {
                f64::from(v == 0)
            }
            fn compute(
                &self,
                _v: NodeId,
                state: &f64,
                incoming: f64,
                _g: &CsrGraph,
            ) -> (f64, Option<f64>) {
                (incoming, Some(*state))
            }
            fn progress(&self, _o: &f64, _n: &f64) -> f64 {
                1.0 // never claims convergence
            }
        }
        let engine = BspEngine::new(&g, 2);
        let (_, stats) = engine.run(&Forever, 0.0, 7);
        assert_eq!(stats.supersteps, 7);
    }
}
