//! Vertex-centric BSP baseline (the Pregel+/Pregel model of §6.2.8).
//!
//! [`engine`] hosts the general engine; [`PprProgram`] and
//! [`PageRankProgram`] are the vertex programs the paper's comparison
//! needs; [`PregelPpr`] is the convenience wrapper the experiments use.
//!
//! The structural point (§6.2.8) appears directly: *every* superstep moves
//! O(cut edges) messages across workers and power iteration needs
//! ~`log ε / log(1-α)` supersteps, so BSP communication is multiplied by
//! the round count — against exactly one round for GPA/HGPA.

pub mod engine;

pub use engine::{BspEngine, VertexProgram};

use crate::BspRunStats;
use ppr_core::{PprConfig, SparseVector};
use ppr_graph::{CsrGraph, NodeId};

/// Power-iteration PPR as a vertex program.
///
/// State is `(value, age)`. Superstep 1 broadcasts the initial mass;
/// every later superstep applies `r' = α·x_src + (1-α)·Σ incoming` and
/// re-broadcasts. The progress measure is the per-vertex change, matching
/// Algorithm 2's convergence test.
pub struct PprProgram {
    /// Preference (query) node.
    pub source: NodeId,
    /// Teleport probability.
    pub alpha: f64,
}

impl VertexProgram for PprProgram {
    type Value = (f64, u32);

    fn init(&self, v: NodeId) -> Self::Value {
        (f64::from(v == self.source), 0)
    }

    fn compute(
        &self,
        v: NodeId,
        state: &Self::Value,
        incoming: f64,
        _graph: &CsrGraph,
    ) -> (Self::Value, Option<f64>) {
        let (val, age) = *state;
        if age == 0 {
            // Broadcast r_0 before the first update.
            return ((val, 1), (val != 0.0).then_some(val));
        }
        let mut new = (1.0 - self.alpha) * incoming;
        if v == self.source {
            new += self.alpha;
        }
        ((new, age + 1), (new != 0.0).then_some(new))
    }

    fn progress(&self, old: &Self::Value, new: &Self::Value) -> f64 {
        if new.1 <= 1 {
            1.0 // warm-up superstep: never report convergence yet
        } else {
            (new.0 - old.0).abs()
        }
    }
}

/// Global PageRank as a vertex program (uniform teleport).
pub struct PageRankProgram {
    /// Teleport probability.
    pub alpha: f64,
    /// Node count (for the uniform teleport term).
    pub n: usize,
}

impl VertexProgram for PageRankProgram {
    type Value = (f64, u32);

    fn init(&self, _v: NodeId) -> Self::Value {
        (1.0 / self.n as f64, 0)
    }

    fn compute(
        &self,
        _v: NodeId,
        state: &Self::Value,
        incoming: f64,
        _graph: &CsrGraph,
    ) -> (Self::Value, Option<f64>) {
        let (val, age) = *state;
        if age == 0 {
            return ((val, 1), Some(val));
        }
        let new = self.alpha / self.n as f64 + (1.0 - self.alpha) * incoming;
        ((new, age + 1), Some(new))
    }

    fn progress(&self, old: &Self::Value, new: &Self::Value) -> f64 {
        if new.1 <= 1 {
            1.0
        } else {
            (new.0 - old.0).abs()
        }
    }
}

/// Power-iteration PPR on the BSP engine — the paper's Pregel+ baseline.
pub struct PregelPpr<'g> {
    engine: BspEngine<'g>,
}

impl<'g> PregelPpr<'g> {
    /// Hash-partition `graph` over `workers` virtual machines.
    pub fn new(graph: &'g CsrGraph, workers: usize) -> Self {
        Self {
            engine: BspEngine::new(graph, workers),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.engine.workers()
    }

    /// Worker placement of a vertex.
    pub fn worker_of(&self, v: NodeId) -> u32 {
        self.engine.worker_of(v)
    }

    /// Compute the PPV of `source` by BSP power iteration.
    pub fn query(&self, source: NodeId, cfg: &PprConfig) -> (SparseVector, BspRunStats) {
        cfg.validate();
        let program = PprProgram {
            source,
            alpha: cfg.alpha,
        };
        let (states, stats) = self
            .engine
            .run(&program, cfg.epsilon, cfg.max_iterations);
        let dense: Vec<f64> = states.into_iter().map(|(v, _)| v).collect();
        (SparseVector::from_dense(&dense, None, 0.0), stats)
    }

    /// Global PageRank on the same engine (second program; exercises the
    /// engine's generality and serves applications needing both).
    pub fn global_pagerank(&self, cfg: &PprConfig) -> (Vec<f64>, BspRunStats) {
        cfg.validate();
        let program = PageRankProgram {
            alpha: cfg.alpha,
            n: self.node_count(),
        };
        let (states, stats) = self
            .engine
            .run(&program, cfg.epsilon, cfg.max_iterations);
        (states.into_iter().map(|(v, _)| v).collect(), stats)
    }

    fn node_count(&self) -> usize {
        // The engine holds the graph; expose through a tiny helper.
        self.engine.graph_node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::csr::from_edges;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn sample() -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: 200,
                ..Default::default()
            },
            5,
        )
    }

    fn tight() -> PprConfig {
        PprConfig {
            epsilon: 1e-10,
            ..Default::default()
        }
    }

    #[test]
    fn converges_to_dense_oracle() {
        let g = sample();
        let engine = PregelPpr::new(&g, 4);
        let (ppv, stats) = engine.query(17, &tight());
        let exact = dense_ppv(&g, 17, 0.15);
        for v in 0..200u32 {
            assert!((ppv.get(v) - exact[v as usize]).abs() < 1e-7, "v {v}");
        }
        assert!(stats.supersteps > 10, "power iteration needs many rounds");
        assert!(stats.cross_worker_messages > 0);
    }

    #[test]
    fn single_worker_has_no_network_traffic() {
        let g = sample();
        let engine = PregelPpr::new(&g, 1);
        let (_, stats) = engine.query(3, &PprConfig::default());
        assert_eq!(stats.cross_worker_messages, 0);
        assert_eq!(stats.network_bytes, 0);
    }

    #[test]
    fn more_workers_more_traffic() {
        let g = sample();
        let cfg = PprConfig::default();
        let (_, s2) = PregelPpr::new(&g, 2).query(9, &cfg);
        let (_, s8) = PregelPpr::new(&g, 8).query(9, &cfg);
        assert!(
            s8.network_bytes > s2.network_bytes,
            "{} vs {}",
            s8.network_bytes,
            s2.network_bytes
        );
    }

    #[test]
    fn traffic_scales_with_supersteps() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let engine = PregelPpr::new(&g, 2);
        let loose = engine.query(0, &PprConfig::with_epsilon(1e-2)).1;
        let tight = engine.query(0, &PprConfig::with_epsilon(1e-8)).1;
        assert!(tight.supersteps > loose.supersteps);
        assert!(tight.network_bytes >= loose.network_bytes);
    }

    #[test]
    fn placement_is_deterministic() {
        let g = sample();
        let a = PregelPpr::new(&g, 4);
        let b = PregelPpr::new(&g, 4);
        for v in 0..200u32 {
            assert_eq!(a.worker_of(v), b.worker_of(v));
        }
    }

    #[test]
    fn pagerank_program_matches_reference() {
        let g = sample();
        let engine = PregelPpr::new(&g, 3);
        let (pr, _) = engine.global_pagerank(&tight());
        let reference = ppr_core::power::global_pagerank(&g, &tight());
        for v in 0..200 {
            assert!((pr[v] - reference[v]).abs() < 1e-7, "v {v}");
        }
    }

    #[test]
    fn pagerank_sums_to_one_without_dangling() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let engine = PregelPpr::new(&g, 2);
        let (pr, _) = engine.global_pagerank(&tight());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum {sum}");
    }
}
