//! Monte Carlo PPV estimation (Fogaras et al. \\[14\\], Bahmani et al. \\[5\\]).
//!
//! Simulate `walks` random surfers from the query node: at each node stop
//! with probability α (scoring the stop position) or move to a uniform
//! out-neighbour; a dangling node kills the walk without a score, matching
//! the absorbing semantics used across the workspace. The estimator of
//! `r_u(v)` is the fraction of walks stopping at `v` — unbiased, with
//! O(1/√walks) error, i.e. far too slow to reach exact-method accuracy:
//! the reference point for the paper's §7 discussion of approximate
//! distributed methods.

use ppr_core::{PprConfig, SparseVector};
use ppr_graph::{Adjacency, CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `ln(2/δ)` for the per-coordinate Hoeffding confidence behind
/// [`MonteCarloPpr::precision_bound`]; `30.0` puts the per-coordinate
/// failure probability at δ ≈ 1.9 × 10⁻¹³, so even union-bounded over a
/// million coordinates a reported bound fails with probability < 2 × 10⁻⁷.
const LN_TWO_OVER_DELTA: f64 = 30.0;

/// Monte Carlo PPV estimator.
pub struct MonteCarloPpr<'g> {
    graph: &'g CsrGraph,
    alpha: f64,
    seed: u64,
}

impl<'g> MonteCarloPpr<'g> {
    /// Create an estimator with the configured teleport probability.
    pub fn new(graph: &'g CsrGraph, cfg: &PprConfig, seed: u64) -> Self {
        cfg.validate();
        Self {
            graph,
            alpha: cfg.alpha,
            seed,
        }
    }

    /// Per-coordinate precision bound for a `walks`-walk estimate: every
    /// coordinate of the estimate is the mean of `walks` iid indicator
    /// variables whose expectation is the exact (absorbing-semantics)
    /// PPV coordinate, so by Hoeffding's inequality
    /// `|estimate − exact| ≤ sqrt(ln(2/δ) / (2·walks))` per coordinate
    /// with probability ≥ 1 − δ (δ ≈ 1.9 × 10⁻¹³ here). This is the
    /// explicit error bound a degraded serving answer carries.
    pub fn precision_bound(walks: u64) -> f64 {
        assert!(walks > 0);
        (LN_TWO_OVER_DELTA / (2.0 * walks as f64)).sqrt()
    }

    /// [`MonteCarloPpr::query`] paired with the per-coordinate
    /// [`MonteCarloPpr::precision_bound`] the estimate is good for — the
    /// serving shape: an approximate answer is only admissible with its
    /// error bound attached.
    pub fn query_with_bound(&self, source: NodeId, walks: u64) -> (SparseVector, f64) {
        (self.query(source, walks), Self::precision_bound(walks))
    }

    /// Estimate the PPV of `source` from `walks` random walks.
    pub fn query(&self, source: NodeId, walks: u64) -> SparseVector {
        assert!(walks > 0);
        let mut rng = StdRng::seed_from_u64(self.seed ^ (source as u64).wrapping_mul(0x9E37));
        let n = self.graph.node_count();
        let mut counts = vec![0u64; n];
        for _ in 0..walks {
            let mut at = source;
            loop {
                if rng.random::<f64>() < self.alpha {
                    counts[at as usize] += 1;
                    break;
                }
                let outs = self.graph.out(at);
                let deg = self.graph.degree(at) as usize;
                if deg == 0 {
                    break; // dangling: walk dies unscored
                }
                // Virtual-subgraph style absorption cannot happen on a full
                // graph (outs.len() == deg), but stay faithful to the model.
                let pick = rng.random_range(0..deg);
                if pick >= outs.len() {
                    break;
                }
                at = outs[pick];
            }
        }
        SparseVector::from_entries(
            counts
                .into_iter()
                .enumerate()
                .filter(|&(_, c)| c > 0)
                .map(|(v, c)| (v as NodeId, c as f64 / walks as f64))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::csr::from_edges;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    #[test]
    fn estimates_converge_with_walk_count() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 100,
                ..Default::default()
            },
            3,
        );
        let exact = dense_ppv(&g, 5, 0.15);
        let mc = MonteCarloPpr::new(&g, &PprConfig::default(), 77);
        let l1 = |est: &SparseVector| -> f64 {
            (0..100u32).map(|v| (est.get(v) - exact[v as usize]).abs()).sum()
        };
        let coarse = l1(&mc.query(5, 1_000));
        let fine = l1(&mc.query(5, 100_000));
        assert!(fine < coarse, "more walks must reduce error: {fine} vs {coarse}");
        assert!(fine < 0.05, "L1 error with 100k walks: {fine}");
    }

    #[test]
    fn deterministic_for_seed() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mc = MonteCarloPpr::new(&g, &PprConfig::default(), 9);
        assert_eq!(mc.query(0, 5_000), mc.query(0, 5_000));
    }

    #[test]
    fn dangling_walks_leak_mass() {
        let g = from_edges(2, &[(0, 1)]); // node 1 dangling
        let mc = MonteCarloPpr::new(&g, &PprConfig::default(), 1);
        let est = mc.query(0, 50_000);
        let total = est.l1_norm();
        // Absorbing semantics: some walks die at the dangling node.
        assert!(total < 1.0);
        assert!((est.get(0) - 0.15).abs() < 0.01);
    }

    #[test]
    fn precision_bound_shrinks_and_holds_against_exact() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 120,
                ..Default::default()
            },
            11,
        );
        let exact = dense_ppv(&g, 7, 0.15);
        let mc = MonteCarloPpr::new(&g, &PprConfig::default(), 5);
        assert!(
            MonteCarloPpr::precision_bound(4096) < MonteCarloPpr::precision_bound(512)
        );
        for walks in [512u64, 4096] {
            let (est, bound) = mc.query_with_bound(7, walks);
            assert_eq!(bound, MonteCarloPpr::precision_bound(walks));
            for v in 0..120u32 {
                let err = (est.get(v) - exact[v as usize]).abs();
                assert!(
                    err <= bound,
                    "walks {walks} v {v}: err {err} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn mass_sums_to_one_without_dangling() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mc = MonteCarloPpr::new(&g, &PprConfig::default(), 2);
        let est = mc.query(0, 50_000);
        assert!((est.l1_norm() - 1.0).abs() < 1e-9);
    }
}
