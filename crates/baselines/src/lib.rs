#![warn(missing_docs)]

//! Baselines the paper compares GPA/HGPA against (§6.2.8–6.2.10).
//!
//! * [`pregel`] — a vertex-centric BSP engine in the mould of Pregel+
//!   \\[48\\]: hash-partitioned vertices, per-superstep message exchange with
//!   sender-side combiners, aggregator-driven convergence. Runs the power
//!   iteration PPR program. Every message crossing a worker boundary is
//!   counted in bytes — the quantity that makes BSP engines lose the
//!   communication comparison by orders of magnitude (Figure 22).
//! * [`blogel`] — a block-centric engine in the mould of Blogel \\[47\\]:
//!   blocks come from the same multilevel partitioner GPA uses, each
//!   superstep runs blocks to *local* convergence, and only block-boundary
//!   messages travel. Fewer supersteps and less traffic than Pregel, but
//!   still many rounds — exactly the middle position it holds in the
//!   paper's figures.
//! * [`fastppv`] — a hub-based scheduled-approximation method standing in
//!   for FastPPV \\[49\\]: the `h` highest-PageRank nodes get truncated
//!   precomputed PPVs; a query pushes until mass parks at hubs, then
//!   resolves the parked mass through the truncated hub vectors. The hub
//!   count is the accuracy/time knob the paper sweeps (Fast-100 /
//!   Fast-1000 / Fast-10000).
//! * [`monte_carlo`] — classic random-walk estimation (Fogaras/Bahmani
//!   style), the approximate-distributed reference point of §7.

pub mod blogel;
pub mod fastppv;
pub mod monte_carlo;
pub mod pregel;

pub use blogel::BlogelPpr;
pub use fastppv::FastPpv;
pub use monte_carlo::MonteCarloPpr;
pub use pregel::PregelPpr;

/// Execution record shared by the BSP engines.
#[derive(Clone, Copy, Debug, Default)]
pub struct BspRunStats {
    /// Supersteps until global convergence.
    pub supersteps: u32,
    /// Messages that crossed a worker boundary (after combining).
    pub cross_worker_messages: u64,
    /// Bytes of cross-worker traffic (12 bytes per combined message:
    /// 4-byte target id + 8-byte value — same accounting as the
    /// coordinator traffic in `ppr-cluster`).
    pub network_bytes: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_seconds: f64,
}
