//! Block-centric BSP power iteration (the Blogel baseline).
//!
//! Blocks are produced the way Blogel itself produces them — a **Graph
//! Voronoi Diagram** partition (random seed vertices, multi-source BFS,
//! every vertex joins its nearest seed) — not with the multilevel
//! partitioner GPA uses; GVD blocks have noticeably worse cuts, which is
//! part of why Blogel sits *between* Pregel+ and HGPA in the paper's
//! figures rather than matching HGPA.
//!
//! Each block lives on one worker. Within a superstep every block iterates
//! its *own* vertices to local convergence while boundary input is frozen,
//! then block-boundary contributions are exchanged (combined per target
//! vertex). Intra-block propagation costs no messages — Blogel's advantage
//! over vertex-centric engines.

use crate::BspRunStats;
use ppr_core::{PprConfig, SparseVector};
use ppr_graph::{node_id, Adjacency, CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::collections::VecDeque;
use ppr_core::parallel::Stopwatch;

/// Graph Voronoi Diagram partition: `blocks` random seeds, multi-source
/// BFS over the undirected structure; unreachable vertices become fresh
/// singleton-ish blocks seeded round-robin.
fn voronoi_blocks(g: &CsrGraph, blocks: usize, seed: u64) -> Vec<u32> {
    let n = g.node_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut label = vec![u32::MAX; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for b in 0..blocks.min(n) {
        // Sample distinct seeds (retry on collision).
        loop {
            let s = node_id(rng.random_range(0..n));
            if label[s as usize] == u32::MAX {
                label[s as usize] = b as u32;
                queue.push_back(s);
                break;
            }
        }
    }
    while let Some(v) = queue.pop_front() {
        let lv = label[v as usize];
        for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
            if label[w as usize] == u32::MAX {
                label[w as usize] = lv;
                queue.push_back(w);
            }
        }
    }
    // Isolated leftovers: spread round-robin.
    let mut next = 0u32;
    for l in label.iter_mut() {
        if *l == u32::MAX {
            // audit:allow(lossy-id-cast): block count, bounded by the
            // builder-asserted node bound in practice
            *l = next % blocks.max(1) as u32;
            next += 1;
        }
    }
    label
}

/// Power-iteration PPR on a block-centric engine.
pub struct BlogelPpr<'g> {
    graph: &'g CsrGraph,
    workers: usize,
    /// Block label per vertex.
    block_of: Vec<u32>,
    /// Worker owning each block.
    worker_of_block: Vec<u32>,
    /// Vertices of each block.
    block_members: Vec<Vec<NodeId>>,
    /// Cap on local sweeps per superstep.
    local_sweeps: u32,
}

impl<'g> BlogelPpr<'g> {
    /// Partition `graph` into `blocks` GVD blocks spread over `workers`.
    pub fn new(graph: &'g CsrGraph, workers: usize, blocks: usize) -> Self {
        assert!(workers >= 1 && blocks >= 1);
        let block_of = voronoi_blocks(graph, blocks, 0xB10_6E1);
        let mut block_members = vec![Vec::new(); blocks];
        for (v, &b) in block_of.iter().enumerate() {
            block_members[b as usize].push(v as NodeId);
        }
        // audit:allow(lossy-id-cast): worker index, bounded by `% workers`
        let worker_of_block = (0..blocks).map(|b| (b % workers) as u32).collect();
        Self {
            graph,
            workers,
            block_of,
            worker_of_block,
            block_members,
            local_sweeps: 100,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker placement of a vertex (via its block).
    pub fn worker_of(&self, v: NodeId) -> u32 {
        self.worker_of_block[self.block_of[v as usize] as usize]
    }

    /// Compute the PPV of `source` by block-synchronous iteration.
    pub fn query(&self, source: NodeId, cfg: &PprConfig) -> (SparseVector, BspRunStats) {
        cfg.validate();
        let t0 = Stopwatch::start();
        let n = self.graph.node_count();
        let alpha = cfg.alpha;
        let mut stats = BspRunStats::default();

        let mut value = vec![0.0f64; n];
        // External (cross-block) incoming contribution per vertex, frozen
        // during a superstep.
        let mut external = vec![0.0f64; n];

        for _ in 0..cfg.max_iterations {
            stats.supersteps += 1;
            let mut max_diff = 0.0f64;

            // Block phase: every block solves its local system with
            // `external` frozen (Gauss–Seidel sweeps over block members).
            let block_results: Vec<(usize, Vec<f64>, f64)> = std::thread::scope(|scope| {
                let value = &value;
                let external = &external;
                let handles: Vec<_> = (0..self.block_members.len())
                    .map(|b| {
                        scope.spawn(move || {
                            let members = &self.block_members[b];
                            let mut local: Vec<f64> =
                                members.iter().map(|&v| value[v as usize]).collect();
                            let index_of: HashMap<NodeId, usize> = members
                                .iter()
                                .enumerate()
                                .map(|(i, &v)| (v, i))
                                .collect();
                            let mut block_diff = 0.0f64;
                            for sweep in 0..self.local_sweeps {
                                let mut sweep_diff = 0.0f64;
                                for (i, &v) in members.iter().enumerate() {
                                    // new(v) = α·x + (1-α)·(internal + external)
                                    let mut acc = external[v as usize];
                                    for &u in self.graph.in_neighbors(v) {
                                        if self.block_of[u as usize] == self.block_of[v as usize] {
                                            let deg = self.graph.degree(u) as f64;
                                            let uv = match index_of.get(&u) {
                                                Some(&j) => local[j],
                                                None => 0.0,
                                            };
                                            acc += uv / deg;
                                        }
                                    }
                                    let mut new = (1.0 - alpha) * acc;
                                    if v == source {
                                        new += alpha;
                                    }
                                    let d = (new - local[i]).abs();
                                    if d > sweep_diff {
                                        sweep_diff = d;
                                    }
                                    local[i] = new;
                                }
                                if sweep == 0 {
                                    block_diff = sweep_diff;
                                }
                                if sweep_diff <= cfg.epsilon {
                                    break;
                                }
                            }
                            (b, local, block_diff)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("block thread"))
                    .collect()
            });

            for (b, local, block_diff) in block_results {
                for (i, &v) in self.block_members[b].iter().enumerate() {
                    value[v as usize] = local[i];
                }
                if block_diff > max_diff {
                    max_diff = block_diff;
                }
            }

            // Exchange phase: cross-block contributions, combined per
            // (source block, target vertex).
            for slot in external.iter_mut() {
                *slot = 0.0;
            }
            for (b, members) in self.block_members.iter().enumerate() {
                let mut combined: BTreeMap<NodeId, f64> = BTreeMap::new();
                for &u in members {
                    let mass = value[u as usize];
                    if mass == 0.0 {
                        continue;
                    }
                    let deg = self.graph.degree(u);
                    if deg == 0 {
                        continue;
                    }
                    let share = mass / deg as f64;
                    for &t in self.graph.out(u) {
                        if self.block_of[t as usize] != b as u32 {
                            *combined.entry(t).or_insert(0.0) += share;
                        }
                    }
                }
                let my_worker = self.worker_of_block[b];
                for (&t, &m) in &combined {
                    external[t as usize] += m;
                    let tw = self.worker_of_block[self.block_of[t as usize] as usize];
                    if tw != my_worker {
                        stats.cross_worker_messages += 1;
                        stats.network_bytes += 12;
                    }
                }
            }

            if max_diff <= cfg.epsilon {
                break;
            }
        }

        stats.elapsed_seconds = t0.elapsed_seconds();
        (SparseVector::from_dense(&value, None, 0.0), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn sample() -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: 200,
                depth: 4,
                locality: 0.9,
                ..Default::default()
            },
            5,
        )
    }

    fn tight() -> PprConfig {
        PprConfig {
            epsilon: 1e-10,
            ..Default::default()
        }
    }

    #[test]
    fn converges_to_dense_oracle() {
        let g = sample();
        let engine = BlogelPpr::new(&g, 4, 8);
        let (ppv, stats) = engine.query(17, &tight());
        let exact = dense_ppv(&g, 17, 0.15);
        for v in 0..200u32 {
            assert!(
                (ppv.get(v) - exact[v as usize]).abs() < 1e-6,
                "v {v}: {} vs {}",
                ppv.get(v),
                exact[v as usize]
            );
        }
        assert!(stats.supersteps >= 2);
    }

    #[test]
    fn fewer_supersteps_than_pregel() {
        let g = sample();
        let cfg = PprConfig::default();
        let (_, bs) = BlogelPpr::new(&g, 4, 8).query(9, &cfg);
        let (_, ps) = crate::pregel::PregelPpr::new(&g, 4).query(9, &cfg);
        assert!(
            bs.supersteps < ps.supersteps,
            "blogel {} vs pregel {}",
            bs.supersteps,
            ps.supersteps
        );
    }

    #[test]
    fn less_traffic_than_pregel() {
        let g = sample();
        let cfg = PprConfig::default();
        let (_, bs) = BlogelPpr::new(&g, 4, 8).query(9, &cfg);
        let (_, ps) = crate::pregel::PregelPpr::new(&g, 4).query(9, &cfg);
        assert!(
            bs.network_bytes < ps.network_bytes,
            "blogel {} vs pregel {}",
            bs.network_bytes,
            ps.network_bytes
        );
    }

    #[test]
    fn single_block_no_traffic() {
        let g = sample();
        let engine = BlogelPpr::new(&g, 1, 1);
        let (_, stats) = engine.query(3, &PprConfig::default());
        assert_eq!(stats.network_bytes, 0);
        // One block solved locally: converges in very few supersteps.
        assert!(stats.supersteps <= 3);
    }
}
