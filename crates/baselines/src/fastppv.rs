//! FastPPV-style hub-based scheduled approximation (Zhu et al. \\[49\\]).
//!
//! FastPPV partitions tours by the hub nodes they pass and aggregates
//! contributions from the most important tour sets first, with the hub
//! count trading accuracy for speed. This stand-in mirrors that structure:
//!
//! * **offline** — the `h` highest-global-PageRank nodes become hubs; each
//!   hub's PPV is precomputed and *truncated* to entries above
//!   `prune_threshold` (the paper notes FastPPV discards scores < 1e-4);
//! * **online** — a forward push from the query runs with hubs blocked;
//!   tours that reach a hub are resolved through the truncated hub PPV in
//!   one step (`parked mass × hub PPV`) instead of being walked further.
//!
//! With exact hub vectors this would be exact; truncation makes it
//! approximate in exactly the way the paper's Figures 25/26 measure
//! (dropped low-score tails, perturbed top-k order). More hubs shift work
//! from the online push to precomputed lookups — the Fast-100 vs
//! Fast-1000 vs Fast-10000 behaviour of Figure 24.

use ppr_core::power::global_pagerank;
use ppr_core::push::PushEngine;
use ppr_core::{PprConfig, SparseVector};
use ppr_graph::{CsrGraph, NodeId};

/// FastPPV-style index.
pub struct FastPpv<'g> {
    graph: &'g CsrGraph,
    cfg: PprConfig,
    /// Sorted hub ids.
    hubs: Vec<NodeId>,
    blocked: Vec<bool>,
    /// Truncated PPV per hub (aligned with `hubs`).
    hub_ppvs: Vec<SparseVector>,
    /// Scores below this are discarded, offline *and* in query results —
    /// the paper notes "in FastPPV the PPV scores less than 1e-4 are
    /// discarded" (§6.2.9), which is the source of its accuracy loss.
    prune_threshold: f64,
}

impl<'g> FastPpv<'g> {
    /// Build with the `hub_count` highest-PageRank nodes as hubs,
    /// truncating stored hub vectors at `prune_threshold`.
    pub fn build(
        graph: &'g CsrGraph,
        hub_count: usize,
        prune_threshold: f64,
        cfg: &PprConfig,
    ) -> Self {
        cfg.validate();
        let n = graph.node_count();
        let hub_count = hub_count.min(n);

        // Global PageRank ranks hub candidates (as in FastPPV/Jeh–Widom).
        let pr = global_pagerank(graph, cfg);
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_unstable_by(|&a, &b| pr[b as usize].partial_cmp(&pr[a as usize]).unwrap());
        let mut hubs: Vec<NodeId> = order[..hub_count].to_vec();
        hubs.sort_unstable();

        let mut blocked = vec![false; n];
        for &h in &hubs {
            blocked[h as usize] = true;
        }

        // Precompute truncated hub PPVs.
        let mut engine = PushEngine::new(n);
        let no_block = vec![false; n];
        let hub_ppvs: Vec<SparseVector> = hubs
            .iter()
            .map(|&h| {
                let mut v = engine.run(graph, h, &no_block, cfg).partial;
                v.truncate_below(prune_threshold);
                v
            })
            .collect();

        Self {
            graph,
            cfg: *cfg,
            hubs,
            blocked,
            hub_ppvs,
            prune_threshold,
        }
    }

    /// Number of hubs.
    pub fn hub_count(&self) -> usize {
        self.hubs.len()
    }

    /// Approximate PPV of `source`.
    pub fn query(&self, source: NodeId) -> SparseVector {
        let n = self.graph.node_count();
        let mut engine = PushEngine::new(n);
        let out = engine.run(self.graph, source, &self.blocked, &self.cfg);

        let mut dense = vec![0.0f64; n];
        let mut touched: Vec<NodeId> = Vec::new();
        out.partial.scatter_into(&mut dense, &mut touched, 1.0);
        // Resolve parked hub mass through the precomputed vectors: mass e
        // waiting at hub h continues exactly like fresh surfers from h,
        // contributing e · r_h.
        for (h, e) in out.hub_residual.iter() {
            let rank = self.hubs.binary_search(&h).expect("residual at non-hub");
            self.hub_ppvs[rank].scatter_into(&mut dense, &mut touched, e);
        }
        touched.sort_unstable();
        touched.dedup();
        SparseVector::from_entries(
            touched
                .into_iter()
                .filter_map(|v| {
                    let x = dense[v as usize];
                    (x != 0.0 && x.abs() > self.prune_threshold).then_some((v, x))
                })
                .collect(),
        )
    }

    /// Bytes of precomputed hub vectors (offline space accounting).
    pub fn storage_bytes(&self) -> u64 {
        self.hub_ppvs.iter().map(SparseVector::wire_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
    use ppr_metrics_shim::*;

    /// Local micro-metrics to avoid a cyclic dev-dependency on ppr-metrics.
    mod ppr_metrics_shim {
        pub fn l1_err(a: &[f64], b: &ppr_core::SparseVector) -> f64 {
            (0..a.len() as u32).map(|v| (a[v as usize] - b.get(v)).abs()).sum()
        }
    }

    fn sample() -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: 300,
                depth: 4,
                ..Default::default()
            },
            19,
        )
    }

    #[test]
    fn no_truncation_is_nearly_exact() {
        let g = sample();
        let cfg = PprConfig {
            epsilon: 1e-9,
            ..Default::default()
        };
        let idx = FastPpv::build(&g, 20, 0.0, &cfg);
        let exact = dense_ppv(&g, 7, 0.15);
        let got = idx.query(7);
        assert!(l1_err(&exact, &got) < 1e-4);
    }

    #[test]
    fn truncation_degrades_accuracy() {
        let g = sample();
        let cfg = PprConfig::default();
        let exact = dense_ppv(&g, 7, 0.15);
        let fine = FastPpv::build(&g, 20, 1e-7, &cfg);
        let coarse = FastPpv::build(&g, 20, 1e-3, &cfg);
        let e_fine = l1_err(&exact, &fine.query(7));
        let e_coarse = l1_err(&exact, &coarse.query(7));
        assert!(
            e_coarse >= e_fine,
            "coarse {e_coarse} should be no better than fine {e_fine}"
        );
    }

    #[test]
    fn more_hubs_less_storage_per_query_work() {
        let g = sample();
        let cfg = PprConfig::default();
        let small = FastPpv::build(&g, 5, 1e-4, &cfg);
        let large = FastPpv::build(&g, 50, 1e-4, &cfg);
        assert_eq!(small.hub_count(), 5);
        assert_eq!(large.hub_count(), 50);
        assert!(large.storage_bytes() > small.storage_bytes());
    }

    #[test]
    fn hub_query_works() {
        let g = sample();
        let cfg = PprConfig {
            epsilon: 1e-9,
            ..Default::default()
        };
        let idx = FastPpv::build(&g, 10, 0.0, &cfg);
        // Query one of the hubs themselves.
        let h = idx.hubs[0];
        let exact = dense_ppv(&g, h, 0.15);
        let got = idx.query(h);
        assert!(l1_err(&exact, &got) < 1e-4);
    }
}
