//! Dense linear-system PPR solver — the ground truth oracle for tests.
//!
//! The PPV of a source `u` is the solution of
//! `(I - (1-α)·Pᵀ) r = α·x_u` where `P(v, w) = 1/degree(v)` for each
//! traversable edge `v -> w` (degree is the *original* out-degree, so this
//! solver is virtual-subgraph aware through [`Adjacency`]). Gaussian
//! elimination with partial pivoting gives machine-precision answers on
//! graphs small enough for an O(n³) solve, letting every iterative kernel
//! and both distributed indexes be validated against exact algebra.

use crate::adjacency::Adjacency;
use crate::NodeId;

/// Hard cap: dense solves are for tests and tiny examples only.
pub const DENSE_MAX_NODES: usize = 4096;

/// Solve the PPV of `source` exactly. O(n³) time, O(n²) space.
///
/// # Panics
/// Panics if the graph exceeds [`DENSE_MAX_NODES`] or `alpha` is outside
/// `(0, 1)`.
pub fn dense_ppv<A: Adjacency>(adj: &A, source: NodeId, alpha: f64) -> Vec<f64> {
    let n = adj.n();
    assert!(n <= DENSE_MAX_NODES, "dense solver capped at {DENSE_MAX_NODES} nodes");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
    assert!((source as usize) < n, "source out of range");
    if n == 0 {
        return Vec::new();
    }

    // Build M = I - (1-α) Pᵀ, row-major.
    let mut m = vec![0.0f64; n * n];
    for i in 0..n {
        m[i * n + i] = 1.0;
    }
    for v in 0..n as NodeId {
        let d = adj.degree(v);
        if d == 0 {
            continue;
        }
        let w = (1.0 - alpha) / d as f64;
        for &t in adj.out(v) {
            // Row t (target), column v (source of mass).
            m[t as usize * n + v as usize] -= w;
        }
    }

    let mut b = vec![0.0f64; n];
    b[source as usize] = alpha;
    solve_in_place(&mut m, &mut b, n);
    b
}

/// Exact PPV for a multi-node preference set with weights summing to 1.
pub fn dense_ppv_preference<A: Adjacency>(
    adj: &A,
    preference: &[(NodeId, f64)],
    alpha: f64,
) -> Vec<f64> {
    let n = adj.n();
    assert!(n <= DENSE_MAX_NODES);
    let mut out = vec![0.0f64; n];
    // Linearity (Jeh–Widom Theorem 1): PPV of a preference vector is the
    // weighted sum of single-node PPVs.
    for &(u, w) in preference {
        let r = dense_ppv(adj, u, alpha);
        for (o, x) in out.iter_mut().zip(r) {
            *o += w * x;
        }
    }
    out
}

/// In-place Gaussian elimination with partial pivoting; solves `m x = b`,
/// leaving the solution in `b`.
fn solve_in_place(m: &mut [f64], b: &mut [f64], n: usize) {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        let mut best = m[col * n + col].abs();
        for r in col + 1..n {
            let v = m[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        assert!(best > 1e-14, "singular PPR system (should be impossible: matrix is strictly diagonally dominant)");
        if piv != col {
            for c in 0..n {
                m.swap(piv * n + c, col * n + c);
            }
            b.swap(piv, col);
        }
        let inv = 1.0 / m[col * n + col];
        for r in col + 1..n {
            let f = m[r * n + col] * inv;
            if f == 0.0 {
                continue;
            }
            m[r * n + col] = 0.0;
            for c in col + 1..n {
                m[r * n + c] -= f * m[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= m[col * n + c] * b[c];
        }
        b[col] = acc / m[col * n + col];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::view::full_view;

    const ALPHA: f64 = 0.15;

    #[test]
    fn single_node_no_edges() {
        let g = from_edges(1, &[]);
        let r = dense_ppv(&g, 0, ALPHA);
        // Dangling source: only the length-0 tour, weight α.
        assert!((r[0] - ALPHA).abs() < 1e-12);
    }

    #[test]
    fn two_cycle_closed_form() {
        // 0 <-> 1. Tours from 0 to 0 have even length 2k with weight
        // α(1-α)^{2k}; r0(0) = α / (1 - (1-α)^2), r0(1) = α(1-α)/(1-(1-α)^2).
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let r = dense_ppv(&g, 0, ALPHA);
        let q = 1.0 - ALPHA;
        let denom = 1.0 - q * q;
        assert!((r[0] - ALPHA / denom).abs() < 1e-12);
        assert!((r[1] - ALPHA * q / denom).abs() < 1e-12);
        // No dangling nodes: mass conserves to exactly 1.
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_absorbs_at_dangling_end() {
        // 0 -> 1 -> 2 (2 dangling). Mass sum < 1.
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let r = dense_ppv(&g, 0, ALPHA);
        let q = 1.0 - ALPHA;
        assert!((r[0] - ALPHA).abs() < 1e-12);
        assert!((r[1] - ALPHA * q).abs() < 1e-12);
        // All mass reaching node 2 is absorbed there: r2 counts tours ending
        // at 2 with the trailing α plus the leaked continuation. Under the
        // tour semantics r2 = α(1-α)^2 only.
        assert!((r[2] - ALPHA * q * q).abs() < 1e-12);
        assert!(r.iter().sum::<f64>() < 1.0);
    }

    #[test]
    fn preference_set_is_linear_combination() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let a = dense_ppv(&g, 0, ALPHA);
        let b = dense_ppv(&g, 1, ALPHA);
        let mix = dense_ppv_preference(&g, &[(0, 0.3), (1, 0.7)], ALPHA);
        for i in 0..3 {
            assert!((mix[i] - (0.3 * a[i] + 0.7 * b[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn full_view_matches_graph_solution() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 0)]);
        let v = full_view(&g);
        for s in 0..4 {
            let a = dense_ppv(&g, s, ALPHA);
            let b = dense_ppv(&v, s, ALPHA);
            for i in 0..4 {
                assert!((a[i] - b[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn non_negative_and_bounded() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        for s in 0..5 {
            let r = dense_ppv(&g, s, ALPHA);
            for &x in &r {
                assert!(x >= -1e-15);
            }
            let sum: f64 = r.iter().sum();
            assert!(sum <= 1.0 + 1e-12);
        }
    }
}
