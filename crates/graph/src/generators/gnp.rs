//! Directed Erdős–Rényi G(n, p) via geometric edge skipping.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::{node_id, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a directed G(n, p) graph (no self-loops), deterministic in
/// `seed`. Uses the skip-length trick so the cost is O(n²p), not O(n²).
pub fn gnp_directed(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n == 0 || p == 0.0 {
        return b.build();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if u != v {
                    b.push_edge(u, v);
                }
            }
        }
        return b.build();
    }

    let log_q = (1.0 - p).ln();
    // Walk the n*(n-1) potential-edge index space with geometric jumps.
    let total = (n as u64) * (n as u64 - 1);
    let mut idx: u64 = 0;
    loop {
        let u: f64 = rng.random();
        // Number of misses before the next hit.
        let skip = ((1.0 - u).ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        let src = node_id((idx / (n as u64 - 1)) as usize);
        let mut dst = node_id((idx % (n as u64 - 1)) as usize);
        if dst >= src {
            dst += 1; // skip the diagonal
        }
        b.push_edge(src, dst);
        idx += 1;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = gnp_directed(200, 0.05, 42);
        let b = gnp_directed(200, 0.05, 42);
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(a.edges().eq(b.edges()));
    }

    #[test]
    fn different_seed_differs() {
        let a = gnp_directed(200, 0.05, 1);
        let b = gnp_directed(200, 0.05, 2);
        assert!(!a.edges().eq(b.edges()));
    }

    #[test]
    fn edge_count_near_expectation() {
        let n = 500;
        let p = 0.02;
        let g = gnp_directed(n, p, 9);
        let expect = (n * (n - 1)) as f64 * p;
        let got = g.edge_count() as f64;
        assert!(
            (got - expect).abs() < 4.0 * expect.sqrt() + 10.0,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn extremes() {
        assert_eq!(gnp_directed(10, 0.0, 3).edge_count(), 0);
        assert_eq!(gnp_directed(5, 1.0, 3).edge_count(), 20);
        assert_eq!(gnp_directed(0, 0.5, 3).node_count(), 0);
    }

    #[test]
    fn no_self_loops() {
        let g = gnp_directed(50, 0.3, 11);
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }
}
