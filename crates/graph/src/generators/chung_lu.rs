//! Directed Chung–Lu power-law graphs.
//!
//! Every node draws an out-weight and an in-weight from a truncated power
//! law; `m` edges are sampled by picking the source proportional to
//! out-weight and the target proportional to in-weight. This matches the
//! degree skew of web graphs (the paper's Web and PLD datasets) without
//! imposing community structure — used standalone in tests and mixed into
//! the HSBM generator for realistic dataset stand-ins.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::{node_id, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`chung_lu_directed`].
#[derive(Clone, Copy, Debug)]
pub struct ChungLuConfig {
    /// Node count.
    pub nodes: usize,
    /// Target edge count (before deduplication).
    pub edges: usize,
    /// Power-law exponent for both weight distributions (> 1).
    pub exponent: f64,
    /// Maximum weight as a multiple of the minimum (degree-cap proxy).
    pub max_weight_ratio: f64,
}

impl Default for ChungLuConfig {
    fn default() -> Self {
        Self {
            nodes: 1000,
            edges: 5000,
            exponent: 2.2,
            max_weight_ratio: 1000.0,
        }
    }
}

/// Sample a Chung–Lu directed graph, deterministic in `seed`.
pub fn chung_lu_directed(cfg: &ChungLuConfig, seed: u64) -> CsrGraph {
    assert!(cfg.exponent > 1.0);
    let n = cfg.nodes;
    let mut b = GraphBuilder::new(n);
    if n < 2 || cfg.edges == 0 {
        return b.build();
    }
    let mut rng = StdRng::seed_from_u64(seed);

    let draw_weights = |rng: &mut StdRng| -> Vec<f64> {
        let e = 1.0 - cfg.exponent;
        let a = 1.0f64;
        let bb = cfg.max_weight_ratio.max(1.0 + 1e-9);
        (0..n)
            .map(|_| {
                let u: f64 = rng.random();
                (a.powf(e) + u * (bb.powf(e) - a.powf(e))).powf(1.0 / e)
            })
            .collect()
    };
    let w_out = draw_weights(&mut rng);
    let w_in = draw_weights(&mut rng);

    let cum = |w: &[f64]| -> Vec<f64> {
        let mut c = Vec::with_capacity(w.len());
        let mut s = 0.0;
        for &x in w {
            s += x;
            c.push(s);
        }
        c
    };
    let c_out = cum(&w_out);
    let c_in = cum(&w_in);
    let t_out = *c_out.last().unwrap();
    let t_in = *c_in.last().unwrap();

    let pick = |c: &[f64], total: f64, rng: &mut StdRng| -> NodeId {
        let x: f64 = rng.random::<f64>() * total;
        node_id(c.partition_point(|&v| v < x).min(n - 1))
    };

    for _ in 0..cfg.edges {
        let u = pick(&c_out, t_out, &mut rng);
        let v = pick(&c_in, t_in, &mut rng);
        if u != v {
            b.push_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = ChungLuConfig::default();
        let a = chung_lu_directed(&cfg, 5);
        let b = chung_lu_directed(&cfg, 5);
        assert!(a.edges().eq(b.edges()));
    }

    #[test]
    fn respects_scale() {
        let cfg = ChungLuConfig {
            nodes: 2000,
            edges: 10_000,
            ..Default::default()
        };
        let g = chung_lu_directed(&cfg, 3);
        assert_eq!(g.node_count(), 2000);
        // Dedup + self-loop removal shrinks it, but not by much.
        assert!(g.edge_count() > 8_000, "{}", g.edge_count());
        assert!(g.edge_count() <= 10_000);
    }

    #[test]
    fn produces_degree_skew() {
        let cfg = ChungLuConfig {
            nodes: 3000,
            edges: 20_000,
            exponent: 2.0,
            max_weight_ratio: 500.0,
        };
        let g = chung_lu_directed(&cfg, 17);
        let mut degs: Vec<u32> = (0..g.node_count() as NodeId).map(|v| g.out_degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = degs[..30].iter().map(|&d| d as u64).sum();
        let total: u64 = degs.iter().map(|&d| d as u64).sum();
        // Top 1% of nodes carry far more than 1% of edges.
        assert!(top1pct as f64 > 0.05 * total as f64);
    }

    #[test]
    fn tiny_inputs() {
        let g = chung_lu_directed(
            &ChungLuConfig {
                nodes: 1,
                edges: 10,
                ..Default::default()
            },
            1,
        );
        assert_eq!(g.edge_count(), 0);
    }
}
