//! Hierarchical stochastic block model — the dataset stand-in engine.
//!
//! Nodes `0..n` are leaves of an implicit balanced binary tree of depth
//! `depth`; the block of a node at level `d` is the contiguous id range
//! under its depth-`d` ancestor. Each node draws a power-law out-degree;
//! each edge independently walks up from the leaf block with probability
//! `1 - locality` per level and then targets a uniform node inside the
//! chosen ancestor block.
//!
//! With `locality` close to 1, the expected number of edges crossing the
//! top-level bisection is a small fraction of `m`, so balanced partitions
//! have small vertex separators — the property (Appendix D) that makes
//! GPA/HGPA space costs collapse, and the property real community-structured
//! graphs exhibit. `reciprocity` optionally mirrors edges to imitate social
//! graphs (Youtube, Meetup); web-like configs leave it low.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::generators::power_law_degree;
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`hierarchical_sbm`].
#[derive(Clone, Copy, Debug)]
pub struct HsbmConfig {
    /// Node count.
    pub nodes: usize,
    /// Depth of the community hierarchy (>= 1).
    pub depth: u32,
    /// Minimum out-degree.
    pub min_degree: u32,
    /// Maximum out-degree.
    pub max_degree: u32,
    /// Power-law exponent of the out-degree distribution.
    pub degree_exponent: f64,
    /// Per-level probability that an edge stays inside the current block.
    pub locality: f64,
    /// Probability that each edge is mirrored (`v -> u` added for `u -> v`).
    pub reciprocity: f64,
    /// Probability that an edge ignores the hierarchy entirely and picks a
    /// uniform global target. Real graphs' community boundaries are fuzzy;
    /// without this, top-level cuts are unrealistically close to empty and
    /// the hierarchy's upper levels select no hubs (unlike the paper's
    /// Tables 2–5).
    pub noise: f64,
}

impl Default for HsbmConfig {
    fn default() -> Self {
        Self {
            nodes: 1000,
            depth: 5,
            min_degree: 2,
            max_degree: 100,
            degree_exponent: 2.3,
            locality: 0.9,
            reciprocity: 0.0,
            noise: 0.05,
        }
    }
}

/// Block (id range) of node `u` at hierarchy level `d` when `[0, n)` is
/// split by repeated halving.
fn block_range(n: usize, u: NodeId, d: u32) -> (usize, usize) {
    let (mut lo, mut hi) = (0usize, n);
    for _ in 0..d {
        if hi - lo <= 1 {
            break;
        }
        let mid = lo + (hi - lo) / 2;
        if (u as usize) < mid {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (lo, hi)
}

/// Generate a hierarchical SBM graph, deterministic in `seed`.
pub fn hierarchical_sbm(cfg: &HsbmConfig, seed: u64) -> CsrGraph {
    assert!(cfg.depth >= 1);
    assert!((0.0..=1.0).contains(&cfg.locality));
    assert!((0.0..=1.0).contains(&cfg.reciprocity));
    assert!((0.0..=1.0).contains(&cfg.noise));
    let n = cfg.nodes;
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let mut rng = StdRng::seed_from_u64(seed);

    for u in 0..n as NodeId {
        let deg = power_law_degree(&mut rng, cfg.min_degree, cfg.max_degree, cfg.degree_exponent);
        for _ in 0..deg {
            // Choose the level: global noise edges pick level 0 outright;
            // otherwise start at the leaves and climb with prob 1-locality.
            let mut d = if rng.random::<f64>() < cfg.noise {
                0
            } else {
                cfg.depth
            };
            while d > 0 && rng.random::<f64>() >= cfg.locality {
                d -= 1;
            }
            let (lo, hi) = block_range(n, u, d);
            let span = hi - lo;
            if span <= 1 {
                continue; // block is just `u` itself
            }
            // Uniform target in the block, excluding u.
            let mut v = lo + rng.random_range(0..span - 1);
            if v >= u as usize {
                v += 1;
            }
            let v = v as NodeId;
            b.push_edge(u, v);
            if cfg.reciprocity > 0.0 && rng.random::<f64>() < cfg.reciprocity {
                b.push_edge(v, u);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_halving() {
        assert_eq!(block_range(8, 0, 0), (0, 8));
        assert_eq!(block_range(8, 0, 1), (0, 4));
        assert_eq!(block_range(8, 5, 1), (4, 8));
        assert_eq!(block_range(8, 5, 2), (4, 6));
        assert_eq!(block_range(8, 5, 3), (5, 6));
        // Odd sizes keep working.
        assert_eq!(block_range(7, 6, 1), (3, 7));
        assert_eq!(block_range(7, 0, 10), (0, 1));
    }

    #[test]
    fn deterministic() {
        let cfg = HsbmConfig::default();
        let a = hierarchical_sbm(&cfg, 8);
        let b = hierarchical_sbm(&cfg, 8);
        assert!(a.edges().eq(b.edges()));
    }

    #[test]
    fn locality_limits_top_level_cut() {
        let cfg = HsbmConfig {
            nodes: 4000,
            depth: 6,
            locality: 0.95,
            ..Default::default()
        };
        let g = hierarchical_sbm(&cfg, 21);
        let mid = cfg.nodes / 2;
        let crossing = g
            .edges()
            .filter(|&(u, v)| ((u as usize) < mid) != ((v as usize) < mid))
            .count();
        let frac = crossing as f64 / g.edge_count() as f64;
        // With locality 0.95 an edge crosses the top split only if it climbs
        // all 6 levels: expected fraction ~0.05^... « 5%.
        assert!(frac < 0.05, "crossing fraction {frac}");
    }

    #[test]
    fn low_locality_mixes_globally() {
        let cfg = HsbmConfig {
            nodes: 4000,
            depth: 6,
            locality: 0.0,
            ..Default::default()
        };
        let g = hierarchical_sbm(&cfg, 21);
        let mid = cfg.nodes / 2;
        let crossing = g
            .edges()
            .filter(|&(u, v)| ((u as usize) < mid) != ((v as usize) < mid))
            .count();
        let frac = crossing as f64 / g.edge_count() as f64;
        assert!(frac > 0.4, "crossing fraction {frac}");
    }

    #[test]
    fn reciprocity_adds_back_edges() {
        let cfg = HsbmConfig {
            nodes: 500,
            reciprocity: 1.0,
            ..Default::default()
        };
        let g = hierarchical_sbm(&cfg, 4);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "missing reciprocal of ({u},{v})");
        }
    }

    #[test]
    fn degrees_respect_bounds_before_dedup() {
        let cfg = HsbmConfig {
            nodes: 300,
            min_degree: 3,
            max_degree: 10,
            ..Default::default()
        };
        let g = hierarchical_sbm(&cfg, 4);
        for v in 0..g.node_count() as NodeId {
            // Dedup can only reduce the sampled degree.
            assert!(g.out_degree(v) <= 10);
        }
        assert!(g.stats().avg_out_degree >= 2.0);
    }
}
