//! Seeded synthetic graph generators.
//!
//! The paper evaluates on five real graphs (Email, Web, Youtube, PLD,
//! Meetup). Those crawls are not redistributable here, so `ppr-workload`
//! parameterises the generators in this module to produce structural
//! stand-ins. The key property the GPA/HGPA algorithms rely on — and that
//! Appendix D argues real social/web graphs have — is *small vertex
//! separators*: community-structured topology where balanced partitions cut
//! few edges. [`hsbm`] reproduces exactly that (recursive communities with
//! geometrically decaying inter-community traffic) together with power-law
//! degree skew.

pub mod chung_lu;
pub mod gnp;
pub mod hsbm;

pub use chung_lu::{chung_lu_directed, ChungLuConfig};
pub use gnp::gnp_directed;
pub use hsbm::{hierarchical_sbm, HsbmConfig};

use rand::Rng;

/// Sample a power-law out-degree in `[d_min, d_max]` with exponent `gamma`
/// (density ∝ d^-gamma) by inverse-transform sampling.
pub(crate) fn power_law_degree<R: Rng>(rng: &mut R, d_min: u32, d_max: u32, gamma: f64) -> u32 {
    debug_assert!(d_min >= 1 && d_max >= d_min && gamma > 1.0);
    let u: f64 = rng.random();
    let a = d_min as f64;
    let b = d_max as f64 + 1.0;
    let e = 1.0 - gamma;
    // CDF inversion for the continuous Pareto truncated to [a, b).
    let x = (a.powf(e) + u * (b.powf(e) - a.powf(e))).powf(1.0 / e);
    (x as u32).clamp(d_min, d_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_degrees_in_range_and_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 2]; // [d <= 3, d > 3]
        for _ in 0..10_000 {
            let d = power_law_degree(&mut rng, 1, 100, 2.5);
            assert!((1..=100).contains(&d));
            if d <= 3 {
                counts[0] += 1;
            } else {
                counts[1] += 1;
            }
        }
        // Heavy skew toward small degrees.
        assert!(counts[0] > counts[1] * 2, "{counts:?}");
    }
}
