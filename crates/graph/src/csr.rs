//! Immutable compressed-sparse-row directed graph.
//!
//! [`CsrGraph`] stores both out- and in-adjacency. Out-adjacency drives the
//! random-surfer kernels; in-adjacency is used by the partitioner (which
//! works on the symmetrised structure) and by generators/analytics.

use crate::adjacency::{Adjacency, InAdjacency};
use crate::NodeId;

/// Immutable directed graph in CSR form.
///
/// Construction goes through [`GraphBuilder`], which sorts and deduplicates
/// edges. Self-loops are rejected by default (a PPR tour stepping `v -> v`
/// is permitted by the model, but none of the paper's datasets contain
/// self-loops and the partitioner assumes their absence; enable them
/// explicitly with [`GraphBuilder::allow_self_loops`] if needed).
#[derive(Clone, Debug)]
pub struct CsrGraph {
    n: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
}

impl CsrGraph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of (deduplicated) directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbours of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbours of `v`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> u32 {
        // audit:allow(lossy-id-cast): degree <= n, asserted at build time
        (self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]) as u32
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> u32 {
        // audit:allow(lossy-id-cast): degree <= n, asserted at build time
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as u32
    }

    /// Iterator over all edges `(src, dst)` in source order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n as NodeId)
            .flat_map(move |v| self.out_neighbors(v).iter().map(move |&w| (v, w)))
    }

    /// True if the directed edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Nodes with no outgoing edges (dangling nodes).
    pub fn dangling_nodes(&self) -> Vec<NodeId> {
        (0..self.n as NodeId)
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }

    /// Undirected-degree of `v` counting each distinct neighbour once in
    /// each direction (used by the partitioner for balance weights).
    pub fn total_degree(&self, v: NodeId) -> u32 {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Basic structural statistics used by the workload harness.
    pub fn stats(&self) -> GraphStats {
        let n = self.n;
        let m = self.edge_count();
        let mut max_out = 0u32;
        let mut dangling = 0usize;
        for v in 0..n as NodeId {
            let d = self.out_degree(v);
            max_out = max_out.max(d);
            if d == 0 {
                dangling += 1;
            }
        }
        GraphStats {
            nodes: n,
            edges: m,
            max_out_degree: max_out,
            dangling_nodes: dangling,
            avg_out_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        }
    }
}

impl Adjacency for CsrGraph {
    #[inline]
    fn n(&self) -> usize {
        self.n
    }
    #[inline]
    fn out(&self, v: NodeId) -> &[NodeId] {
        self.out_neighbors(v)
    }
    #[inline]
    fn degree(&self, v: NodeId) -> u32 {
        self.out_degree(v)
    }
    #[inline]
    fn edge_count(&self) -> usize {
        self.out_targets.len()
    }
}

impl InAdjacency for CsrGraph {
    #[inline]
    fn inn(&self, v: NodeId) -> &[NodeId] {
        self.in_neighbors(v)
    }
}

/// Summary statistics for a graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Number of nodes with zero out-degree.
    pub dangling_nodes: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
}

/// Incremental builder for [`CsrGraph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    allow_self_loops: bool,
}

impl GraphBuilder {
    /// Start a builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "graphs are limited to u32 ids");
        Self {
            n,
            edges: Vec::new(),
            allow_self_loops: false,
        }
    }

    /// Permit self-loop edges `v -> v` (dropped silently by default).
    pub fn allow_self_loops(mut self) -> Self {
        self.allow_self_loops = true;
        self
    }

    /// Add the directed edge `u -> v`. Duplicates are deduplicated at
    /// [`build`](Self::build) time.
    pub fn edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.push_edge(u, v);
        self
    }

    /// Add an edge through a mutable reference (builder-loop friendly).
    pub fn push_edge(&mut self, u: NodeId, v: NodeId) {
        assert!((u as usize) < self.n, "source {u} out of range");
        assert!((v as usize) < self.n, "target {v} out of range");
        if u == v && !self.allow_self_loops {
            return;
        }
        self.edges.push((u, v));
    }

    /// Add every edge in the iterator.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, it: I) {
        for (u, v) in it {
            self.push_edge(u, v);
        }
    }

    /// Number of edges currently staged (before dedup).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finish construction: sorts, deduplicates, and builds both CSR sides.
    pub fn build(self) -> CsrGraph {
        let n = self.n;
        let mut edges = self.edges;
        edges.sort_unstable();
        edges.dedup();

        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _) in &edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = edges.iter().map(|&(_, v)| v).collect();

        // In-CSR via counting sort on target.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v) in &edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; edges.len()];
        for &(u, v) in &edges {
            let c = &mut cursor[v as usize];
            in_sources[*c] = u;
            *c += 1;
        }
        // Sources arrive in sorted order because `edges` is sorted by (u, v),
        // so each in-list is already ascending.

        CsrGraph {
            n,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }
}

/// Build a graph directly from an edge slice.
pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    b.extend_edges(edges.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
        from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn builds_out_adjacency() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(3), &[0]);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn builds_in_adjacency() {
        let g = diamond();
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    fn dedup_and_self_loop_filtering() {
        let g = from_edges(3, &[(0, 1), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_neighbors(1), &[2]);
    }

    #[test]
    fn self_loops_kept_when_allowed() {
        let mut b = GraphBuilder::new(2).allow_self_loops();
        b.push_edge(0, 0);
        b.push_edge(0, 1);
        let g = b.build();
        assert_eq!(g.out_neighbors(0), &[0, 1]);
    }

    #[test]
    fn dangling_detection() {
        let g = from_edges(3, &[(0, 1), (0, 2)]);
        assert_eq!(g.dangling_nodes(), vec![1, 2]);
        assert_eq!(g.stats().dangling_nodes, 2);
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = diamond();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
    }

    #[test]
    fn empty_graph() {
        let g = from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn stats_avg_degree() {
        let g = diamond();
        let s = g.stats();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 5);
        assert!((s.avg_out_degree - 1.25).abs() < 1e-12);
        assert_eq!(s.max_out_degree, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.push_edge(0, 5);
    }
}
