//! The access trait shared by every PPR kernel.
//!
//! Kernels (power iteration, selective expansion, skeleton columns, the
//! dense solver) are generic over [`Adjacency`] so that the *same code*
//! runs on the whole graph and on virtual subgraphs. The trait models the
//! paper's random-surfer semantics directly:
//!
//! * a surfer at `v` leaves along each *traversable* edge with probability
//!   `(1 - alpha) / degree(v)`, where `degree(v)` is the **original**
//!   out-degree of `v` in the full graph;
//! * if `degree(v) > out(v).len()` the remaining mass is absorbed (it walked
//!   to the virtual node of Definition 3 and the tour ends there);
//! * if `degree(v) == 0` the node is dangling and all continuation mass is
//!   absorbed (see [`DanglingPolicy`](https://docs.rs) in `ppr-core` for the
//!   alternative treatments offered by the power-iteration kernel).

use crate::NodeId;

/// Read-only adjacency access in a compact local id space `0..n()`.
pub trait Adjacency {
    /// Number of nodes in this (sub)graph. Valid ids are `0..n() as u32`.
    fn n(&self) -> usize;

    /// Traversable out-neighbours of `v` *within* this (sub)graph.
    fn out(&self, v: NodeId) -> &[NodeId];

    /// Out-degree of `v` in the **original** graph — the denominator of the
    /// per-edge transition probability. Always `>= out(v).len()`.
    fn degree(&self, v: NodeId) -> u32;

    /// Total traversable edges.
    fn edge_count(&self) -> usize;

    /// Convenience: true when the node retains every original out-edge.
    fn is_boundary_free(&self, v: NodeId) -> bool {
        // audit:allow(lossy-id-cast): a neighbour list never exceeds the
        // builder-asserted u32::MAX node bound
        self.out(v).len() as u32 == self.degree(v)
    }
}

/// Adjacency that can also enumerate in-neighbours (required by the
/// residual-push skeleton kernel, which distributes residuals backwards
/// along edges).
pub trait InAdjacency: Adjacency {
    /// Traversable in-neighbours of `v` within this (sub)graph.
    fn inn(&self, v: NodeId) -> &[NodeId];
}

impl<A: InAdjacency + ?Sized> InAdjacency for &A {
    fn inn(&self, v: NodeId) -> &[NodeId] {
        (**self).inn(v)
    }
}

impl<A: Adjacency + ?Sized> Adjacency for &A {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn out(&self, v: NodeId) -> &[NodeId] {
        (**self).out(v)
    }
    fn degree(&self, v: NodeId) -> u32 {
        (**self).degree(v)
    }
    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    #[test]
    fn blanket_ref_impl_delegates() {
        let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).build();
        let r = &g;
        assert_eq!(Adjacency::n(&r), 3);
        assert_eq!(r.out(0), &[1]);
        assert_eq!(r.degree(1), 1);
        assert_eq!(r.edge_count(), 2);
        assert!(r.is_boundary_free(0));
    }
}
