//! Reverse reachability: which sources can reach a given target set?
//!
//! A Personalized PageRank vector is a measure over random walks, and a
//! walk from `s` only notices an edge change `(u, v)` if it visits `u` —
//! i.e. if `s` can reach `u`. "`s` can reach a touched node" is therefore
//! the conservative staleness predicate the serving layer uses to decide
//! which cached PPVs an index update can actually affect (and, crucially,
//! which it provably cannot — those survive the update).
//!
//! Two implementations with identical answers (cross-checked in tests):
//!
//! * [`reverse_reachable`] — one multi-source BFS over the *in*-adjacency,
//!   O(V + E) per call; what the server uses per update batch.
//!   [`forward_reachable`] is its out-adjacency twin (who is reached
//!   *from* the touched set), the staleness predicate for skeleton
//!   columns in incremental index maintenance.
//! * [`SccCondensation`] — Tarjan condensation built once, then any number
//!   of target sets answered by a backward sweep over the component DAG in
//!   O(V + E) worst case but touching only component granularity; useful
//!   when many predicates are evaluated against one graph snapshot (the
//!   incremental updater reuses one across low-churn batches), and as an
//!   independent oracle for the BFS.

use crate::csr::CsrGraph;
use crate::scc::{strongly_connected_components, SccResult};
use crate::NodeId;

/// `out[s] == true` iff `s` can reach at least one node of `targets` in
/// `g` (every target trivially reaches itself). Multi-source BFS over
/// in-edges.
pub fn reverse_reachable(g: &CsrGraph, targets: &[NodeId]) -> Vec<bool> {
    let n = g.node_count();
    let mut reach = vec![false; n];
    let mut queue: Vec<NodeId> = Vec::with_capacity(targets.len());
    for &t in targets {
        let t_us = t as usize;
        assert!(t_us < n, "target {t} out of range for {n}-node graph");
        if !reach[t_us] {
            reach[t_us] = true;
            queue.push(t);
        }
    }
    // BFS backwards: if v reaches the target set, every in-neighbour does.
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &p in g.in_neighbors(v) {
            if !reach[p as usize] {
                reach[p as usize] = true;
                queue.push(p);
            }
        }
    }
    reach
}

/// `out[v] == true` iff at least one node of `sources` can reach `v` in
/// `g` (every source trivially reaches itself). Multi-source BFS over
/// out-edges — the forward twin of [`reverse_reachable`], used by the
/// incremental index updater to decide which *skeleton columns* an
/// update can affect (a column of hub `h` aggregates walks into `h`, so
/// it is stale only when a touched node reaches `h`).
pub fn forward_reachable(g: &CsrGraph, sources: &[NodeId]) -> Vec<bool> {
    let n = g.node_count();
    let mut reach = vec![false; n];
    let mut queue: Vec<NodeId> = Vec::with_capacity(sources.len());
    for &s in sources {
        let s_us = s as usize;
        assert!(s_us < n, "source {s} out of range for {n}-node graph");
        if !reach[s_us] {
            reach[s_us] = true;
            queue.push(s);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &w in g.out_neighbors(v) {
            if !reach[w as usize] {
                reach[w as usize] = true;
                queue.push(w);
            }
        }
    }
    reach
}

/// SCC condensation of a graph snapshot, reusable across many
/// reverse-reachability queries.
pub struct SccCondensation {
    scc: SccResult,
    /// Adjacency between components: `comp_edges[c]` lists the distinct
    /// successor components of `c` (edges of the condensation DAG).
    comp_edges: Vec<Vec<u32>>,
}

impl SccCondensation {
    /// Build the condensation (one Tarjan pass + one edge sweep).
    pub fn build(g: &CsrGraph) -> Self {
        let scc = strongly_connected_components(g);
        let mut comp_edges: Vec<Vec<u32>> = vec![Vec::new(); scc.count];
        for (u, v) in g.edges() {
            let (cu, cv) = (scc.component_of[u as usize], scc.component_of[v as usize]);
            if cu != cv {
                comp_edges[cu as usize].push(cv);
            }
        }
        for succs in &mut comp_edges {
            succs.sort_unstable();
            succs.dedup();
        }
        Self { scc, comp_edges }
    }

    /// The underlying component decomposition.
    pub fn scc(&self) -> &SccResult {
        &self.scc
    }

    /// `out[s] == true` iff `s` can reach at least one node of `targets`.
    ///
    /// Tarjan numbers a component before every component that can reach
    /// it (reverse topological order), so successors always carry smaller
    /// ids than their predecessors; one ascending sweep propagates
    /// "reaches a dirty component" from sinks toward sources.
    pub fn sources_reaching(&self, targets: &[NodeId]) -> Vec<bool> {
        let mut comp_hit = vec![false; self.scc.count];
        for &t in targets {
            comp_hit[self.scc.component_of[t as usize] as usize] = true;
        }
        for c in 0..self.scc.count {
            if comp_hit[c] {
                continue;
            }
            if self.comp_edges[c].iter().any(|&s| comp_hit[s as usize]) {
                comp_hit[c] = true;
            }
        }
        self.scc
            .component_of
            .iter()
            .map(|&c| comp_hit[c as usize])
            .collect()
    }

    /// `out[v] == true` iff at least one node of `sources` can reach `v`
    /// — the forward twin of [`sources_reaching`](Self::sources_reaching).
    ///
    /// Since successors carry smaller component ids than their
    /// predecessors (see `sources_reaching`), one *descending* sweep
    /// propagates "reached from a source component" from sources toward
    /// sinks.
    pub fn reachable_from(&self, sources: &[NodeId]) -> Vec<bool> {
        let mut comp_hit = vec![false; self.scc.count];
        for &s in sources {
            comp_hit[self.scc.component_of[s as usize] as usize] = true;
        }
        for c in (0..self.scc.count).rev() {
            if !comp_hit[c] {
                continue;
            }
            for &s in &self.comp_edges[c] {
                comp_hit[s as usize] = true;
            }
        }
        self.scc
            .component_of
            .iter()
            .map(|&c| comp_hit[c as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::generators::{hierarchical_sbm, HsbmConfig};

    #[test]
    fn chain_reachability() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let r = reverse_reachable(&g, &[2]);
        assert_eq!(r, vec![true, true, true, false, false]);
        // Empty target set: nobody reaches anything.
        assert!(reverse_reachable(&g, &[]).iter().all(|&x| !x));
    }

    #[test]
    fn targets_reach_themselves() {
        let g = from_edges(3, &[]);
        let r = reverse_reachable(&g, &[1]);
        assert_eq!(r, vec![false, true, false]);
    }

    #[test]
    fn cycle_members_all_reach() {
        let g = from_edges(4, &[(0, 1), (1, 0), (2, 0), (3, 2)]);
        let r = reverse_reachable(&g, &[1]);
        assert_eq!(r, vec![true, true, true, true]);
    }

    #[test]
    fn condensation_matches_bfs_on_random_graphs() {
        for seed in 0..8u64 {
            let g = hierarchical_sbm(
                &HsbmConfig {
                    nodes: 250,
                    reciprocity: 0.3,
                    ..Default::default()
                },
                seed,
            );
            let cond = SccCondensation::build(&g);
            for targets in [
                vec![0u32],
                vec![17, 200],
                vec![249, 1, 100, 30],
                Vec::new(),
            ] {
                assert_eq!(
                    cond.sources_reaching(&targets),
                    reverse_reachable(&g, &targets),
                    "seed {seed} targets {targets:?}"
                );
            }
        }
    }

    #[test]
    fn forward_chain_reachability() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let r = forward_reachable(&g, &[1]);
        assert_eq!(r, vec![false, true, true, true, false]);
        assert!(forward_reachable(&g, &[]).iter().all(|&x| !x));
    }

    #[test]
    fn forward_matches_reverse_on_transpose_and_condensation() {
        for seed in 0..8u64 {
            let g = hierarchical_sbm(
                &HsbmConfig {
                    nodes: 250,
                    reciprocity: 0.3,
                    ..Default::default()
                },
                seed,
            );
            // Transpose oracle: v reachable from S in g  <=>  v reaches S
            // in g's transpose.
            let t = {
                let mut b = crate::csr::GraphBuilder::new(g.node_count());
                b.extend_edges(g.edges().map(|(u, v)| (v, u)));
                b.build()
            };
            let cond = SccCondensation::build(&g);
            for sources in [vec![0u32], vec![17, 200], vec![249, 1, 100, 30]] {
                let fwd = forward_reachable(&g, &sources);
                assert_eq!(fwd, reverse_reachable(&t, &sources), "seed {seed}");
                assert_eq!(fwd, cond.reachable_from(&sources), "seed {seed}");
            }
        }
    }

    #[test]
    fn disjoint_halves_do_not_cross() {
        // 0..3 and 3..6 are disconnected; dirtying one half leaves the
        // other provably clean — the cache-retention property.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let r = reverse_reachable(&g, &[4]);
        assert_eq!(&r[..3], &[false, false, false]);
        assert_eq!(&r[3..], &[true, true, true]);
        let c = SccCondensation::build(&g);
        assert_eq!(c.sources_reaching(&[4]), r);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_rejected() {
        let g = from_edges(2, &[(0, 1)]);
        reverse_reachable(&g, &[5]);
    }
}
