//! Edge-list IO in the SNAP plain-text format the paper's datasets use.
//!
//! Format: one `src<TAB or space>dst` pair per line; lines starting with
//! `#` or `%` are comments. Node ids need not be contiguous — they are
//! remapped densely on load and the mapping is returned.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::{node_id, NodeId};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Result of loading an edge list with arbitrary ids.
pub struct LoadedGraph {
    /// The graph with dense ids `0..n`.
    pub graph: CsrGraph,
    /// Dense id -> original id.
    pub original_ids: Vec<u64>,
}

/// Read an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<LoadedGraph> {
    let mut ids: HashMap<u64, NodeId> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut line = String::new();
    let mut r = BufReader::new(reader);

    let intern = |raw: u64, ids: &mut HashMap<u64, NodeId>, orig: &mut Vec<u64>| -> NodeId {
        *ids.entry(raw).or_insert_with(|| {
            let id = node_id(orig.len());
            orig.push(raw);
            id
        })
    };

    let mut lineno = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<u64> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge at line {lineno}"),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let lu = intern(u, &mut ids, &mut original_ids);
        let lv = intern(v, &mut ids, &mut original_ids);
        edges.push((lu, lv));
    }

    let mut b = GraphBuilder::new(original_ids.len());
    b.extend_edges(edges);
    Ok(LoadedGraph {
        graph: b.build(),
        original_ids,
    })
}

/// Read an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> io::Result<LoadedGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Write a graph as a plain edge list (dense ids).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# exact-ppr edge list: {} nodes, {} edges", graph.node_count(), graph.edge_count())?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Write a graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> io::Result<()> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    #[test]
    fn parses_comments_and_whitespace() {
        let text = "# comment\n% also comment\n\n10 20\n20\t30\n10 30\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.node_count(), 3);
        assert_eq!(loaded.graph.edge_count(), 3);
        assert_eq!(loaded.original_ids, vec![10, 20, 30]);
        // 10 -> {20, 30} under dense ids 0 -> {1, 2}.
        assert_eq!(loaded.graph.out_neighbors(0), &[1, 2]);
    }

    #[test]
    fn roundtrip() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(loaded.graph.node_count(), 4);
        let got: Vec<_> = loaded.graph.edges().collect();
        let want: Vec<_> = g.edges().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn malformed_line_is_error() {
        let text = "1 2\nbogus\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let dir = std::env::temp_dir().join("ppr_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_edge_list_file(&g, &path).unwrap();
        let loaded = read_edge_list_file(&path).unwrap();
        assert_eq!(loaded.graph.edge_count(), 2);
    }
}
