//! Structural analytics used by the partitioner, the workload generators'
//! validation, and downstream applications: components, BFS, transpose,
//! degree distributions.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::NodeId;
use std::collections::VecDeque;

/// Weakly connected components: returns (component id per node, count).
pub fn weakly_connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as NodeId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// BFS hop distance from `source` along out-edges (`u32::MAX` =
/// unreachable).
pub fn bfs_distances(g: &CsrGraph, source: NodeId) -> Vec<u32> {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in g.out_neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The transpose graph (every edge reversed).
pub fn transpose(g: &CsrGraph) -> CsrGraph {
    let mut b = GraphBuilder::new(g.node_count());
    for (u, v) in g.edges() {
        b.push_edge(v, u);
    }
    b.build()
}

/// Out-degree histogram: `hist[d]` = number of nodes with out-degree `d`.
pub fn out_degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let max = (0..g.node_count() as NodeId)
        .map(|v| g.out_degree(v))
        .max()
        .unwrap_or(0) as usize;
    let mut hist = vec![0usize; max + 1];
    for v in 0..g.node_count() as NodeId {
        hist[g.out_degree(v) as usize] += 1;
    }
    hist
}

/// Nodes reachable from `source` (including itself) along out-edges.
pub fn reachable_set(g: &CsrGraph, source: NodeId) -> Vec<NodeId> {
    bfs_distances(g, source)
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .map(|(v, _)| v as NodeId)
        .collect()
}

/// The subgraph induced by `members`, re-labelled densely in the order of
/// the sorted member list. Returns (graph, local -> global map). Unlike
/// [`crate::view::SubView`] the result is a standalone [`CsrGraph`] whose
/// degrees are *internal* degrees (no virtual node) — use it for
/// standalone analyses, not PPR decomposition.
pub fn induced_subgraph(g: &CsrGraph, members: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
    let mut map = members.to_vec();
    map.sort_unstable();
    map.dedup();
    let local_of = |x: NodeId| map.binary_search(&x).ok();
    let mut b = GraphBuilder::new(map.len());
    for (lu, &gu) in map.iter().enumerate() {
        for &gv in g.out_neighbors(gu) {
            if let Some(lv) = local_of(gv) {
                b.push_edge(lu as NodeId, lv as NodeId);
            }
        }
    }
    (b.build(), map)
}

/// Return a copy of `g` with a self-loop added to every dangling node.
///
/// This is the classic alternative treatment of dangling nodes (§ Appendix
/// C discusses redirect-to-source; self-loops instead make the transition
/// matrix stochastic while keeping the graph query-independent, so the
/// decomposition indexes can be built on the result). Under self-loop
/// semantics a surfer at a dead end simply waits until teleporting.
pub fn add_dangling_self_loops(g: &CsrGraph) -> CsrGraph {
    let mut b = GraphBuilder::new(g.node_count()).allow_self_loops();
    for (u, v) in g.edges() {
        b.push_edge(u, v);
    }
    for v in g.dangling_nodes() {
        b.push_edge(v, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    fn two_islands() -> CsrGraph {
        // island A: 0 -> 1 -> 2 -> 0; island B: 3 <-> 4
        from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)])
    }

    #[test]
    fn components_found() {
        let g = two_islands();
        let (comp, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn bfs_distances_and_reachability() {
        let g = two_islands();
        let d = bfs_distances(&g, 0);
        assert_eq!(&d[..3], &[0, 1, 2]);
        assert_eq!(d[3], u32::MAX);
        assert_eq!(reachable_set(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let t = transpose(&g);
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(2, 1));
        assert_eq!(t.edge_count(), 2);
        // Double transpose is the identity.
        let tt = transpose(&t);
        assert!(g.edges().eq(tt.edges()));
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = two_islands();
        let hist = out_degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 5);
        assert_eq!(hist[1], 5); // every node has out-degree 1
    }

    #[test]
    fn induced_subgraph_extracts_internal_edges() {
        let g = two_islands();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(map, vec![0, 1, 3]);
        assert_eq!(sub.node_count(), 3);
        // Only 0 -> 1 survives (2 and 4 are outside).
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(0, 1));
    }

    #[test]
    fn self_loop_preprocessing_makes_stochastic() {
        let g = from_edges(3, &[(0, 1), (0, 2)]); // 1 and 2 dangling
        let fixed = add_dangling_self_loops(&g);
        assert!(fixed.dangling_nodes().is_empty());
        assert!(fixed.has_edge(1, 1));
        assert!(fixed.has_edge(2, 2));
        assert_eq!(fixed.out_degree(0), 2); // untouched
        // PPV mass now conserves exactly (stochastic matrix).
        let r = crate::dense::dense_ppv(&fixed, 0, 0.15);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = from_edges(0, &[]);
        assert_eq!(weakly_connected_components(&g).1, 0);
        assert_eq!(out_degree_histogram(&g), vec![0]);
    }
}
