//! Virtual-subgraph views (paper §4.1, Definition 3 and Theorem 2).
//!
//! A [`SubView`] materialises the *virtual subgraph* of a member set `S`:
//! it keeps only edges whose both endpoints lie in `S`, but remembers each
//! node's **original** out-degree. A random surfer therefore leaves a node
//! `v` along an internal edge with probability `(1-α)/outdeg_G(v)` — exactly
//! as in the full graph — and the probability mass of the removed edges
//! flows to the implicit absorbing virtual node `VN`. Theorem 2 then says
//! the PPV computed on this view equals the partial vector w.r.t. the hub
//! set that separates `S` from the rest of the graph.
//!
//! Views use a compact local id space `0..len` so the iterative kernels can
//! run on dense arrays sized to the subgraph, which is where HGPA's
//! precomputation savings come from (§4.5).

use crate::adjacency::{Adjacency, InAdjacency};
use crate::csr::CsrGraph;
use crate::NodeId;

const UNMAPPED: u32 = u32::MAX;

/// A materialised virtual subgraph with local ids.
#[derive(Clone, Debug)]
pub struct SubView {
    /// Local id -> global id, ascending.
    globals: Vec<NodeId>,
    /// CSR offsets over local ids.
    out_offsets: Vec<usize>,
    /// Internal out-edges, local target ids.
    out_targets: Vec<NodeId>,
    /// Original (full-graph) out-degree per local node.
    orig_degree: Vec<u32>,
    /// In-CSR over the internal edges (needed by residual-push kernels).
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
}

impl SubView {
    /// Number of member nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// True when the view has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// Global id of local node `v`.
    #[inline]
    pub fn global_of(&self, v: NodeId) -> NodeId {
        self.globals[v as usize]
    }

    /// All member global ids, ascending.
    #[inline]
    pub fn globals(&self) -> &[NodeId] {
        &self.globals
    }

    /// Local id of global node `g`, if `g` is a member.
    pub fn local_of(&self, g: NodeId) -> Option<NodeId> {
        self.globals.binary_search(&g).ok().map(|i| i as NodeId)
    }

    /// Number of internal (traversable) edges.
    #[inline]
    pub fn internal_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Edges of the original graph that left the member set (absorbed by the
    /// virtual node). `internal + escaped == sum of original out-degrees`.
    pub fn escaped_edges(&self) -> usize {
        let total: u64 = self.orig_degree.iter().map(|&d| d as u64).sum();
        total as usize - self.out_targets.len()
    }
}

impl Adjacency for SubView {
    #[inline]
    fn n(&self) -> usize {
        self.globals.len()
    }
    #[inline]
    fn out(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }
    #[inline]
    fn degree(&self, v: NodeId) -> u32 {
        self.orig_degree[v as usize]
    }
    #[inline]
    fn edge_count(&self) -> usize {
        self.out_targets.len()
    }
}

impl InAdjacency for SubView {
    #[inline]
    fn inn(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }
}
///
/// Holds a graph-sized scratch map so building `k` views over disjoint
/// member sets costs O(Σ members + Σ internal edges), not O(k · |V|).
/// Reusable builder for many [`SubView`]s over one graph.
///
/// Holds a graph-sized scratch map so building `k` views over disjoint
/// member sets costs O(Σ members + Σ internal edges), not O(k · |V|).
pub struct ViewBuilder<'g> {
    graph: &'g CsrGraph,
    local: Vec<u32>,
}

impl<'g> ViewBuilder<'g> {
    /// Create a builder for views over `graph`.
    pub fn new(graph: &'g CsrGraph) -> Self {
        Self {
            graph,
            local: vec![UNMAPPED; graph.node_count()],
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Build the virtual subgraph induced by `members` (global ids; need not
    /// be sorted; duplicates are an error).
    ///
    /// # Panics
    /// Panics if `members` contains duplicates or out-of-range ids.
    pub fn build(&mut self, members: &[NodeId]) -> SubView {
        let mut globals = members.to_vec();
        globals.sort_unstable();
        if globals.windows(2).any(|w| w[0] == w[1]) {
            panic!("duplicate member in view");
        }
        for (i, &g) in globals.iter().enumerate() {
            assert!(
                (g as usize) < self.graph.node_count(),
                "member {g} out of range"
            );
            self.local[g as usize] = i as u32;
        }

        let k = globals.len();
        let mut out_offsets = Vec::with_capacity(k + 1);
        out_offsets.push(0usize);
        let mut out_targets = Vec::new();
        let mut orig_degree = Vec::with_capacity(k);
        for &g in &globals {
            orig_degree.push(self.graph.out_degree(g));
            for &w in self.graph.out_neighbors(g) {
                let lw = self.local[w as usize];
                if lw != UNMAPPED {
                    out_targets.push(lw);
                }
            }
            out_offsets.push(out_targets.len());
        }

        // Reset scratch for the next build.
        for &g in &globals {
            self.local[g as usize] = UNMAPPED;
        }

        // In-CSR over the internal edges via counting sort.
        let mut in_offsets = vec![0usize; k + 1];
        for &t in &out_targets {
            in_offsets[t as usize + 1] += 1;
        }
        for i in 0..k {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; out_targets.len()];
        for src in 0..k {
            for &t in &out_targets[out_offsets[src]..out_offsets[src + 1]] {
                let c = &mut cursor[t as usize];
                in_sources[*c] = src as NodeId;
                *c += 1;
            }
        }

        SubView {
            globals,
            out_offsets,
            out_targets,
            orig_degree,
            in_offsets,
            in_sources,
        }
    }
}

/// Build a view of the *entire* graph (identity mapping). Useful for running
/// subgraph-flavoured code paths on the full graph in tests.
pub fn full_view(graph: &CsrGraph) -> SubView {
    let mut vb = ViewBuilder::new(graph);
    let all: Vec<NodeId> = (0..graph.node_count() as NodeId).collect();
    vb.build(&all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    /// Figure 3/4/5 of the paper: G with hub u2 (index 1 here); subgraph
    /// SG = {u4, u5, u6}. u5 has out-degree 2 in G but only 1 internal edge.
    fn paper_fig3() -> CsrGraph {
        // ids: u1=0, u2=1, u3=2, u4=3, u5=4, u6=5
        from_edges(
            6,
            &[
                (0, 1), // u1 -> u2
                (1, 0), // u2 -> u1
                (1, 2), // u3 <- u2
                (2, 1),
                (1, 4), // u2 -> u5
                (4, 1), // u5 -> u2   (the escaping edge)
                (4, 3), // u5 -> u4
                (3, 5), // u4 -> u6
                (5, 4), // u6 -> u5
            ],
        )
    }

    #[test]
    fn virtual_subgraph_keeps_original_degree() {
        let g = paper_fig3();
        let mut vb = ViewBuilder::new(&g);
        let sg = vb.build(&[3, 4, 5]);
        assert_eq!(sg.len(), 3);
        // u5 (global 4): out-degree 2 in G, 1 internal edge (to u4).
        let l5 = sg.local_of(4).unwrap();
        assert_eq!(sg.degree(l5), 2);
        assert_eq!(sg.out(l5).len(), 1);
        assert_eq!(sg.global_of(sg.out(l5)[0]), 3);
        assert_eq!(sg.escaped_edges(), 1);
    }

    #[test]
    fn local_global_roundtrip() {
        let g = paper_fig3();
        let mut vb = ViewBuilder::new(&g);
        let sg = vb.build(&[5, 3, 4]); // unsorted input
        for l in 0..sg.len() as NodeId {
            let gid = sg.global_of(l);
            assert_eq!(sg.local_of(gid), Some(l));
        }
        assert_eq!(sg.local_of(0), None);
    }

    #[test]
    fn scratch_reuse_across_builds() {
        let g = paper_fig3();
        let mut vb = ViewBuilder::new(&g);
        let a = vb.build(&[0, 1, 2]);
        let b = vb.build(&[3, 4, 5]);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        // Edges between the two sets must appear in neither view.
        assert_eq!(a.internal_edges() + b.internal_edges() + 2, g.edge_count());
    }

    #[test]
    fn full_view_matches_graph() {
        let g = paper_fig3();
        let v = full_view(&g);
        assert_eq!(v.len(), g.node_count());
        assert_eq!(v.internal_edges(), g.edge_count());
        assert_eq!(v.escaped_edges(), 0);
        for u in 0..g.node_count() as NodeId {
            assert_eq!(v.out(u), g.out_neighbors(u));
            assert_eq!(v.degree(u), g.out_degree(u));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn duplicate_member_panics() {
        let g = paper_fig3();
        let mut vb = ViewBuilder::new(&g);
        let _ = vb.build(&[1, 1]);
    }

    #[test]
    fn empty_view() {
        let g = paper_fig3();
        let mut vb = ViewBuilder::new(&g);
        let v = vb.build(&[]);
        assert!(v.is_empty());
        assert_eq!(v.internal_edges(), 0);
    }
}
