//! Strongly connected components (iterative Tarjan).
//!
//! PPR analysis cares about SCC structure: mass circulates inside a
//! strongly connected component and only leaks forward along the
//! condensation DAG, which explains PPV supports and helps size
//! partitions. The implementation is the classic Tarjan algorithm with an
//! explicit stack (graphs here are far deeper than the call stack allows).

use crate::csr::CsrGraph;
use crate::NodeId;

/// Result of an SCC decomposition.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// Component id per node; ids are in *reverse topological* order of
    /// the condensation (Tarjan's natural output: a component is numbered
    /// before any component that can reach it).
    pub component_of: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl SccResult {
    /// Members of every component, indexed by component id.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &c) in self.component_of.iter().enumerate() {
            out[c as usize].push(v as NodeId);
        }
        out
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component_of {
            sizes[c as usize] += 1;
        }
        sizes.into_iter().max().unwrap_or(0)
    }
}

const UNVISITED: u32 = u32::MAX;

/// Tarjan's algorithm, iterative.
pub fn strongly_connected_components(g: &CsrGraph) -> SccResult {
    let n = g.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component_of = vec![0u32; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;

    // Explicit DFS frames: (node, next child offset).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n as NodeId {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                // First visit.
                index[v as usize] = next_index;
                lowlink[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            let outs = g.out_neighbors(v);
            if *child < outs.len() {
                let w = outs[*child];
                *child += 1;
                if index[w as usize] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
                continue;
            }
            // All children done: close the frame.
            frames.pop();
            if let Some(&mut (parent, _)) = frames.last_mut() {
                lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
            }
            if lowlink[v as usize] == index[v as usize] {
                // v roots a component: pop the stack down to v.
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    component_of[w as usize] = count;
                    if w == v {
                        break;
                    }
                }
                count += 1;
            }
        }
    }

    SccResult {
        component_of,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::generators::{hierarchical_sbm, HsbmConfig};

    #[test]
    fn cycle_is_one_component() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 1);
        assert_eq!(scc.largest(), 4);
    }

    #[test]
    fn chain_is_singletons() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 4);
        assert_eq!(scc.largest(), 1);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // {0,1} <-> and {2,3} <->, bridge 1 -> 2.
        let g = from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 2);
        assert_eq!(scc.component_of[0], scc.component_of[1]);
        assert_eq!(scc.component_of[2], scc.component_of[3]);
        // Reverse topological: the sink component {2,3} is numbered first.
        assert!(scc.component_of[2] < scc.component_of[0]);
    }

    #[test]
    fn components_listing_partitions_nodes() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 300,
                reciprocity: 0.4,
                ..Default::default()
            },
            8,
        );
        let scc = strongly_connected_components(&g);
        let comps = scc.components();
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, 300);
        for (cid, comp) in comps.iter().enumerate() {
            assert!(!comp.is_empty(), "component {cid} empty");
        }
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 60k-node path: recursive Tarjan would blow the call stack.
        let n = 60_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = from_edges(n, &edges);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, n);
    }

    #[test]
    fn empty_and_isolated() {
        let g = from_edges(3, &[]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 3);
    }
}
