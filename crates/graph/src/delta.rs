//! Edge-level deltas over an immutable [`CsrGraph`].
//!
//! CSR graphs are immutable by design — the PPR kernels and the
//! partitioner rely on sorted, deduplicated adjacency. Dynamic workloads
//! therefore describe change as a batch of [`EdgeUpdate`]s and *rebuild*
//! the CSR via [`apply_edge_updates`]; the precomputed index, in contrast,
//! is maintained *incrementally* (`ppr-core::incremental`) from the same
//! batch. Keeping the delta type here lets the workload generator
//! (`ppr-workload`), the serving layer (`ppr-serve`), and tests all speak
//! one language without depending on each other.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::NodeId;

/// One directed-edge change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeUpdate {
    /// Add the edge `u -> v`.
    Insert(NodeId, NodeId),
    /// Delete the edge `u -> v`.
    Remove(NodeId, NodeId),
}

impl EdgeUpdate {
    /// The `(source, target)` pair this update touches.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        match self {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Remove(u, v) => (u, v),
        }
    }

    /// Would applying this update to `g` actually change the edge set?
    /// (Inserting an existing edge or removing a missing one is a no-op;
    /// self-loop insertions are rejected as no-ops too, matching
    /// [`GraphBuilder`]'s default.)
    pub fn is_effective(self, g: &CsrGraph) -> bool {
        match self {
            EdgeUpdate::Insert(u, v) => u != v && !g.has_edge(u, v),
            EdgeUpdate::Remove(u, v) => g.has_edge(u, v),
        }
    }
}

/// Apply a batch of updates to `g`, returning the rebuilt graph. The node
/// set is unchanged; ineffective updates (see [`EdgeUpdate::is_effective`])
/// are skipped silently, and a `Remove` wins over an `Insert` of the same
/// edge earlier in the batch (updates apply in order).
pub fn apply_edge_updates(g: &CsrGraph, updates: &[EdgeUpdate]) -> CsrGraph {
    let removed: std::collections::HashSet<(NodeId, NodeId)> = updates
        .iter()
        .rev()
        // The *last* mention of an edge decides its fate; scanning in
        // reverse and keeping first-seen implements that.
        .scan(std::collections::HashSet::new(), |seen, &up| {
            let e = up.endpoints();
            Some(if seen.insert(e) { Some(up) } else { None })
        })
        .flatten()
        .filter_map(|up| match up {
            EdgeUpdate::Remove(u, v) => Some((u, v)),
            EdgeUpdate::Insert(..) => None,
        })
        .collect();

    let mut b = GraphBuilder::new(g.node_count());
    for e in g.edges() {
        if !removed.contains(&e) {
            b.push_edge(e.0, e.1);
        }
    }
    for &up in updates {
        if let EdgeUpdate::Insert(u, v) = up {
            if !removed.contains(&(u, v)) {
                b.push_edge(u, v); // builder dedups and drops self-loops
            }
        }
    }
    b.build()
}

/// The result of [`apply_effective_updates`].
#[derive(Clone, Debug)]
pub struct AppliedDelta {
    /// The rebuilt graph.
    pub graph: CsrGraph,
    /// The updates that changed the edge set, in application order.
    pub effective: Vec<EdgeUpdate>,
    /// Updates dropped as no-ops.
    pub skipped: usize,
}

/// Apply `updates` to `g` in order, separating effective changes from
/// no-ops. Effectiveness is judged against the *evolving* edge set — a
/// presence overlay over `g` — so within-batch dependencies (insert an
/// edge, then remove it: both effective) resolve exactly as sequential
/// single-update application would. This is the one authoritative
/// encoding of update semantics; incremental consumers (the dynamic
/// server) take `effective` as the changed-edge list for index
/// maintenance.
pub fn apply_effective_updates(g: &CsrGraph, updates: &[EdgeUpdate]) -> AppliedDelta {
    let mut overlay: std::collections::HashMap<(NodeId, NodeId), bool> =
        std::collections::HashMap::new();
    let mut effective = Vec::with_capacity(updates.len());
    let mut skipped = 0usize;
    for &up in updates {
        let e = up.endpoints();
        let present = *overlay.entry(e).or_insert_with(|| g.has_edge(e.0, e.1));
        let effect = match up {
            EdgeUpdate::Insert(u, v) => u != v && !present,
            EdgeUpdate::Remove(..) => present,
        };
        if effect {
            overlay.insert(e, matches!(up, EdgeUpdate::Insert(..)));
            effective.push(up);
        } else {
            skipped += 1;
        }
    }
    AppliedDelta {
        graph: apply_edge_updates(g, &effective),
        effective,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    #[test]
    fn insert_and_remove_roundtrip() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g2 = apply_edge_updates(
            &g,
            &[EdgeUpdate::Insert(3, 0), EdgeUpdate::Remove(1, 2)],
        );
        assert_eq!(g2.node_count(), 4);
        assert!(g2.has_edge(3, 0) && !g2.has_edge(1, 2));
        assert!(g2.has_edge(0, 1) && g2.has_edge(2, 3));
        // Undo restores the original edge set.
        let g3 = apply_edge_updates(
            &g2,
            &[EdgeUpdate::Remove(3, 0), EdgeUpdate::Insert(1, 2)],
        );
        assert!(g.edges().eq(g3.edges()));
    }

    #[test]
    fn ineffective_updates_are_noops() {
        let g = from_edges(3, &[(0, 1)]);
        let g2 = apply_edge_updates(
            &g,
            &[
                EdgeUpdate::Insert(0, 1), // already present
                EdgeUpdate::Remove(1, 2), // absent
                EdgeUpdate::Insert(2, 2), // self-loop
            ],
        );
        assert!(g.edges().eq(g2.edges()));
        assert!(!EdgeUpdate::Insert(0, 1).is_effective(&g));
        assert!(!EdgeUpdate::Remove(1, 2).is_effective(&g));
        assert!(!EdgeUpdate::Insert(2, 2).is_effective(&g));
        assert!(EdgeUpdate::Insert(1, 2).is_effective(&g));
        assert!(EdgeUpdate::Remove(0, 1).is_effective(&g));
    }

    #[test]
    fn effective_split_matches_raw_application() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let updates = [
            EdgeUpdate::Insert(4, 0),
            EdgeUpdate::Insert(4, 0), // duplicate: no-op
            EdgeUpdate::Remove(1, 2),
            EdgeUpdate::Insert(1, 2), // reinsert after removal: effective
            EdgeUpdate::Remove(0, 4), // absent: no-op
            EdgeUpdate::Insert(2, 2), // self-loop: no-op
        ];
        let d = apply_effective_updates(&g, &updates);
        assert_eq!(d.effective.len(), 3);
        assert_eq!(d.skipped, 3);
        // The effective split rebuilds exactly what raw application does.
        assert!(d.graph.edges().eq(apply_edge_updates(&g, &updates).edges()));
        // And matches sequential single-update application.
        let mut seq = g;
        for &up in &d.effective {
            assert!(up.is_effective(&seq), "{up:?}");
            seq = apply_edge_updates(&seq, &[up]);
        }
        assert!(d.graph.edges().eq(seq.edges()));
    }

    #[test]
    fn later_update_wins_within_batch() {
        let g = from_edges(3, &[(0, 1)]);
        // Insert then remove: net effect is absence.
        let g2 = apply_edge_updates(
            &g,
            &[EdgeUpdate::Insert(1, 2), EdgeUpdate::Remove(1, 2)],
        );
        assert!(!g2.has_edge(1, 2));
        // Remove then insert: net effect is presence.
        let g3 = apply_edge_updates(
            &g,
            &[EdgeUpdate::Remove(0, 1), EdgeUpdate::Insert(0, 1)],
        );
        assert!(g3.has_edge(0, 1));
    }
}
