//! Edge-level deltas over an immutable [`CsrGraph`].
//!
//! CSR graphs are immutable by design — the PPR kernels and the
//! partitioner rely on sorted, deduplicated adjacency. Dynamic workloads
//! therefore describe change as a batch of [`EdgeUpdate`]s and *rebuild*
//! the CSR via [`apply_edge_updates`]; the precomputed index, in contrast,
//! is maintained *incrementally* (`ppr-core::incremental`) from the same
//! batch. Keeping the delta type here lets the workload generator
//! (`ppr-workload`), the serving layer (`ppr-serve`), and tests all speak
//! one language without depending on each other.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::NodeId;

/// One directed-edge change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeUpdate {
    /// Add the edge `u -> v`.
    Insert(NodeId, NodeId),
    /// Delete the edge `u -> v`.
    Remove(NodeId, NodeId),
}

impl EdgeUpdate {
    /// The `(source, target)` pair this update touches.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        match self {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Remove(u, v) => (u, v),
        }
    }

    /// Would applying this update to `g` actually change the edge set?
    /// (Inserting an existing edge or removing a missing one is a no-op;
    /// self-loop insertions are rejected as no-ops too, matching
    /// [`GraphBuilder`]'s default.)
    pub fn is_effective(self, g: &CsrGraph) -> bool {
        match self {
            EdgeUpdate::Insert(u, v) => u != v && !g.has_edge(u, v),
            EdgeUpdate::Remove(u, v) => g.has_edge(u, v),
        }
    }
}

/// Apply a batch of updates to `g`, returning the rebuilt graph. The node
/// set is unchanged; ineffective updates (see [`EdgeUpdate::is_effective`])
/// are skipped silently, and a `Remove` wins over an `Insert` of the same
/// edge earlier in the batch (updates apply in order).
pub fn apply_edge_updates(g: &CsrGraph, updates: &[EdgeUpdate]) -> CsrGraph {
    let removed: std::collections::HashSet<(NodeId, NodeId)> = updates
        .iter()
        .rev()
        // The *last* mention of an edge decides its fate; scanning in
        // reverse and keeping first-seen implements that.
        .scan(std::collections::HashSet::new(), |seen, &up| {
            let e = up.endpoints();
            Some(if seen.insert(e) { Some(up) } else { None })
        })
        .flatten()
        .filter_map(|up| match up {
            EdgeUpdate::Remove(u, v) => Some((u, v)),
            EdgeUpdate::Insert(..) => None,
        })
        .collect();

    let mut b = GraphBuilder::new(g.node_count());
    for e in g.edges() {
        if !removed.contains(&e) {
            b.push_edge(e.0, e.1);
        }
    }
    for &up in updates {
        if let EdgeUpdate::Insert(u, v) = up {
            if !removed.contains(&(u, v)) {
                b.push_edge(u, v); // builder dedups and drops self-loops
            }
        }
    }
    b.build()
}

/// The result of [`apply_effective_updates`].
#[derive(Clone, Debug)]
pub struct AppliedDelta {
    /// The rebuilt graph.
    pub graph: CsrGraph,
    /// The updates that changed the edge set, in application order.
    pub effective: Vec<EdgeUpdate>,
    /// Updates dropped as no-ops.
    pub skipped: usize,
}

/// Apply `updates` to `g` in order, separating effective changes from
/// no-ops. Effectiveness is judged against the *evolving* edge set — a
/// presence overlay over `g` — so within-batch dependencies (insert an
/// edge, then remove it: both effective) resolve exactly as sequential
/// single-update application would. This is the one authoritative
/// encoding of update semantics; incremental consumers (the dynamic
/// server) take `effective` as the changed-edge list for index
/// maintenance.
pub fn apply_effective_updates(g: &CsrGraph, updates: &[EdgeUpdate]) -> AppliedDelta {
    let mut overlay: std::collections::HashMap<(NodeId, NodeId), bool> =
        std::collections::HashMap::new();
    let mut effective = Vec::with_capacity(updates.len());
    let mut skipped = 0usize;
    for &up in updates {
        let e = up.endpoints();
        let present = *overlay.entry(e).or_insert_with(|| g.has_edge(e.0, e.1));
        let effect = match up {
            EdgeUpdate::Insert(u, v) => u != v && !present,
            EdgeUpdate::Remove(..) => present,
        };
        if effect {
            overlay.insert(e, matches!(up, EdgeUpdate::Insert(..)));
            effective.push(up);
        } else {
            skipped += 1;
        }
    }
    AppliedDelta {
        graph: apply_edge_updates(g, &effective),
        effective,
        skipped,
    }
}

/// The result of [`coalesce_updates`].
#[derive(Clone, Debug)]
pub struct CoalescedDelta {
    /// The rebuilt graph (identical to applying the raw batch), or `None`
    /// when `net` is empty — the batch had no net effect, so the original
    /// graph stands and no O(nodes + edges) rebuild was paid.
    pub graph: Option<CsrGraph>,
    /// The **net** changes: at most one update per edge, in order of each
    /// edge's first effective mention. Applying `net` to the original
    /// graph reproduces `graph` exactly, and every member is effective
    /// against the original graph.
    pub net: Vec<EdgeUpdate>,
    /// Updates dropped as no-ops against the evolving edge set (inserting
    /// a present edge, removing an absent one, self-loops).
    pub skipped: usize,
    /// *Effective* updates eliminated because a later update in the batch
    /// reversed them (insert-then-delete, delete-then-reinsert): the
    /// count of updates that changed the edge set in sequence but cancel
    /// in the net. Always an even number per edge.
    pub cancelled: usize,
}

/// Coalesce a batch down to its **net** edge-set change before it reaches
/// the (expensive) incremental index updater.
///
/// [`apply_effective_updates`] preserves sequential semantics: an
/// insert-then-delete pair counts as two effective updates, each of which
/// would dirty the endpoint's whole root-to-home subgraph chain in
/// `ppr-core::incremental` — recomputation for a change that is not
/// there. This pass instead compares each touched edge's *final* presence
/// against its presence in `g` and emits at most one update per edge:
/// redundant inserts and removes are dropped as no-ops (`skipped`), and
/// effective-but-reversed pairs cancel (`cancelled`). Feeding `net` to
/// sequential application — or to the incremental updater — yields the
/// same graph, while batches that churn the same edges (bursty streams,
/// retries) cost proportionally less maintenance.
pub fn coalesce_updates(g: &CsrGraph, updates: &[EdgeUpdate]) -> CoalescedDelta {
    use std::collections::{HashMap, HashSet};
    // Evolving presence overlay, as in `apply_effective_updates`. `order`
    // is the single ordering authority: an edge joins it at its *first*
    // effective mention, and `touched` is pure membership — nothing reads
    // a position out of it.
    let mut overlay: HashMap<(NodeId, NodeId), bool> = HashMap::new();
    let mut touched: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut order: Vec<(NodeId, NodeId)> = Vec::new();
    let mut skipped = 0usize;
    let mut effective = 0usize;
    for &up in updates {
        let e = up.endpoints();
        let present = *overlay.entry(e).or_insert_with(|| g.has_edge(e.0, e.1));
        let effect = match up {
            EdgeUpdate::Insert(u, v) => u != v && !present,
            EdgeUpdate::Remove(..) => present,
        };
        if effect {
            overlay.insert(e, matches!(up, EdgeUpdate::Insert(..)));
            effective += 1;
            if touched.insert(e) {
                order.push(e);
            }
        } else {
            skipped += 1;
        }
    }

    let mut net = Vec::new();
    for &(u, v) in &order {
        let was = g.has_edge(u, v);
        let is = overlay[&(u, v)];
        match (was, is) {
            (false, true) => net.push(EdgeUpdate::Insert(u, v)),
            (true, false) => net.push(EdgeUpdate::Remove(u, v)),
            _ => {} // reversed within the batch: cancels
        }
    }
    let cancelled = effective - net.len();
    // A batch with no net effect leaves the graph alone — skip the
    // rebuild entirely so cancelled churn really costs nothing.
    let graph = if net.is_empty() {
        None
    } else {
        Some(apply_edge_updates(g, &net))
    };
    CoalescedDelta {
        graph,
        net,
        skipped,
        cancelled,
    }
}

/// One node-set change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeUpdate {
    /// Append a new node. Ids stay dense: the k-th `Add` of a batch
    /// applied to an n-node graph creates node `n + k`, initially
    /// isolated (edge updates later in the same batch may wire it).
    Add,
    /// Remove a node: every incident edge (both directions) is dropped
    /// and the id becomes a permanent **tombstone** — it stays in the
    /// CSR id space as an isolated node (so no other id shifts) and must
    /// never be referenced by a later update or query.
    Remove(NodeId),
}

/// A batch of node and edge changes over one graph snapshot: node churn
/// applies first, in order, then the edge updates (which may reference
/// nodes the batch just added, but not ones it removed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Node churn, applied first.
    pub nodes: Vec<NodeUpdate>,
    /// Edge updates, applied after the node churn.
    pub edges: Vec<EdgeUpdate>,
}

impl GraphDelta {
    /// A pure edge batch (the pre-churn update language).
    pub fn from_edges(edges: Vec<EdgeUpdate>) -> Self {
        GraphDelta {
            nodes: Vec::new(),
            edges,
        }
    }

    /// No events at all?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }
}

/// Why a [`GraphDelta`] cannot apply to a graph.
///
/// Only *structural* misuse within one batch is detectable here: the CSR
/// itself does not distinguish a tombstone from a node that was always
/// isolated, so referencing a node removed by an *earlier* batch is the
/// index/serving layer's liveness check (`ppr-core`), not this one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// `Remove` named an id outside the graph's id space.
    RemoveOutOfRange {
        /// The offending id.
        node: NodeId,
        /// The id-space size it had to fit in.
        nodes: usize,
    },
    /// The same node was removed twice in one batch.
    DoubleRemove {
        /// The node removed twice.
        node: NodeId,
    },
    /// An edge update referenced a node the same batch removed.
    EdgeOnRemovedNode {
        /// The offending edge.
        edge: (NodeId, NodeId),
        /// Its removed endpoint.
        removed: NodeId,
    },
    /// An edge update referenced an id outside the post-churn id space.
    EdgeOutOfRange {
        /// The offending edge.
        edge: (NodeId, NodeId),
        /// The id-space size after the batch's node adds.
        nodes: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DeltaError::RemoveOutOfRange { node, nodes } => {
                write!(f, "cannot remove node {node}: graph has {nodes} nodes")
            }
            DeltaError::DoubleRemove { node } => {
                write!(f, "node {node} removed twice in one batch")
            }
            DeltaError::EdgeOnRemovedNode { edge, removed } => write!(
                f,
                "edge ({}, {}) references node {removed}, removed in the same batch",
                edge.0, edge.1
            ),
            DeltaError::EdgeOutOfRange { edge, nodes } => write!(
                f,
                "edge ({}, {}) out of range: graph has {nodes} nodes after churn",
                edge.0, edge.1
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The result of [`apply_delta`].
#[derive(Clone, Debug)]
pub struct AppliedGraphDelta {
    /// The rebuilt graph: node churn plus the net edge change.
    pub graph: CsrGraph,
    /// Ids assigned to the batch's `Add` events, in order.
    pub added: Vec<NodeId>,
    /// Nodes tombstoned by the batch, in order.
    pub removed: Vec<NodeId>,
    /// Incident edges the node removals dropped (before the batch's own
    /// edge updates applied), in the original graph's sorted edge order.
    pub dropped_edges: Vec<(NodeId, NodeId)>,
    /// Net edge updates, exactly as [`coalesce_updates`] reports them,
    /// judged against the post-churn graph.
    pub net: Vec<EdgeUpdate>,
    /// Edge updates dropped as no-ops (see [`CoalescedDelta::skipped`]).
    pub skipped: usize,
    /// Effective-but-reversed edge updates (see
    /// [`CoalescedDelta::cancelled`]).
    pub cancelled: usize,
}

/// Apply a full [`GraphDelta`] — node churn first, then edges — and
/// report everything the incremental index maintenance needs: the ids
/// added and tombstoned, the incident edges the removals dropped, and
/// the coalesced net edge change.
///
/// Errors (structurally invalid batches) leave `g` untouched; `g` is
/// never mutated either way (CSR graphs are immutable — this rebuilds).
pub fn apply_delta(g: &CsrGraph, delta: &GraphDelta) -> Result<AppliedGraphDelta, DeltaError> {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let mut removed_set = std::collections::HashSet::new();
    let mut n = g.node_count();
    for &nu in &delta.nodes {
        match nu {
            NodeUpdate::Add => {
                added.push(crate::node_id(n));
                n += 1;
            }
            NodeUpdate::Remove(v) => {
                if (v as usize) >= n {
                    return Err(DeltaError::RemoveOutOfRange { node: v, nodes: n });
                }
                if !removed_set.insert(v) {
                    return Err(DeltaError::DoubleRemove { node: v });
                }
                removed.push(v);
            }
        }
    }
    for up in &delta.edges {
        let edge = up.endpoints();
        for x in [edge.0, edge.1] {
            if (x as usize) >= n {
                return Err(DeltaError::EdgeOutOfRange { edge, nodes: n });
            }
            if removed_set.contains(&x) {
                return Err(DeltaError::EdgeOnRemovedNode { edge, removed: x });
            }
        }
    }

    // Rebuild over the churned node set: surviving edges carry over,
    // removal-dropped ones are reported for dirty tracking.
    let mut dropped_edges = Vec::new();
    let mut b = GraphBuilder::new(n);
    for e in g.edges() {
        if removed_set.contains(&e.0) || removed_set.contains(&e.1) {
            dropped_edges.push(e);
        } else {
            b.push_edge(e.0, e.1);
        }
    }
    let mid = b.build();
    let c = coalesce_updates(&mid, &delta.edges);
    Ok(AppliedGraphDelta {
        graph: c.graph.unwrap_or(mid),
        added,
        removed,
        dropped_edges,
        net: c.net,
        skipped: c.skipped,
        cancelled: c.cancelled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    #[test]
    fn insert_and_remove_roundtrip() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g2 = apply_edge_updates(
            &g,
            &[EdgeUpdate::Insert(3, 0), EdgeUpdate::Remove(1, 2)],
        );
        assert_eq!(g2.node_count(), 4);
        assert!(g2.has_edge(3, 0) && !g2.has_edge(1, 2));
        assert!(g2.has_edge(0, 1) && g2.has_edge(2, 3));
        // Undo restores the original edge set.
        let g3 = apply_edge_updates(
            &g2,
            &[EdgeUpdate::Remove(3, 0), EdgeUpdate::Insert(1, 2)],
        );
        assert!(g.edges().eq(g3.edges()));
    }

    #[test]
    fn ineffective_updates_are_noops() {
        let g = from_edges(3, &[(0, 1)]);
        let g2 = apply_edge_updates(
            &g,
            &[
                EdgeUpdate::Insert(0, 1), // already present
                EdgeUpdate::Remove(1, 2), // absent
                EdgeUpdate::Insert(2, 2), // self-loop
            ],
        );
        assert!(g.edges().eq(g2.edges()));
        assert!(!EdgeUpdate::Insert(0, 1).is_effective(&g));
        assert!(!EdgeUpdate::Remove(1, 2).is_effective(&g));
        assert!(!EdgeUpdate::Insert(2, 2).is_effective(&g));
        assert!(EdgeUpdate::Insert(1, 2).is_effective(&g));
        assert!(EdgeUpdate::Remove(0, 1).is_effective(&g));
    }

    #[test]
    fn effective_split_matches_raw_application() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let updates = [
            EdgeUpdate::Insert(4, 0),
            EdgeUpdate::Insert(4, 0), // duplicate: no-op
            EdgeUpdate::Remove(1, 2),
            EdgeUpdate::Insert(1, 2), // reinsert after removal: effective
            EdgeUpdate::Remove(0, 4), // absent: no-op
            EdgeUpdate::Insert(2, 2), // self-loop: no-op
        ];
        let d = apply_effective_updates(&g, &updates);
        assert_eq!(d.effective.len(), 3);
        assert_eq!(d.skipped, 3);
        // The effective split rebuilds exactly what raw application does.
        assert!(d.graph.edges().eq(apply_edge_updates(&g, &updates).edges()));
        // And matches sequential single-update application.
        let mut seq = g;
        for &up in &d.effective {
            assert!(up.is_effective(&seq), "{up:?}");
            seq = apply_edge_updates(&seq, &[up]);
        }
        assert!(d.graph.edges().eq(seq.edges()));
    }

    #[test]
    fn coalescing_cancels_insert_then_delete() {
        let g = from_edges(4, &[(0, 1), (1, 2)]);
        let d = coalesce_updates(
            &g,
            &[EdgeUpdate::Insert(2, 3), EdgeUpdate::Remove(2, 3)],
        );
        assert!(d.net.is_empty(), "reversed pair must cancel: {:?}", d.net);
        assert_eq!((d.skipped, d.cancelled), (0, 2));
        assert!(d.graph.is_none(), "no net effect: no rebuild");
    }

    #[test]
    fn coalescing_cancels_delete_then_reinsert() {
        let g = from_edges(4, &[(0, 1), (1, 2)]);
        let d = coalesce_updates(
            &g,
            &[EdgeUpdate::Remove(0, 1), EdgeUpdate::Insert(0, 1)],
        );
        assert!(d.net.is_empty());
        assert_eq!(d.cancelled, 2);
        assert!(d.graph.is_none(), "no net effect: no rebuild");
    }

    #[test]
    fn coalescing_merges_duplicates_and_noops() {
        let g = from_edges(5, &[(0, 1), (1, 2)]);
        let d = coalesce_updates(
            &g,
            &[
                EdgeUpdate::Insert(3, 4), // effective
                EdgeUpdate::Insert(3, 4), // duplicate: no-op
                EdgeUpdate::Insert(0, 1), // already present: no-op
                EdgeUpdate::Remove(2, 3), // absent: no-op
                EdgeUpdate::Insert(2, 2), // self-loop: no-op
                EdgeUpdate::Remove(1, 2), // effective
            ],
        );
        assert_eq!(
            d.net,
            vec![EdgeUpdate::Insert(3, 4), EdgeUpdate::Remove(1, 2)]
        );
        assert_eq!((d.skipped, d.cancelled), (4, 0));
        let rebuilt = d.graph.expect("non-empty net rebuilds");
        assert!(rebuilt.has_edge(3, 4) && !rebuilt.has_edge(1, 2));
    }

    #[test]
    fn coalesced_net_matches_raw_application() {
        // Churny batch: every flavor of redundancy at once. The net must
        // rebuild the same graph, contain at most one update per edge,
        // and each net update must be effective against the original.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let updates = [
            EdgeUpdate::Insert(5, 0),
            EdgeUpdate::Remove(5, 0), // cancels the insert
            EdgeUpdate::Remove(1, 2),
            EdgeUpdate::Insert(1, 2), // cancels the remove
            EdgeUpdate::Insert(0, 2),
            EdgeUpdate::Insert(0, 2), // duplicate
            EdgeUpdate::Remove(2, 3),
            EdgeUpdate::Insert(2, 3), // cancels
            EdgeUpdate::Remove(2, 3), // ...and re-removes: net Remove
        ];
        let d = coalesce_updates(&g, &updates);
        let rebuilt = d.graph.expect("non-empty net rebuilds");
        assert!(rebuilt.edges().eq(apply_edge_updates(&g, &updates).edges()));
        let mut seen = std::collections::HashSet::new();
        for up in &d.net {
            assert!(seen.insert(up.endpoints()), "one net update per edge");
            assert!(up.is_effective(&g), "{up:?} must be effective on g");
        }
        assert_eq!(d.net.len() + d.cancelled, 8, "8 effective in sequence");
        // Sequential application of the net reproduces the same graph.
        let mut seq = g;
        for &up in &d.net {
            seq = apply_edge_updates(&seq, &[up]);
        }
        assert!(rebuilt.edges().eq(seq.edges()));
    }

    #[test]
    fn net_order_is_first_effective_touch() {
        // Edge A is touched effectively at positions 0, 2, 3; edge B at
        // position 1. The net must list A before B — first effective
        // touch, not last.
        let g = from_edges(5, &[(1, 2)]);
        let d = coalesce_updates(
            &g,
            &[
                EdgeUpdate::Remove(1, 2), // A: effective
                EdgeUpdate::Insert(3, 4), // B: effective
                EdgeUpdate::Insert(1, 2), // A again
                EdgeUpdate::Remove(1, 2), // A again: net Remove
            ],
        );
        assert_eq!(
            d.net,
            vec![EdgeUpdate::Remove(1, 2), EdgeUpdate::Insert(3, 4)]
        );
        assert_eq!((d.skipped, d.cancelled), (0, 2));
    }

    #[test]
    fn node_add_grows_the_graph_with_dense_ids() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let out = apply_delta(
            &g,
            &GraphDelta {
                nodes: vec![NodeUpdate::Add, NodeUpdate::Add],
                edges: vec![],
            },
        )
        .unwrap();
        assert_eq!(out.added, vec![3, 4]);
        assert_eq!(out.graph.node_count(), 5);
        // New nodes are isolated; old edges survive untouched.
        assert!(out.graph.out_neighbors(3).is_empty());
        assert!(out.graph.out_neighbors(4).is_empty());
        assert!(g.edges().eq(out.graph.edges()));
        assert!(out.removed.is_empty() && out.dropped_edges.is_empty());
    }

    #[test]
    fn node_removal_drops_incident_edges_and_tombstones() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3), (3, 0)]);
        let out = apply_delta(
            &g,
            &GraphDelta {
                nodes: vec![NodeUpdate::Remove(1)],
                edges: vec![],
            },
        )
        .unwrap();
        // The id space is unchanged — node 1 becomes a tombstone.
        assert_eq!(out.graph.node_count(), 4);
        assert!(out.graph.out_neighbors(1).is_empty());
        assert!(out.graph.in_neighbors(1).is_empty());
        assert_eq!(out.dropped_edges, vec![(0, 1), (1, 2), (2, 1)]);
        assert_eq!(out.removed, vec![1]);
        assert!(out.graph.has_edge(2, 3) && out.graph.has_edge(3, 0));
    }

    #[test]
    fn add_then_wire_within_one_batch() {
        let g = from_edges(3, &[(0, 1)]);
        let out = apply_delta(
            &g,
            &GraphDelta {
                nodes: vec![NodeUpdate::Add],
                edges: vec![EdgeUpdate::Insert(3, 0), EdgeUpdate::Insert(1, 3)],
            },
        )
        .unwrap();
        assert_eq!(out.added, vec![3]);
        assert!(out.graph.has_edge(3, 0) && out.graph.has_edge(1, 3));
        assert_eq!(out.net.len(), 2);
        assert_eq!((out.skipped, out.cancelled), (0, 0));
    }

    #[test]
    fn invalid_deltas_are_rejected_not_applied() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let err = |d: GraphDelta| apply_delta(&g, &d).unwrap_err();
        assert_eq!(
            err(GraphDelta {
                nodes: vec![NodeUpdate::Remove(7)],
                edges: vec![],
            }),
            DeltaError::RemoveOutOfRange { node: 7, nodes: 3 }
        );
        assert_eq!(
            err(GraphDelta {
                nodes: vec![NodeUpdate::Remove(1), NodeUpdate::Remove(1)],
                edges: vec![],
            }),
            DeltaError::DoubleRemove { node: 1 }
        );
        assert_eq!(
            err(GraphDelta {
                nodes: vec![NodeUpdate::Remove(1)],
                edges: vec![EdgeUpdate::Insert(0, 1)],
            }),
            DeltaError::EdgeOnRemovedNode {
                edge: (0, 1),
                removed: 1
            }
        );
        assert_eq!(
            err(GraphDelta {
                nodes: vec![],
                edges: vec![EdgeUpdate::Insert(0, 9)],
            }),
            DeltaError::EdgeOutOfRange {
                edge: (0, 9),
                nodes: 3
            }
        );
    }

    #[test]
    fn churn_plus_edges_matches_manual_composition() {
        // Remove a node, add one, rewire — the result must equal doing
        // the same by hand with the primitive operations.
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let out = apply_delta(
            &g,
            &GraphDelta {
                nodes: vec![NodeUpdate::Remove(2), NodeUpdate::Add],
                edges: vec![EdgeUpdate::Insert(1, 4), EdgeUpdate::Insert(4, 3)],
            },
        )
        .unwrap();
        let mut b = GraphBuilder::new(5);
        for e in [(0, 1), (3, 0), (1, 4), (4, 3)] {
            b.push_edge(e.0, e.1);
        }
        assert!(out.graph.edges().eq(b.build().edges()));
        assert_eq!(out.added, vec![4]);
        assert_eq!(out.dropped_edges, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn later_update_wins_within_batch() {
        let g = from_edges(3, &[(0, 1)]);
        // Insert then remove: net effect is absence.
        let g2 = apply_edge_updates(
            &g,
            &[EdgeUpdate::Insert(1, 2), EdgeUpdate::Remove(1, 2)],
        );
        assert!(!g2.has_edge(1, 2));
        // Remove then insert: net effect is presence.
        let g3 = apply_edge_updates(
            &g,
            &[EdgeUpdate::Remove(0, 1), EdgeUpdate::Insert(0, 1)],
        );
        assert!(g3.has_edge(0, 1));
    }
}
