#![deny(missing_docs)]

//! Directed-graph substrate for the exact-ppr workspace.
//!
//! This crate provides everything the Personalized PageRank algorithms need
//! from a graph library:
//!
//! * [`CsrGraph`] — an immutable compressed-sparse-row directed graph with
//!   both out- and in-adjacency, built from edge lists.
//! * [`Adjacency`] — the minimal access trait all PPR kernels are generic
//!   over. Crucially it separates *traversable out-neighbours* from the
//!   *original out-degree*, which is how the paper's "virtual subgraph"
//!   (Definition 3, Theorem 2) is realised: a [`view::SubView`] keeps the
//!   original out-degree as the transition denominator while only exposing
//!   in-subgraph targets, so the missing probability mass flows to the
//!   implicit absorbing virtual node.
//! * [`generators`] — seeded synthetic graph generators (G(n,p), Chung–Lu
//!   power-law, planted-partition SBM, hierarchical SBM) used as stand-ins
//!   for the paper's five real-world datasets.
//! * [`io`] — plain edge-list reading/writing.
//! * [`dense`] — a dense linear-system PPR solver used as machine-precision
//!   ground truth in tests.
//! * [`delta`] — [`EdgeUpdate`] / [`NodeUpdate`] batches ([`GraphDelta`])
//!   over immutable CSR graphs, the vocabulary shared by the dynamic
//!   workload generator, the incremental index updater, and the serving
//!   layer. Node removal tombstones the id (incident edges drop, the id
//!   space stays dense); node addition appends the next dense id.
//! * [`reach`] — reachability predicates (multi-source BFS both ways and
//!   an SCC condensation), the conservative staleness predicate shared by
//!   cache invalidation and incremental index maintenance.

pub mod adjacency;
pub mod analytics;
pub mod csr;
pub mod delta;
pub mod dense;
pub mod generators;
pub mod io;
pub mod reach;
pub mod scc;
pub mod view;

pub use adjacency::{Adjacency, InAdjacency};
pub use csr::{CsrGraph, GraphBuilder};
pub use delta::{
    apply_delta, apply_edge_updates, apply_effective_updates, AppliedDelta, AppliedGraphDelta,
    DeltaError, EdgeUpdate, GraphDelta, NodeUpdate,
};
pub use reach::{forward_reachable, reverse_reachable, SccCondensation};
pub use view::{SubView, ViewBuilder};

/// Node identifier. Graphs are limited to `u32::MAX` nodes, which keeps
/// adjacency arrays and precomputed vectors compact (see the type-size
/// guidance in the Rust perf book).
pub type NodeId = u32;

/// The checked narrowing from machine-word indices to [`NodeId`] width.
///
/// `expr as u32` silently truncates; every id-producing narrowing in the
/// workspace goes through this function instead (the `repro audit`
/// `lossy-id-cast` rule enforces it for computed expressions). The
/// assert is one predictable compare — noise next to the hash/BTree
/// work around any call site — and turns a would-be wrong-id bug into a
/// loud panic at the point of truncation.
///
/// [`GraphBuilder::new`] rejects graphs with more than `u32::MAX` nodes,
/// so indices derived from node or edge positions are always in range;
/// the check guards the *other* callers (interning unbounded external
/// ids, synthetic-id arithmetic).
#[inline]
pub fn node_id(index: usize) -> NodeId {
    assert!(
        index <= NodeId::MAX as usize,
        "index {index} exceeds NodeId range"
    );
    // audit:allow(lossy-id-cast): asserted in range on the line above
    index as NodeId
}
