//! A hand-rolled Rust lexer sufficient for the audit rules.
//!
//! The vendored dependencies are offline stand-ins, so there is no `syn`
//! or `proc-macro2` to lean on; instead this module tokenizes Rust source
//! directly. It does not aim to be a full lexer — it only needs to be
//! sound enough that the rule engine never mistakes string/comment
//! contents for code and never misses a token boundary the rules care
//! about. The subtle cases it does handle correctly:
//!
//! * nested block comments (`/* /* */ */`),
//! * raw strings with arbitrary hash fences (`r#"…"#`, `br##"…"##`),
//! * byte strings and byte chars (`b"…"`, `b'x'`),
//! * char literals vs. lifetimes (`'a'` vs. `&'a str`),
//! * multi-character punctuation the rules match on (`::`, `..`, `=>`).
//!
//! Comments are not discarded: they are returned as [`TokenKind::Comment`]
//! tokens so the caller can recognise `// audit:allow(...)` suppressions
//! and attribute them to lines.

/// The coarse classification of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `r#async`).
    Ident,
    /// Integer or float literal, including suffixes (`0.15f64`, `0xFF`).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `(`, `[`) or one of the
    /// multi-character operators listed in [`MULTI_PUNCT`].
    Punct,
    /// Line or block comment, text included (with delimiters).
    Comment,
}

/// Multi-character operators kept as single tokens. Order matters: longer
/// operators must come first so `..=` never lexes as `..` `=`.
pub const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// One lexed token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The exact source text, delimiters included.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True for a punct token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Tokenize `src`, returning every token including comments.
///
/// Unterminated strings/comments are tolerated (the remainder of the file
/// becomes one token) so a half-edited file degrades gracefully instead
/// of panicking — the audit runs in CI where a clear report beats a crash.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    /// Advance one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            let start = self.pos;
            let line = self.line;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokenKind::Comment, start, line);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment(start, line);
                }
                b'r' | b'b' if self.raw_or_byte_literal() => {
                    // raw_or_byte_literal consumed the whole literal.
                    let kind = if self.src[start + 1] == b'\'' {
                        TokenKind::Char
                    } else {
                        TokenKind::Str
                    };
                    self.push(kind, start, line);
                }
                b'"' => {
                    self.bump();
                    self.quoted(b'"');
                    self.push(TokenKind::Str, start, line);
                }
                b'\'' => self.char_or_lifetime(start, line),
                _ if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    while {
                        let c = self.peek(0);
                        c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
                    } {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line);
                }
                _ if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::Number, start, line);
                }
                _ => {
                    let rest = &self.src[self.pos..];
                    let multi = MULTI_PUNCT
                        .iter()
                        .find(|op| rest.starts_with(op.as_bytes()));
                    match multi {
                        Some(op) => self.bump_n(op.len()),
                        None => self.bump(),
                    }
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    /// `/* … */` with nesting; tolerates EOF inside the comment.
    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump_n(2);
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.starts_with("/*") {
                depth += 1;
                self.bump_n(2);
            } else if self.starts_with("*/") {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        self.push(TokenKind::Comment, start, line);
    }

    /// Try to consume `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'x'`
    /// starting at the current position. Returns false (consuming
    /// nothing) when the `r`/`b` is just the start of an identifier.
    fn raw_or_byte_literal(&mut self) -> bool {
        let mut i = self.pos;
        let mut raw = false;
        if self.src[i] == b'b' {
            i += 1;
        }
        if i < self.src.len() && self.src[i] == b'r' {
            raw = true;
            i += 1;
        }
        let mut hashes = 0usize;
        while raw && i < self.src.len() && self.src[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        let quote = *self.src.get(i).unwrap_or(&0);
        // `r#ident` is a raw identifier, not a string: require a quote.
        if quote != b'"' && !(quote == b'\'' && !raw && self.src[self.pos] == b'b') {
            return false;
        }
        self.bump_n(i + 1 - self.pos);
        if quote == b'\'' {
            // byte char: escapes but no fences
            self.quoted(b'\'');
            return true;
        }
        if !raw {
            self.quoted(b'"');
            return true;
        }
        // Raw string: scan for `"` followed by `hashes` hash marks; no
        // escape processing.
        loop {
            if self.pos >= self.src.len() {
                return true;
            }
            if self.peek(0) == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + hashes);
                    return true;
                }
            }
            self.bump();
        }
    }

    /// Consume a (non-raw) quoted literal body up to and including the
    /// closing `close`, honouring backslash escapes.
    fn quoted(&mut self, close: u8) {
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                c if c == close => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime) from `'\n'`.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        // A char literal is '…' where … is an escape or exactly one char;
        // a lifetime is 'ident NOT followed by a closing quote.
        let next = self.peek(1);
        let is_lifetime = (next == b'_' || next.is_ascii_alphabetic())
            && self.peek(2) != b'\''
            // 'a' where a is one alnum char and then a quote is a char.
            && next != b'\\';
        if is_lifetime {
            self.bump(); // '
            while {
                let c = self.peek(0);
                c == b'_' || c.is_ascii_alphanumeric()
            } {
                self.bump();
            }
            self.push(TokenKind::Lifetime, start, line);
        } else {
            self.bump();
            self.quoted(b'\'');
            self.push(TokenKind::Char, start, line);
        }
    }

    /// Integer/float literal with suffixes; good enough for rule matching
    /// (exact float grammar subtleties like `1.` vs `1.f()` resolve to
    /// separate tokens here, which the rules don't care about).
    fn number(&mut self) {
        // Hex/octal/binary prefix.
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump_n(2);
            while {
                let c = self.peek(0);
                c.is_ascii_alphanumeric() || c == b'_'
            } {
                self.bump();
            }
            return;
        }
        while {
            let c = self.peek(0);
            c.is_ascii_digit() || c == b'_'
        } {
            self.bump();
        }
        // Fractional part: only if the dot is followed by a digit (so
        // `0..n` and `1.max(2)` don't swallow the dot).
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while {
                let c = self.peek(0);
                c.is_ascii_digit() || c == b'_'
            } {
                self.bump();
            }
        }
        // Exponent and/or type suffix (e8 handled as suffix chars).
        while {
            let c = self.peek(0);
            c.is_ascii_alphanumeric() || c == b'_'
        } {
            // `1e-9`: allow a sign right after e/E.
            let c = self.peek(0);
            self.bump();
            if (c == b'e' || c == b'E') && matches!(self.peek(0), b'+' | b'-') {
                self.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x: HashMap<u32, f64> = HashMap::new();");
        assert!(ts.contains(&(TokenKind::Ident, "HashMap".into())));
        assert!(ts.contains(&(TokenKind::Punct, "::".into())));
    }

    #[test]
    fn nested_block_comment() {
        let ts = kinds("/* a /* b */ c */ x");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].0, TokenKind::Comment);
        assert_eq!(ts[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn raw_string_with_fences() {
        let ts = kinds(r####"let s = r##"quote " and "# inside"## ; y"####);
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("inside")));
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Ident && t == "y"));
    }

    #[test]
    fn byte_string_and_byte_char() {
        let ts = kinds(r#"b"bytes" b'\n' br"raw""#);
        assert_eq!(ts[0].0, TokenKind::Str);
        assert_eq!(ts[1].0, TokenKind::Char);
        assert_eq!(ts[2].0, TokenKind::Str);
    }

    #[test]
    fn char_vs_lifetime() {
        let ts = kinds("'a' &'a str '\\n' 'static");
        assert_eq!(ts[0].0, TokenKind::Char);
        assert_eq!(ts[2].0, TokenKind::Lifetime);
        assert_eq!(ts[4].0, TokenKind::Char);
        assert_eq!(ts[5].0, TokenKind::Lifetime);
    }

    #[test]
    fn line_numbers_and_comments_survive() {
        let ts = tokenize("a\n// audit:allow(x): reason\nb");
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].kind, TokenKind::Comment);
        assert_eq!(ts[1].line, 2);
        assert!(ts[1].text.contains("audit:allow"));
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn range_vs_float() {
        let ts = kinds("0..n 1.5 x[i as usize]");
        assert_eq!(ts[0], (TokenKind::Number, "0".into()));
        assert_eq!(ts[1], (TokenKind::Punct, "..".into()));
        assert_eq!(ts[3], (TokenKind::Number, "1.5".into()));
    }

    #[test]
    fn string_contents_do_not_leak_tokens() {
        let ts = kinds(r#"let s = "HashMap iteration for x in map";"#);
        let idents: Vec<_> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .collect();
        // Only `let` and `s` — nothing from inside the string.
        assert_eq!(idents.len(), 2);
    }
}
