//! The six audit rules and the engine that runs them over a file.
//!
//! All rules work on the lexed token stream of one file at a time
//! ([`SourceFile`]), skip test regions, and honour
//! `// audit:allow(rule): reason` annotations. They are deliberately
//! heuristic: sound enough that every live violation in this workspace is
//! either a real hazard or carries a written justification, and simple
//! enough to audit by reading this file. False positives are the
//! annotation mechanism's job, not a reason to weaken a rule.

use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use crate::source::SourceFile;

/// Rule id for hash-order determinism.
pub const RULE_HASH_ITER: &str = "hash-iter";
/// Rule id for modeled-time purity.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Rule id for panic-free serving paths.
pub const RULE_SERVE_PANIC: &str = "serve-panic";
/// Rule id for float-sum ordering.
pub const RULE_FLOAT_SUM: &str = "float-sum-order";
/// Rule id for lossy node-id casts.
pub const RULE_LOSSY_CAST: &str = "lossy-id-cast";
/// Rule id for serving-side queue growth without a capacity bound.
pub const RULE_UNBOUNDED_QUEUE: &str = "unbounded-queue";
/// Rule id for socket IO without a visible deadline.
pub const RULE_BLOCKING_IO: &str = "blocking-io";
/// Rule id for malformed `audit:allow` annotations (meta-check).
pub const RULE_MALFORMED_ALLOW: &str = "malformed-allow";

/// All real rule ids, in report order.
pub const ALL_RULES: &[&str] = &[
    RULE_HASH_ITER,
    RULE_WALL_CLOCK,
    RULE_SERVE_PANIC,
    RULE_FLOAT_SUM,
    RULE_LOSSY_CAST,
    RULE_UNBOUNDED_QUEUE,
    RULE_BLOCKING_IO,
];

/// The single file allowed to touch `std::time` directly: it defines the
/// `Stopwatch` gateway everything else must measure wall time through.
const WALL_CLOCK_MODULES: &[&str] = &["crates/core/src/parallel.rs"];

/// Crates whose request paths must not panic (R3 scope). The wire crate
/// is in scope: a malformed frame that panics the coordinator is the
/// exact failure mode the corruption suite forbids.
const SERVE_PATH_PREFIXES: &[&str] = &[
    "crates/serve/src/",
    "crates/cluster/src/",
    "crates/wire/src/",
];

/// Crates whose in-memory queues must be capacity-bounded (R6 scope):
/// the serving layer, where overload must surface as explicit shedding,
/// never as unbounded memory growth.
const QUEUE_PATH_PREFIXES: &[&str] = &["crates/serve/src/"];

/// Run every rule over `file`, appending findings (suppressed ones carry
/// their annotation reason).
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    let hash_names = collect_hash_names(file);
    rule_hash_iter(file, &hash_names, out);
    rule_wall_clock(file, out);
    rule_serve_panic(file, out);
    rule_float_sum(file, &hash_names, out);
    rule_lossy_cast(file, out);
    rule_unbounded_queue(file, out);
    rule_blocking_io(file, out);
    rule_malformed_allows(file, out);
}

/// Record one match, resolving suppression against the file's
/// annotations.
fn emit(file: &SourceFile, rule: &str, line: u32, message: String, out: &mut Vec<Finding>) {
    let allowed = file.allow_for(rule, line).map(|a| a.reason.clone());
    out.push(Finding {
        rule: rule.to_string(),
        path: file.path.clone(),
        line,
        message,
        allowed,
    });
}

/// Names bound to `HashMap`/`HashSet` in this file, found from type
/// ascriptions (`name: HashMap<..>`, covering lets, struct fields, and
/// fn params) and initializer bindings (`name = HashMap::new()`).
fn collect_hash_names(file: &SourceFile) -> Vec<String> {
    let code = &file.code;
    let mut names = Vec::new();
    for (k, t) in code.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // `name : HashMap< ... >`, possibly through references:
        // `name: &HashMap<..>`, `name: &mut HashMap<..>`,
        // `name: &'a HashMap<..>`.
        let mut j = k;
        while j >= 1
            && (code[j - 1].is_punct("&")
                || code[j - 1].is_ident("mut")
                || code[j - 1].kind == TokenKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && code[j - 1].is_punct(":") && code[j - 2].kind == TokenKind::Ident {
            push_unique(&mut names, &code[j - 2].text);
            continue;
        }
        // `name = HashMap::new()` / `HashMap::with_capacity(..)`,
        // including turbofish forms.
        if k >= 2 && code[k - 1].is_punct("=") && code[k - 2].kind == TokenKind::Ident {
            push_unique(&mut names, &code[k - 2].text);
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    // Keywords can precede `=` in patterns we don't care about.
    if matches!(name, "let" | "mut" | "if" | "else" | "return") {
        return;
    }
    if !names.iter().any(|n| n == name) {
        names.push(name.to_string());
    }
}

/// Iteration adaptors whose visit order is the hash map's internal order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Idents that, appearing later in the same statement, prove the
/// iteration is re-ordered before it can influence output.
const ORDER_RESTORING: &[&str] = &[
    "BTreeMap",
    "BTreeSet",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// R1: iteration over a `HashMap`/`HashSet` in non-test code. The
/// workspace's determinism guarantees (bit-identical parallel vs.
/// sequential outputs) assume no hash-order-dependent path reaches f64
/// accumulation or serialized/report output, so every hash iteration
/// must either restore an order in the same statement (collect into a
/// `BTreeMap`/`BTreeSet`, sort) or carry a written justification.
fn rule_hash_iter(file: &SourceFile, hash_names: &[String], out: &mut Vec<Finding>) {
    let code = &file.code;
    let is_hash_expr = |t: &Token| {
        t.kind == TokenKind::Ident
            && (hash_names.iter().any(|n| n == &t.text)
                || t.text == "HashMap"
                || t.text == "HashSet")
    };
    for k in 0..code.len() {
        let t = &code[k];
        if file.is_test_line(t.line) {
            continue;
        }
        // `name.iter()` / `name.keys()` … on a hash-typed receiver.
        if t.kind == TokenKind::Ident
            && HASH_ITER_METHODS.contains(&t.text.as_str())
            && k >= 2
            && code[k - 1].is_punct(".")
            && is_hash_expr(&code[k - 2])
            && code.get(k + 1).is_some_and(|n| n.is_punct("("))
        {
            if statement_restores_order(code, k) {
                continue;
            }
            emit(
                file,
                RULE_HASH_ITER,
                t.line,
                format!(
                    "iteration over hash-ordered `{}.{}()` in non-test code; \
                     sort or collect into a BTree collection in the same statement",
                    code[k - 2].text, t.text
                ),
                out,
            );
            continue;
        }
        // `for pat in <expr referencing a hash name> {`
        if t.is_ident("for") {
            // Scan to the `in` keyword at bracket depth 0.
            let mut depth = 0i32;
            let mut j = k + 1;
            let mut in_at = None;
            while j < code.len() && j < k + 40 {
                let u = &code[j];
                if u.is_punct("(") || u.is_punct("[") {
                    depth += 1;
                } else if u.is_punct(")") || u.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && u.is_ident("in") {
                    in_at = Some(j);
                    break;
                } else if u.is_punct("{") || u.is_punct(";") {
                    break;
                }
                j += 1;
            }
            let Some(in_at) = in_at else { continue };
            // Scan the iterated expression up to the loop body `{`.
            let mut depth = 0i32;
            let mut j = in_at + 1;
            while j < code.len() {
                let u = &code[j];
                if u.is_punct("(") || u.is_punct("[") {
                    depth += 1;
                } else if u.is_punct(")") || u.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && u.is_punct("{") {
                    break;
                }
                if is_hash_expr(u) {
                    // Followed by an order-restoring adaptor?
                    if !statement_restores_order(code, j) {
                        emit(
                            file,
                            RULE_HASH_ITER,
                            t.line,
                            format!(
                                "`for … in` over hash-ordered `{}` in non-test code; \
                                 iterate a sorted copy or use a BTree collection",
                                u.text
                            ),
                            out,
                        );
                    }
                    break;
                }
                j += 1;
            }
        }
    }
}

/// True when the statement containing token `k` later mentions an
/// order-restoring ident (sort / BTree collect) before the terminating
/// `;` — the exemption idiom for R1/R4.
fn statement_restores_order(code: &[Token], k: usize) -> bool {
    for t in code.iter().skip(k + 1).take(120) {
        if t.is_punct(";") {
            return false;
        }
        if t.kind == TokenKind::Ident && ORDER_RESTORING.contains(&t.text.as_str()) {
            return true;
        }
    }
    false
}

/// R2: wall-clock reads (`Instant::now`, `SystemTime`) outside the
/// designated measurement module. Modeled-time code (the cluster cost
/// model, the open-loop virtual clock) must stay figure-accurate and
/// deterministic, so real time may only enter through
/// `ppr_core::parallel::Stopwatch`.
fn rule_wall_clock(file: &SourceFile, out: &mut Vec<Finding>) {
    if WALL_CLOCK_MODULES.iter().any(|m| file.path.ends_with(m)) {
        return;
    }
    let code = &file.code;
    for (k, t) in code.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        let flagged = if t.is_ident("Instant") {
            // `Instant::now()` or a `use std::time::Instant` both count:
            // importing the type is how the dependency creeps in.
            code.get(k + 1).map(|n| n.is_punct("::")).unwrap_or(false)
                || code.get(k.wrapping_sub(1)).map(|p| p.is_punct("::")).unwrap_or(false)
        } else {
            t.is_ident("SystemTime")
        };
        if flagged {
            emit(
                file,
                RULE_WALL_CLOCK,
                t.line,
                format!(
                    "wall-clock access (`{}`) outside core::parallel; \
                     measure through ppr_core::parallel::Stopwatch",
                    t.text
                ),
                out,
            );
        }
    }
}

/// R3: panic sources in serving request paths (`ppr-serve`,
/// `ppr-cluster`): `unwrap()`, `expect()`, `panic!`-family macros, and
/// slice indexing of the form `x[i as usize]`. A panicking worker thread
/// poisons a whole batch; request paths must degrade, not die. `assert!`
/// family is deliberately excluded — those are documented invariant
/// checks, not error handling.
fn rule_serve_panic(file: &SourceFile, out: &mut Vec<Finding>) {
    if !SERVE_PATH_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    let code = &file.code;
    for (k, t) in code.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if k >= 1
                    && code[k - 1].is_punct(".")
                    && code.get(k + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                emit(
                    file,
                    RULE_SERVE_PANIC,
                    t.line,
                    format!(
                        "`.{}()` on a serving path; handle the None/Err case \
                         or justify why it is unreachable",
                        t.text
                    ),
                    out,
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if code.get(k + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                emit(
                    file,
                    RULE_SERVE_PANIC,
                    t.line,
                    format!("`{}!` on a serving path", t.text),
                    out,
                );
            }
            // `expr[i as usize]`: indexing with a cast index is the
            // pattern where an out-of-range id panics at serve time.
            "as" if code.get(k + 1).is_some_and(|n| n.is_ident("usize"))
                && cast_is_inside_index(code, k) =>
            {
                emit(
                    file,
                    RULE_SERVE_PANIC,
                    t.line,
                    "slice indexing with `[… as usize]` on a serving path; \
                     use `.get(..)` or justify the bound"
                        .to_string(),
                    out,
                );
            }
            _ => {}
        }
    }
}

/// True when token `k` (an `as`) sits directly inside `[ … ]` index
/// brackets (attribute brackets `#[…]` excluded).
fn cast_is_inside_index(code: &[Token], k: usize) -> bool {
    // Walk backward to the nearest unmatched `[`.
    let mut depth = 0i32;
    let mut i = k;
    while i > 0 {
        i -= 1;
        let t = &code[i];
        if t.is_punct("]") || t.is_punct(")") || t.is_punct("}") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("{") {
            if depth == 0 {
                return false;
            }
            depth -= 1;
        } else if t.is_punct("[") {
            if depth == 0 {
                // Attribute `#[` or slice-literal after `=`/`(`/`,`
                // don't index; an index bracket follows an expression
                // (ident, `)`, or `]`).
                if i == 0 {
                    return false;
                }
                let prev = &code[i - 1];
                return prev.kind == TokenKind::Ident && !prev.is_ident("mut")
                    || prev.is_punct(")")
                    || prev.is_punct("]");
            }
            depth -= 1;
        }
    }
    false
}

/// R4: f64 reduction (`.sum()`, float-seeded `.fold(…)`) over an
/// iterator whose statement touches a hash-ordered collection. Float
/// addition is not associative, so hash-order iteration feeding a float
/// reduction breaks bit-identical reproducibility even when the *set* of
/// summands is deterministic. Order-insensitive combiners (`f64::max`,
/// `f64::min`) are exempt.
fn rule_float_sum(file: &SourceFile, hash_names: &[String], out: &mut Vec<Finding>) {
    let code = &file.code;
    let is_hash_token = |t: &Token| {
        t.kind == TokenKind::Ident
            && (hash_names.iter().any(|n| n == &t.text)
                || t.text == "HashMap"
                || t.text == "HashSet")
    };
    for (k, t) in code.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if t.kind != TokenKind::Ident || !(t.text == "sum" || t.text == "fold") {
            continue;
        }
        if !(k >= 1 && code[k - 1].is_punct(".")) {
            continue;
        }
        // Statement bounds: back to the previous `;`/`{`/`}`.
        let start = (0..k)
            .rev()
            .find(|&i| {
                code[i].is_punct(";") || code[i].is_punct("{") || code[i].is_punct("}")
            })
            .map(|i| i + 1)
            .unwrap_or(0);
        let stmt_has_hash = code[start..k].iter().any(&is_hash_token);
        if !stmt_has_hash {
            continue;
        }
        let float_involved = if t.text == "sum" {
            // `.sum::<f64>()` or an f64 ascription in the statement.
            code.iter()
                .skip(start)
                .take(k - start + 8)
                .any(|u| u.is_ident("f64"))
        } else {
            // `.fold(0.0, …)` — float seed literal right after `(`.
            let seed_is_float = code
                .get(k + 2)
                .map(|u| u.kind == TokenKind::Number && (u.text.contains('.') || u.text.contains("f64")))
                .unwrap_or(false);
            // Order-insensitive combiner exemption.
            let mut insensitive = false;
            let mut depth = 0i32;
            for u in code.iter().skip(k + 1).take(60) {
                if u.is_punct("(") {
                    depth += 1;
                } else if u.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if u.is_ident("max") || u.is_ident("min") {
                    insensitive = true;
                }
            }
            seed_is_float && !insensitive
        };
        if float_involved && !statement_restores_order(code, k) {
            emit(
                file,
                RULE_FLOAT_SUM,
                t.line,
                format!(
                    "float `.{}` over hash-ordered iteration; float addition is \
                     order-sensitive — sort first or reduce over a BTree collection",
                    t.text
                ),
                out,
            );
        }
    }
}

/// Cast targets R5 guards: the node-id width and anything narrower.
const NARROW_TARGETS: &[&str] = &["u32", "NodeId", "u16", "u8"];

/// R5: `as` casts of *computed* expressions (operand ending in `)` or
/// `]`) down to node-id width. `expr as u32` silently truncates; id
/// arithmetic must go through `ppr_graph::node_id` (debug-checked) or
/// carry a justification for why the value is bounded. Casting a bare
/// identifier or literal is not flagged (the workspace convention is
/// that plain locals of `usize` loop index type are bounded by
/// construction), and range bounds `start..expr as T` are exempt.
fn rule_lossy_cast(file: &SourceFile, out: &mut Vec<Finding>) {
    let code = &file.code;
    for (k, t) in code.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if !t.is_ident("as") {
            continue;
        }
        let Some(target) = code.get(k + 1) else { continue };
        if !(target.kind == TokenKind::Ident && NARROW_TARGETS.contains(&target.text.as_str())) {
            continue;
        }
        if k == 0 {
            continue;
        }
        let prev = &code[k - 1];
        if !(prev.is_punct(")") || prev.is_punct("]")) {
            continue;
        }
        // Walk the postfix chain back to the operand start.
        let Some(start) = operand_start(code, k - 1) else { continue };
        // Range-bound exemption: `lo..expr as T` is an iteration bound,
        // already guarded by the collection's size.
        if start > 0 && (code[start - 1].is_punct("..") || code[start - 1].is_punct("..=")) {
            continue;
        }
        emit(
            file,
            RULE_LOSSY_CAST,
            t.line,
            format!(
                "computed expression cast `as {}` can silently truncate; \
                 use ppr_graph::node_id(..) or justify the bound",
                target.text
            ),
            out,
        );
    }
}

/// Index of the first token of the postfix expression whose last token
/// is at `end` (a `)` or `]`): walks back over matched pairs and
/// `recv.method` chains.
fn operand_start(code: &[Token], end: usize) -> Option<usize> {
    let mut i = end;
    loop {
        let t = &code[i];
        if t.is_punct(")") || t.is_punct("]") {
            // Match backward to the opener.
            let close = if t.is_punct(")") { ")" } else { "]" };
            let open = if t.is_punct(")") { "(" } else { "[" };
            let mut depth = 0i32;
            loop {
                let u = &code[i];
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if i == 0 {
                    return None;
                }
                i -= 1;
            }
            // `(expr) as T` with nothing before the paren: operand is
            // the parenthesized expression itself.
            if i == 0 {
                return Some(0);
            }
            let before = &code[i - 1];
            if before.kind == TokenKind::Ident
                && !matches!(before.text.as_str(), "if" | "match" | "while" | "in" | "return")
            {
                // `f(args)` / `x[idx]`: include the callee/receiver.
                i -= 1;
                continue;
            }
            return Some(i);
        } else if t.kind == TokenKind::Ident || t.kind == TokenKind::Number {
            // End of a `.method` chain hop: `recv . name` — keep
            // walking if a dot precedes.
            if i >= 2 && code[i - 1].is_punct(".") {
                i -= 2;
                continue;
            }
            if i >= 2 && code[i - 1].is_punct("::") {
                i -= 2;
                continue;
            }
            return Some(i);
        } else {
            return Some(i + 1);
        }
    }
}

/// Receiver-name fragments that mark a binding as a request queue for
/// R6, whatever its concrete collection type.
const QUEUEISH_NAMES: &[&str] = &["queue", "backlog", "pending"];

/// R6: growing a serving-side queue without an enforced capacity.
/// Flags `push_back`/`push_front` on any non-`self` receiver (the
/// `VecDeque` growth calls), plus `push`/`insert`/`extend` on receivers
/// whose name says queue/backlog/pending. Every such site must sit
/// behind a cap check — shed the request or count the overflow — or
/// carry a written justification: under overload an uncapped queue turns
/// a latency problem into an out-of-memory crash, and the resilience
/// contract is that every admitted request resolves to Exact,
/// Approximate, or an *explicit* Shed.
fn rule_unbounded_queue(file: &SourceFile, out: &mut Vec<Finding>) {
    if !QUEUE_PATH_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    let code = &file.code;
    for (k, t) in code.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        // Method-call shape: `recv . name (` with an ident receiver.
        if t.kind != TokenKind::Ident
            || k < 2
            || !code[k - 1].is_punct(".")
            || code[k - 2].kind != TokenKind::Ident
            || !code.get(k + 1).is_some_and(|n| n.is_punct("("))
        {
            continue;
        }
        let recv = &code[k - 2];
        // `self.push_front(..)` is the intrusive-list idiom inside a
        // collection's own impl (the LRU cache), not queue growth.
        let deque_grow = matches!(t.text.as_str(), "push_back" | "push_front")
            && !recv.is_ident("self");
        let named_grow = matches!(t.text.as_str(), "push" | "insert" | "extend") && {
            let r = recv.text.to_ascii_lowercase();
            QUEUEISH_NAMES.iter().any(|n| r.contains(n))
        };
        if deque_grow || named_grow {
            emit(
                file,
                RULE_UNBOUNDED_QUEUE,
                t.line,
                format!(
                    "`{}.{}(..)` grows a serving-side queue; enforce a \
                     capacity cap (shed or count overflow) or justify the bound",
                    recv.text, t.text
                ),
                out,
            );
        }
    }
}

/// Socket types whose presence anywhere in a file puts its IO calls in
/// R7's scope. Files that never touch a socket keep using `Read`/`Write`
/// on files and buffers unbothered.
const SOCKET_TYPES: &[&str] = &[
    "TcpStream",
    "TcpListener",
    "UnixStream",
    "UnixListener",
    "UdpSocket",
];

/// Read-side calls R7 guards, each requiring `set_read_timeout`.
const BLOCKING_READS: &[&str] = &["read", "read_exact", "read_to_end", "read_to_string"];

/// Write-side calls R7 guards, each requiring `set_write_timeout`.
const BLOCKING_WRITES: &[&str] = &["write", "write_all"];

/// R7: socket reads/writes without a visible deadline. A blocking
/// `read`/`write` on a `std::net` stream with no timeout turns one dead
/// peer into a hung coordinator — the supervision loop can only treat a
/// worker as crashed if every IO on its connection is bounded. Every
/// such call must have the matching `set_read_timeout` /
/// `set_write_timeout` visible in the *same function* (the only scope a
/// token-level audit can vouch for), or carry a written justification.
fn rule_blocking_io(file: &SourceFile, out: &mut Vec<Finding>) {
    let code = &file.code;
    if !code
        .iter()
        .any(|t| t.kind == TokenKind::Ident && SOCKET_TYPES.contains(&t.text.as_str()))
    {
        return;
    }
    let spans = function_spans(code);
    for (k, t) in code.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        let needed = if BLOCKING_READS.contains(&t.text.as_str()) {
            "set_read_timeout"
        } else if BLOCKING_WRITES.contains(&t.text.as_str()) {
            "set_write_timeout"
        } else {
            continue;
        };
        // Method-call shape only: `recv.read_exact(..)`.
        if !(k >= 1 && code[k - 1].is_punct(".") && code.get(k + 1).is_some_and(|n| n.is_punct("(")))
        {
            continue;
        }
        // The innermost enclosing fn must set the matching timeout.
        let span = spans
            .iter()
            .filter(|&&(s, e)| s <= k && k <= e)
            .max_by_key(|&&(s, _)| s);
        let covered =
            span.is_some_and(|&(s, e)| code[s..=e].iter().any(|u| u.is_ident(needed)));
        if !covered {
            emit(
                file,
                RULE_BLOCKING_IO,
                t.line,
                format!(
                    "`.{}(..)` in a socket-handling file without `{}` visible in \
                     the same function; set a deadline or justify the blocking call",
                    t.text, needed
                ),
                out,
            );
        }
    }
}

/// Token spans `(fn_token, closing_brace)` of every function with a body
/// in the file, innermost discoverable by maximal start index.
fn function_spans(code: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for k in 0..code.len() {
        if !code[k].is_ident("fn") {
            continue;
        }
        // Find the body `{` at bracket depth 0; `;` first means a
        // bodyless trait/extern fn, depth underflow means this `fn` was
        // a fn-pointer type inside someone else's signature.
        let mut depth = 0i32;
        let mut open = None;
        let mut j = k + 1;
        while j < code.len() {
            let t = &code[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if depth == 0 && t.is_punct("{") {
                open = Some(j);
                break;
            } else if depth == 0 && t.is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        // Match the body's braces to the function's end.
        let mut depth = 0i32;
        for (j, t) in code.iter().enumerate().skip(open) {
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    spans.push((k, j));
                    break;
                }
            }
        }
    }
    spans
}

/// Meta-check: `audit:allow` annotations must name a known rule and give
/// a non-empty reason — otherwise the suppression ledger in
/// `AUDIT_baseline.json` loses meaning.
fn rule_malformed_allows(file: &SourceFile, out: &mut Vec<Finding>) {
    for a in &file.allows {
        let known = ALL_RULES.contains(&a.rule.as_str());
        if !known || a.reason.is_empty() {
            out.push(Finding {
                rule: RULE_MALFORMED_ALLOW.to_string(),
                path: file.path.clone(),
                line: a.line,
                message: if known {
                    format!("audit:allow({}) has no reason; write the justification", a.rule)
                } else {
                    format!(
                        "audit:allow({}) names an unknown rule (known: {})",
                        a.rule,
                        ALL_RULES.join(", ")
                    )
                },
                allowed: None,
            });
        }
    }
}
