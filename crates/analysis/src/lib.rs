#![deny(missing_docs)]

//! Repo-specific static analysis behind `repro audit`.
//!
//! The workspace's headline guarantee — parallel fan-out, sharded
//! serving, and incremental maintenance all **bit-identical** to the
//! sequential paper-accurate path — is pinned dynamically by proptests,
//! which sample a tiny corner of the input space. This crate checks the
//! *structural* invariants those guarantees rest on, on every commit:
//!
//! * [`rules::RULE_HASH_ITER`] — no hash-order iteration in non-test
//!   code without an order-restoring step;
//! * [`rules::RULE_WALL_CLOCK`] — no wall-clock reads outside the
//!   `core::parallel` measurement gateway, so modeled-time/virtual-clock
//!   code stays figure-accurate;
//! * [`rules::RULE_SERVE_PANIC`] — no panic sources on serving request
//!   paths (`ppr-serve`, `ppr-cluster`);
//! * [`rules::RULE_FLOAT_SUM`] — no float reductions over hash-ordered
//!   iteration (float addition is order-sensitive);
//! * [`rules::RULE_LOSSY_CAST`] — no unchecked narrowing casts of
//!   computed expressions to node-id width;
//! * [`rules::RULE_UNBOUNDED_QUEUE`] — no uncapped queue growth in the
//!   serving layer: under overload a request must be shed (or its
//!   overflow counted) explicitly, never absorbed into unbounded memory;
//! * [`rules::RULE_BLOCKING_IO`] — no socket reads/writes without the
//!   matching `set_read_timeout`/`set_write_timeout` visible in the same
//!   function: a dead peer must surface as a timeout the supervisor can
//!   act on, never as a hung coordinator.
//!
//! There is deliberately no `syn` here (the vendored deps are offline
//! stand-ins): [`lexer`] is a small hand-rolled Rust lexer, and the
//! rules in [`rules`] are transparent token-stream heuristics. False
//! positives are suppressed inline with
//! `// audit:allow(<rule>): <reason>`, which the report counts — and
//! `AUDIT_baseline.json` pins, so new suppressions fail CI like new
//! violations do.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use report::{AuditReport, Finding};

use source::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Audit in-memory sources given as `(path, text)` pairs. This is the
/// engine behind [`run_audit`] and the entry point fixture tests use.
pub fn audit_sources(sources: &[(&str, &str)]) -> AuditReport {
    let mut report = AuditReport {
        findings: Vec::new(),
        files_scanned: sources.len(),
    };
    for (path, text) in sources {
        let file = SourceFile::parse(path, text);
        rules::check_file(&file, &mut report.findings);
    }
    report.sort();
    report
}

/// Audit the workspace rooted at `root`: every `.rs` file under
/// `<root>/src` and `<root>/crates/*/src`. Vendored stand-ins,
/// `target/`, integration `tests/`, `benches/`, and `examples/` are out
/// of scope — the rules guard production library code.
pub fn run_audit(root: &Path) -> io::Result<AuditReport> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs_files(&dir.join("src"), &mut files)?;
        }
    }
    files.sort();
    let mut report = AuditReport {
        findings: Vec::new(),
        files_scanned: files.len(),
    };
    for path in &files {
        let text = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let file = SourceFile::parse(&rel, &text);
        rules::check_file(&file, &mut report.findings);
    }
    report.sort();
    Ok(report)
}

/// Locate the workspace root by ascending from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Recursively gather `.rs` files under `dir` (no-op when absent).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::*;

    fn violations_of(report: &AuditReport, rule: &str) -> usize {
        report.violations().filter(|f| f.rule == rule).count()
    }

    // ---- seeded fixture violations, one per rule (acceptance gate) ----

    #[test]
    fn fixture_hash_iter_fires() {
        let src = "\
use std::collections::HashMap;
fn emit(m: &HashMap<u32, f64>) {
    for (k, v) in m.iter() {
        println!(\"{k} {v}\");
    }
}
";
        let r = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        assert!(violations_of(&r, RULE_HASH_ITER) >= 1, "{}", r.render_text());
        assert!(!r.is_clean());
    }

    #[test]
    fn fixture_wall_clock_fires() {
        let src = "\
use std::time::Instant;
fn measure() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
";
        let r = audit_sources(&[("crates/core/src/gpa.rs", src)]);
        assert!(violations_of(&r, RULE_WALL_CLOCK) >= 1, "{}", r.render_text());
        assert!(!r.is_clean());
    }

    #[test]
    fn fixture_serve_panic_fires() {
        let src = "\
fn answer(xs: &[f64], i: u32) -> f64 {
    let first = xs.first().unwrap();
    first + xs[i as usize]
}
fn boom() {
    panic!(\"nope\");
}
";
        let r = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        // unwrap + indexing + panic! = three distinct findings.
        assert!(violations_of(&r, RULE_SERVE_PANIC) >= 3, "{}", r.render_text());
        assert!(!r.is_clean());
    }

    #[test]
    fn fixture_float_sum_fires() {
        let src = "\
use std::collections::HashMap;
fn total(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum::<f64>()
}
";
        let r = audit_sources(&[("crates/core/src/fix.rs", src)]);
        assert!(violations_of(&r, RULE_FLOAT_SUM) >= 1, "{}", r.render_text());
        assert!(!r.is_clean());
    }

    #[test]
    fn fixture_lossy_cast_fires() {
        let src = "\
fn id_of(xs: &[u64]) -> u32 {
    xs.len() as u32
}
";
        let r = audit_sources(&[("crates/graph/src/fix.rs", src)]);
        assert!(violations_of(&r, RULE_LOSSY_CAST) >= 1, "{}", r.render_text());
        assert!(!r.is_clean());
    }

    #[test]
    fn fixture_unbounded_queue_fires() {
        let src = "\
use std::collections::VecDeque;
fn enqueue(q: &mut VecDeque<u32>, pending_writes: &mut Vec<u32>, x: u32) {
    q.push_back(x);
    pending_writes.push(x);
}
";
        let r = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        // push_back on a deque + push on a `pending…` receiver.
        assert!(violations_of(&r, RULE_UNBOUNDED_QUEUE) >= 2, "{}", r.render_text());
        assert!(!r.is_clean());
    }

    // ---- suppression, exemption, and scope behaviour ----

    #[test]
    fn allow_annotation_suppresses_and_is_counted() {
        let src = "\
use std::collections::HashSet;
fn probe(s: &HashSet<u32>) -> Vec<u32> {
    // audit:allow(hash-iter): membership only, order never escapes
    s.iter().copied().collect()
}
";
        let r = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_HASH_ITER), 0, "{}", r.render_text());
        assert_eq!(r.allowed().count(), 1);
        assert!(r.is_clean());
        let counts = r.allow_counts();
        assert_eq!(
            counts
                .get(&("crates/serve/src/fix.rs".into(), RULE_HASH_ITER.into()))
                .copied(),
            Some(1)
        );
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "fn f() {} // audit:allow(hash-iter)\n";
        let r = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_MALFORMED_ALLOW), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn allow_with_unknown_rule_is_a_violation() {
        let src = "fn f() {} // audit:allow(made-up): because\n";
        let r = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_MALFORMED_ALLOW), 1);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;
    #[test]
    fn t() {
        let m: HashMap<u32, f64> = HashMap::new();
        for (k, v) in m.iter() {
            let _ = (k, v, Instant::now());
        }
        let x: Vec<u64> = vec![];
        let _ = x.len() as u32;
    }
}
";
        let r = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn btree_collect_exempts_hash_iter() {
        let src = "\
use std::collections::{BTreeMap, HashMap};
fn stable(m: &HashMap<u32, f64>) -> BTreeMap<u32, f64> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>()
}
";
        let r = audit_sources(&[("crates/core/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_HASH_ITER), 0, "{}", r.render_text());
    }

    #[test]
    fn sort_in_statement_exempts_hash_iter() {
        let src = "\
use std::collections::HashSet;
fn sorted(s: &HashSet<u32>) -> Vec<u32> {
    let v: std::collections::BTreeSet<u32> = s.iter().copied().collect::<std::collections::BTreeSet<_>>();
    v.into_iter().collect()
}
";
        let r = audit_sources(&[("crates/core/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_HASH_ITER), 0, "{}", r.render_text());
    }

    #[test]
    fn wall_clock_gateway_module_is_exempt() {
        let src = "\
use std::time::Instant;
pub fn run_timed() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
";
        let r = audit_sources(&[("crates/core/src/parallel.rs", src)]);
        assert_eq!(violations_of(&r, RULE_WALL_CLOCK), 0, "{}", r.render_text());
    }

    #[test]
    fn serve_panic_scope_is_serve_and_cluster_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let in_scope = audit_sources(&[("crates/cluster/src/fix.rs", src)]);
        assert_eq!(violations_of(&in_scope, RULE_SERVE_PANIC), 1);
        let out_of_scope = audit_sources(&[("crates/core/src/fix.rs", src)]);
        assert_eq!(violations_of(&out_of_scope, RULE_SERVE_PANIC), 0);
    }

    #[test]
    fn float_max_fold_is_exempt() {
        let src = "\
use std::collections::HashMap;
fn peak(m: &HashMap<u32, f64>) -> f64 {
    m.values().fold(0.0, |a, &b| a.max(b))
}
";
        let r = audit_sources(&[("crates/core/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_FLOAT_SUM), 0, "{}", r.render_text());
    }

    #[test]
    fn int_sum_over_vec_is_not_flagged() {
        let src = "\
fn total(xs: &[Vec<u32>]) -> usize {
    xs.iter().map(Vec::len).sum()
}
";
        let r = audit_sources(&[("crates/core/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_FLOAT_SUM), 0, "{}", r.render_text());
    }

    #[test]
    fn range_bound_cast_is_exempt() {
        let src = "\
fn ids(n: usize, g: &Vec<u32>) -> Vec<u32> {
    (0..g.len() as u32).chain(0..n as u32).collect()
}
";
        let r = audit_sources(&[("crates/graph/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_LOSSY_CAST), 0, "{}", r.render_text());
    }

    #[test]
    fn bare_ident_cast_is_not_flagged() {
        let src = "fn f(i: usize) -> u32 { i as u32 }\n";
        let r = audit_sources(&[("crates/graph/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_LOSSY_CAST), 0, "{}", r.render_text());
    }

    #[test]
    fn unbounded_queue_scope_is_serve_only() {
        let src = "\
use std::collections::VecDeque;
fn enqueue(q: &mut VecDeque<u32>, x: u32) {
    q.push_back(x);
}
";
        let in_scope = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        assert_eq!(violations_of(&in_scope, RULE_UNBOUNDED_QUEUE), 1);
        let out_of_scope = audit_sources(&[("crates/cluster/src/fix.rs", src)]);
        assert_eq!(violations_of(&out_of_scope, RULE_UNBOUNDED_QUEUE), 0);
    }

    #[test]
    fn intrusive_self_push_is_not_queue_growth() {
        // The LRU cache's own `self.push_front(slot)` relinks an
        // intrusive list inside a bounded collection — not enqueueing.
        let src = "\
impl Lru {
    fn touch(&mut self, slot: usize) {
        self.detach(slot);
        self.push_front(slot);
    }
}
";
        let r = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_UNBOUNDED_QUEUE), 0, "{}", r.render_text());
    }

    #[test]
    fn plain_vec_push_is_not_flagged_without_queueish_name() {
        let src = "\
fn collect(out: &mut Vec<u32>, x: u32) {
    out.push(x);
    out.extend([x]);
}
";
        let r = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_UNBOUNDED_QUEUE), 0, "{}", r.render_text());
    }

    #[test]
    fn fixture_blocking_io_fires() {
        let src = "\
use std::io::Read;
use std::net::TcpStream;
fn drain(s: &mut TcpStream) -> Vec<u8> {
    let mut buf = vec![0u8; 64];
    let _ = s.read(&mut buf);
    buf
}
";
        let r = audit_sources(&[("crates/wire/src/fix.rs", src)]);
        assert!(violations_of(&r, RULE_BLOCKING_IO) >= 1, "{}", r.render_text());
        assert!(!r.is_clean());
    }

    #[test]
    fn blocking_io_with_matching_timeout_in_same_fn_is_clean() {
        let src = "\
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
fn exchange(s: &mut TcpStream, out: &[u8]) -> std::io::Result<Vec<u8>> {
    s.set_write_timeout(Some(Duration::from_secs(1)))?;
    s.write_all(out)?;
    s.set_read_timeout(Some(Duration::from_secs(1)))?;
    let mut buf = vec![0u8; 64];
    s.read_exact(&mut buf)?;
    Ok(buf)
}
";
        let r = audit_sources(&[("crates/wire/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_BLOCKING_IO), 0, "{}", r.render_text());
    }

    #[test]
    fn blocking_io_requires_the_matching_setter() {
        // A read deadline does not excuse an unbounded write.
        let src = "\
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;
fn push(s: &mut TcpStream, out: &[u8]) -> std::io::Result<()> {
    s.set_read_timeout(Some(Duration::from_secs(1)))?;
    s.write_all(out)
}
";
        let r = audit_sources(&[("crates/wire/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_BLOCKING_IO), 1, "{}", r.render_text());
    }

    #[test]
    fn blocking_io_timeout_in_another_fn_does_not_cover() {
        let src = "\
use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;
fn arm(s: &mut TcpStream) -> std::io::Result<()> {
    s.set_read_timeout(Some(Duration::from_secs(1)))
}
fn drain(s: &mut TcpStream) -> std::io::Result<usize> {
    let mut buf = vec![0u8; 64];
    s.read(&mut buf)
}
";
        let r = audit_sources(&[("crates/wire/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_BLOCKING_IO), 1, "{}", r.render_text());
    }

    #[test]
    fn blocking_io_ignores_files_without_socket_types() {
        // File/buffer IO is out of scope: no socket type in the file.
        let src = "\
use std::io::Read;
fn slurp(f: &mut std::fs::File) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    Ok(buf)
}
";
        let r = audit_sources(&[("crates/core/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_BLOCKING_IO), 0, "{}", r.render_text());
    }

    #[test]
    fn blocking_io_allow_annotation_suppresses() {
        let src = "\
use std::io::Read;
use std::net::TcpStream;
fn drain(s: &mut TcpStream) -> std::io::Result<usize> {
    let mut buf = vec![0u8; 64];
    // audit:allow(blocking-io): connection is nonblocking-mode already
    s.read(&mut buf)
}
";
        let r = audit_sources(&[("crates/wire/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_BLOCKING_IO), 0, "{}", r.render_text());
        assert_eq!(r.allowed().count(), 1);
    }

    #[test]
    fn serve_panic_covers_the_wire_crate() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = audit_sources(&[("crates/wire/src/fix.rs", src)]);
        assert_eq!(violations_of(&r, RULE_SERVE_PANIC), 1);
    }

    #[test]
    fn exit_semantics_one_violation_per_rule_all_fire_together() {
        // One source seeding all seven rules at once: the audit must
        // report at least one violation of each.
        let src = "\
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::TcpStream;
use std::time::Instant;
fn bad(m: &HashMap<u32, f64>, xs: &[f64], i: u32, sock: &mut TcpStream) -> f64 {
    let t = Instant::now();
    let mut acc = 0.0;
    for (_, v) in m.iter() {
        acc += v;
    }
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(i);
    let mut buf = vec![0u8; 8];
    let _ = sock.read(&mut buf);
    let s = m.values().sum::<f64>();
    let id = xs.len() as u32;
    let x = xs[i as usize] + xs.first().unwrap();
    acc + s + x + id as f64 + t.elapsed().as_secs_f64()
}
";
        let r = audit_sources(&[("crates/serve/src/fix.rs", src)]);
        for rule in ALL_RULES {
            assert!(
                violations_of(&r, rule) >= 1,
                "rule {rule} did not fire:\n{}",
                r.render_text()
            );
        }
    }

    // ---- the workspace itself must be clean (tier-1 enforcement) ----

    #[test]
    fn workspace_audit_is_clean() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root above crates/analysis");
        let report = run_audit(&root).expect("workspace audit runs");
        assert!(report.files_scanned > 30, "walked the real workspace");
        let violations: Vec<String> = report
            .violations()
            .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule, f.message))
            .collect();
        assert!(
            violations.is_empty(),
            "unannotated audit violations:\n{}",
            violations.join("\n")
        );
    }
}
