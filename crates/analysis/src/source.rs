//! Per-file source model: tokens, test-region classification, and
//! `// audit:allow(rule): reason` suppression annotations.
//!
//! The rules only fire on *production* code. A line is in a test region
//! when it is inside the braces of an item carrying `#[cfg(test)]` or
//! `#[test]` (the workspace convention for unit tests; integration tests
//! under `tests/` are excluded at the file-walk level). Regions are found
//! by brace tracking on the token stream, which is robust against braces
//! in strings/comments because the lexer already removed those.

use crate::lexer::{tokenize, Token, TokenKind};

/// A parsed `audit:allow` annotation.
#[derive(Clone, Debug)]
pub struct AllowAnnotation {
    /// Rule id the annotation suppresses (e.g. `hash-iter`).
    pub rule: String,
    /// The justification after the colon. Empty reasons are themselves
    /// reported as violations by the meta-check in the engine.
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Lines this annotation covers: its own line, plus — when the
    /// comment has no code before it on the line — the first code line
    /// below it.
    pub covers: Vec<u32>,
}

/// One source file prepared for rule evaluation.
pub struct SourceFile {
    /// Workspace-relative path (display + report key).
    pub path: String,
    /// All tokens except comments, in order.
    pub code: Vec<Token>,
    /// Comment tokens, in order.
    pub comments: Vec<Token>,
    /// `test_lines[l]` is true when 1-based line `l+1` is inside a
    /// `#[cfg(test)]`/`#[test]` region.
    test_lines: Vec<bool>,
    /// Parsed allow annotations.
    pub allows: Vec<AllowAnnotation>,
}

impl SourceFile {
    /// Lex and classify `text` as the contents of `path`.
    pub fn parse(path: &str, text: &str) -> Self {
        let all = tokenize(text);
        let mut code = Vec::new();
        let mut comments = Vec::new();
        for t in all {
            if t.kind == TokenKind::Comment {
                comments.push(t);
            } else {
                code.push(t);
            }
        }
        let line_count = text.lines().count().max(1);
        let test_lines = classify_test_lines(&code, line_count);
        let allows = parse_allows(&comments, &code);
        Self {
            path: path.to_string(),
            code,
            comments,
            test_lines,
            allows,
        }
    }

    /// True when 1-based `line` is inside a test region.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get((line as usize).saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// The allow annotation (if any) covering `line` for `rule`.
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&AllowAnnotation> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && a.covers.contains(&line))
    }
}

/// Mark every line inside a `#[cfg(test)]` / `#[test]` item's braces.
///
/// Strategy: walk the code tokens; when we see `#` `[` and the attribute
/// path contains `test`, remember that the *next* brace-delimited block
/// belongs to a test item and flood its line span. Nested attribute
/// brackets (e.g. `#[cfg(all(test, feature = "x"))]`) are handled by
/// bracket counting.
fn classify_test_lines(code: &[Token], line_count: usize) -> Vec<bool> {
    let mut test = vec![false; line_count];
    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_punct("#") && i + 1 < code.len() && code[i + 1].is_punct("[") {
            // Scan the attribute to its closing bracket.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut is_test_attr = false;
            while j < code.len() && depth > 0 {
                if code[j].is_punct("[") {
                    depth += 1;
                } else if code[j].is_punct("]") {
                    depth -= 1;
                } else if code[j].is_ident("test") || code[j].is_ident("tests") {
                    // #[test], #[cfg(test)], #[cfg(all(test, ...))],
                    // #[tokio::test]-style — all contain the ident.
                    is_test_attr = true;
                }
                j += 1;
            }
            if is_test_attr {
                // Find the start of the item body: the first `{` at
                // depth 0 relative to parens/brackets after the
                // attribute (skipping further attributes).
                let (open, close) = match find_item_braces(code, j) {
                    Some(span) => span,
                    None => {
                        i = j;
                        continue;
                    }
                };
                let from = code[open].line as usize;
                let to = code[close].line as usize;
                for l in from..=to {
                    if l >= 1 && l <= line_count {
                        test[l - 1] = true;
                    }
                }
                // Also mark the attribute's own lines.
                let attr_from = code[i].line as usize;
                for l in attr_from..from {
                    if l >= 1 && l <= line_count {
                        test[l - 1] = true;
                    }
                }
                i = close + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    test
}

/// From token index `from` (just past an attribute), find the indices of
/// the `{` opening the next item's body and its matching `}`.
fn find_item_braces(code: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut k = from;
    // Skip any further attributes (`#[...]`) before the item keyword.
    while k + 1 < code.len() && code[k].is_punct("#") && code[k + 1].is_punct("[") {
        let mut depth = 1i32;
        k += 2;
        while k < code.len() && depth > 0 {
            if code[k].is_punct("[") {
                depth += 1;
            } else if code[k].is_punct("]") {
                depth -= 1;
            }
            k += 1;
        }
    }
    // Scan to the first `{` that is not inside parens/brackets (fn
    // signatures may contain `[`/`(`; where-clauses may contain `<` but
    // `<` never wraps a brace at item level). A `;` first means a
    // braceless item (e.g. `#[test] use …;` — not real, but degrade
    // gracefully).
    let mut paren = 0i32;
    while k < code.len() {
        let t = &code[k];
        if t.is_punct("(") || t.is_punct("[") {
            paren += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            paren -= 1;
        } else if paren == 0 && t.is_punct(";") {
            return None;
        } else if paren == 0 && t.is_punct("{") {
            // Found the body opener; match braces to the close.
            let open = k;
            let mut depth = 0i32;
            while k < code.len() {
                if code[k].is_punct("{") {
                    depth += 1;
                } else if code[k].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open, k));
                    }
                }
                k += 1;
            }
            // Unbalanced file: cover to EOF.
            return Some((open, code.len() - 1));
        }
        k += 1;
    }
    None
}

/// Parse `// audit:allow(rule): reason` comments and compute coverage.
///
/// A trailing comment (code earlier on the same line) covers its own
/// line. A standalone comment line covers the next line that contains
/// code; a contiguous stack of standalone comments all cover that same
/// code line.
fn parse_allows(comments: &[Token], code: &[Token]) -> Vec<AllowAnnotation> {
    let mut out = Vec::new();
    for c in comments {
        let body = c.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("audit:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            // Malformed: keep it with an empty rule so the meta-check
            // can flag it.
            out.push(AllowAnnotation {
                rule: String::new(),
                reason: String::new(),
                line: c.line,
                covers: vec![c.line],
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim();
        let reason = after.strip_prefix(':').unwrap_or(after).trim().to_string();
        let mut covers = vec![c.line];
        let has_code_on_line = code.iter().any(|t| t.line == c.line);
        if !has_code_on_line {
            // Standalone comment: also cover the first code line below.
            if let Some(next) = code.iter().map(|t| t.line).find(|&l| l > c.line) {
                covers.push(next);
            }
        }
        out.push(AllowAnnotation {
            rule,
            reason,
            line: c.line,
            covers,
        });
    }
    // A stack of standalone comments above one code line: make every
    // annotation in the stack cover that code line (already true — each
    // finds the same next code line because comments aren't code).
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_classification() {
        let src = "\
fn prod() {
    let x = 1;
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let y = 2;
    }
}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(2));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(9));
    }

    #[test]
    fn test_attr_on_single_fn() {
        let src = "\
fn prod() {}
#[test]
fn unit() {
    assert!(true);
}
fn prod2() {}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn trailing_allow_covers_own_line() {
        let src = "let x = m.keys(); // audit:allow(hash-iter): lookup only\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allow_for("hash-iter", 1).is_some());
        assert!(f.allow_for("wall-clock", 1).is_none());
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src = "\
// audit:allow(serve-panic): joined thread cannot outlive scope
let v = h.join().unwrap();
";
        let f = SourceFile::parse("x.rs", src);
        let a = f.allow_for("serve-panic", 2).expect("covers line 2");
        assert!(a.reason.contains("scope"));
    }

    #[test]
    fn empty_reason_is_kept_for_meta_check() {
        let src = "let x = 1; // audit:allow(hash-iter)\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.allows.len(), 1);
        assert!(f.allows[0].reason.is_empty());
    }

    #[test]
    fn braces_in_strings_do_not_confuse_regions() {
        let src = "\
#[cfg(test)]
mod tests {
    const S: &str = \"}}}{{{\";
}
fn prod() {}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }
}
