//! Findings and the audit report: plain data, deterministically ordered.
//!
//! Rendering to JSON lives with the `repro` CLI (which owns the
//! workspace's hand-rolled JSON layer); this module only renders the
//! human-readable text form.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule match at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`hash-iter`, `wall-clock`, `serve-panic`,
    /// `float-sum-order`, `lossy-id-cast`, or `malformed-allow`).
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of what matched and why it matters.
    pub message: String,
    /// `Some(reason)` when an `audit:allow` annotation suppresses this
    /// finding; `None` for a live violation.
    pub allowed: Option<String>,
}

impl Finding {
    /// True when this finding is suppressed by an annotation.
    pub fn is_allowed(&self) -> bool {
        self.allowed.is_some()
    }
}

/// The result of auditing a set of source files.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Every match, violations and allowed alike, sorted by
    /// (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// Unsuppressed violations (the ones that fail the audit).
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.is_allowed())
    }

    /// Findings suppressed by `audit:allow` annotations.
    pub fn allowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_allowed())
    }

    /// True when the audit passes (zero unsuppressed violations).
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }

    /// `(path, rule) -> allowed-annotation count`, the shape the
    /// committed `AUDIT_baseline.json` pins so new suppressions fail CI.
    pub fn allow_counts(&self) -> BTreeMap<(String, String), usize> {
        let mut counts = BTreeMap::new();
        for f in self.allowed() {
            *counts.entry((f.path.clone(), f.rule.clone())).or_insert(0) += 1;
        }
        counts
    }

    /// Canonical ordering: by path, then line, then rule.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    }

    /// Render the human-readable report.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let violations: Vec<_> = self.violations().collect();
        let allowed: Vec<_> = self.allowed().collect();
        let _ = writeln!(
            s,
            "repro audit: {} file(s) scanned, {} violation(s), {} allowed",
            self.files_scanned,
            violations.len(),
            allowed.len()
        );
        if !violations.is_empty() {
            let _ = writeln!(s, "\nviolations:");
            for f in &violations {
                let _ = writeln!(s, "  {}:{} [{}] {}", f.path, f.line, f.rule, f.message);
            }
        }
        if !allowed.is_empty() {
            let _ = writeln!(s, "\nallowed (annotated):");
            for f in &allowed {
                let reason = f.allowed.as_deref().unwrap_or("");
                let _ = writeln!(
                    s,
                    "  {}:{} [{}] {} — allow: {}",
                    f.path, f.line, f.rule, f.message, reason
                );
            }
        }
        if violations.is_empty() {
            let _ = writeln!(s, "\nresult: PASS");
        } else {
            let _ = writeln!(s, "\nresult: FAIL");
        }
        s
    }
}
