//! Binary codec primitives for the on-disk index format.
//!
//! [`persist`](crate::persist) encodes every PPV block (partial vectors,
//! leaf PPVs, skeleton columns) as **delta-varint node ids** followed by
//! **raw-bit `f64` magnitudes**: sparse supports cluster inside subgraphs
//! (that is the whole point of hub partitioning, §3.2), so consecutive-id
//! gaps are tiny and LEB128 shrinks them to one or two bytes, while the
//! untouched `f64` bit patterns keep round-trips bit-identical — the
//! exactness gate holds on a loaded index exactly as it does on a built
//! one.
//!
//! Everything here is defensive by construction:
//!
//! * [`Cursor`] reads are bounds-checked — truncated input yields
//!   [`CodecError`], never a panic;
//! * length prefixes are validated against the bytes actually remaining
//!   (`n` claimed elements need at least `n` encoded bytes), so a lying
//!   length field cannot trigger a huge allocation;
//! * delta decoding rejects non-monotone id sequences and ids past the
//!   declared node bound, so a decoded [`SparseVector`] always satisfies
//!   the sorted-distinct invariant the query kernels rely on;
//! * every on-disk section carries a [`crc32`] checksum (CRC-32/IEEE),
//!   verified before any decoding starts.

use crate::SparseVector;
use ppr_graph::NodeId;
use std::fmt;

/// A malformed or truncated byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    message: String,
}

impl CodecError {
    /// A new error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for std::io::Error {
    fn from(e: CodecError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.message)
    }
}

/// Codec result.
pub type Result<T> = std::result::Result<T, CodecError>;

fn err<T>(message: impl Into<String>) -> Result<T> {
    Err(CodecError::new(message))
}

// ------------------------------------------------------------------ CRC32

/// CRC-32/IEEE lookup table (polynomial 0xEDB88320, reflected).
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32/IEEE of `bytes` (the zlib/`cksum -o3` polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// CRC-32/IEEE of the virtual message `tag || bytes`, without
/// concatenating buffers. The wire protocol seals each frame's type byte
/// together with its payload this way, so a corrupted type byte is a CRC
/// mismatch — not a reinterpretation of the payload under another frame
/// type.
pub fn crc32_tagged(tag: u8, bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    c = CRC_TABLE[((c ^ u32::from(tag)) & 0xFF) as usize] ^ (c >> 8);
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ----------------------------------------------------------------- varint

/// Append `x` as LEB128 (7 bits per byte, high bit = continuation).
pub fn write_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        // audit:allow(lossy-id-cast): masked to the low 7 bits, fits u8
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Map a signed value to an unsigned one with small absolute values
/// staying small (zigzag): 0, -1, 1, -2, ... → 0, 1, 2, 3, ...
pub fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

// ----------------------------------------------------------------- cursor

/// Bounds-checked reader over a byte slice. Every read either yields a
/// value or a [`CodecError`]; nothing panics and nothing reads past the
/// end.
#[derive(Clone, Copy, Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Absolute position from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return err(format!(
                "truncated input: need {n} bytes, {} remain",
                self.remaining()
            ));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consume a raw-bit little-endian `f64`. The bit pattern is
    /// preserved exactly (including negative zero and NaN payloads), so
    /// save→load round-trips are bit-identical.
    pub fn f64_bits(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Consume a LEB128 varint (at most 10 bytes; the final byte of a
    /// maximal encoding may only contribute the low bit).
    pub fn varint(&mut self) -> Result<u64> {
        let mut x = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return err("varint overflows u64");
            }
            x |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
            if shift > 63 {
                return err("varint longer than 10 bytes");
            }
        }
    }

    /// Consume a varint and validate it as an element count: each of the
    /// `n` claimed elements occupies at least `min_element_bytes` of the
    /// remaining input, so a lying length field is rejected *before* any
    /// allocation happens — this is the anti-OOM gate every decoded
    /// collection goes through.
    pub fn checked_len(&mut self, min_element_bytes: usize) -> Result<usize> {
        let n = self.varint()?;
        let budget = (self.remaining() / min_element_bytes.max(1)) as u64;
        if n > budget {
            return err(format!(
                "length field claims {n} elements but only {} bytes remain",
                self.remaining()
            ));
        }
        Ok(n as usize)
    }
}

// ------------------------------------------------------------- id blocks

/// Append a strictly increasing id sequence as first-id + varint gaps.
/// Rejects unsorted or duplicated ids — the caller's sorted-distinct
/// invariant is enforced at the encoding boundary, not assumed.
pub fn write_ids_delta(buf: &mut Vec<u8>, ids: &[NodeId]) -> Result<()> {
    let mut prev: Option<NodeId> = None;
    for &id in ids {
        match prev {
            None => write_varint(buf, u64::from(id)),
            Some(p) => {
                if id <= p {
                    return err(format!(
                        "non-monotone id sequence: {id} follows {p}"
                    ));
                }
                write_varint(buf, u64::from(id - p));
            }
        }
        prev = Some(id);
    }
    Ok(())
}

/// Decode `count` delta-varint ids, enforcing strict monotonicity and
/// `id < bound` throughout. Inverse of [`write_ids_delta`].
pub fn read_ids_delta(cur: &mut Cursor<'_>, count: usize, bound: u64) -> Result<Vec<NodeId>> {
    let mut ids = Vec::with_capacity(count);
    let mut acc = 0u64;
    for i in 0..count {
        let v = cur.varint()?;
        if i == 0 {
            acc = v;
        } else {
            if v == 0 {
                return err("zero delta in id sequence (duplicate id)");
            }
            acc = match acc.checked_add(v) {
                Some(a) => a,
                None => return err("id delta overflows u64"),
            };
        }
        if acc >= bound {
            return err(format!("id {acc} out of bounds (node count {bound})"));
        }
        match NodeId::try_from(acc) {
            Ok(id) => ids.push(id),
            Err(_) => return err(format!("id {acc} exceeds NodeId range")),
        }
    }
    Ok(ids)
}

// ------------------------------------------------------------- PPV blocks

/// Append a sparse vector: varint nnz, delta-varint ids, then raw `f64`
/// bits per entry. Ids must be strictly increasing (the
/// [`SparseVector`] invariant); violations are reported, not trusted.
pub fn write_ppv(buf: &mut Vec<u8>, v: &SparseVector) -> Result<()> {
    write_varint(buf, v.nnz() as u64);
    let ids: Vec<NodeId> = v.iter().map(|(id, _)| id).collect();
    write_ids_delta(buf, &ids)?;
    for (_, x) in v.iter() {
        buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    Ok(())
}

/// Decode a PPV block written by [`write_ppv`]. Entries come back with
/// the exact bit patterns that went in; `bound` caps the id space.
pub fn read_ppv(cur: &mut Cursor<'_>, bound: u64) -> Result<SparseVector> {
    // Each entry costs >= 1 id byte + 8 magnitude bytes.
    let nnz = cur.checked_len(9)?;
    let ids = read_ids_delta(cur, nnz, bound)?;
    let mut entries = Vec::with_capacity(nnz);
    for id in ids {
        entries.push((id, cur.f64_bits()?));
    }
    Ok(SparseVector::from_entries(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_varint(x: u64) -> u64 {
        let mut buf = Vec::new();
        write_varint(&mut buf, x);
        let mut cur = Cursor::new(&buf);
        let got = cur.varint().unwrap();
        assert!(cur.is_empty(), "trailing bytes after varint {x}");
        got
    }

    #[test]
    fn varint_boundary_values() {
        for x in [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u64::from(u32::MAX) - 1,
            u64::from(u32::MAX),
            u64::from(u32::MAX) + 1,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(roundtrip_varint(x), x);
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes: longer than any valid u64 encoding.
        let long = [0x80u8; 11];
        assert!(Cursor::new(&long).varint().is_err());
        // 10 bytes whose final byte carries bits beyond the 64th.
        let mut over = [0x80u8; 10];
        over[9] = 0x02;
        assert!(Cursor::new(&over).varint().is_err());
        // Truncated mid-continuation.
        assert!(Cursor::new(&[0x80u8]).varint().is_err());
        assert!(Cursor::new(&[]).varint().is_err());
    }

    #[test]
    fn zigzag_boundary_values() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for x in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
    }

    #[test]
    fn delta_empty_and_single() {
        for ids in [vec![], vec![0u32], vec![u32::MAX - 1]] {
            let mut buf = Vec::new();
            write_ids_delta(&mut buf, &ids).unwrap();
            let mut cur = Cursor::new(&buf);
            let got = read_ids_delta(&mut cur, ids.len(), u64::from(u32::MAX)).unwrap();
            assert_eq!(got, ids);
        }
    }

    #[test]
    fn delta_rejects_non_monotone_on_encode() {
        let mut buf = Vec::new();
        assert!(write_ids_delta(&mut buf, &[3, 3]).is_err(), "duplicate");
        let mut buf = Vec::new();
        assert!(write_ids_delta(&mut buf, &[5, 2]).is_err(), "descending");
    }

    #[test]
    fn delta_rejects_zero_gap_and_out_of_bounds_on_decode() {
        // Hand-built stream: first id 4, then gap 0 (a duplicate).
        let mut buf = Vec::new();
        write_varint(&mut buf, 4);
        write_varint(&mut buf, 0);
        assert!(read_ids_delta(&mut Cursor::new(&buf), 2, 100).is_err());
        // First id beyond the bound.
        let mut buf = Vec::new();
        write_varint(&mut buf, 100);
        assert!(read_ids_delta(&mut Cursor::new(&buf), 1, 100).is_err());
        // Accumulated id overflowing u64.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        write_varint(&mut buf, u64::MAX);
        assert!(read_ids_delta(&mut Cursor::new(&buf), 2, u64::MAX).is_err());
    }

    #[test]
    fn ppv_empty_block() {
        let mut buf = Vec::new();
        write_ppv(&mut buf, &SparseVector::new()).unwrap();
        assert_eq!(buf, vec![0u8]);
        let got = read_ppv(&mut Cursor::new(&buf), 10).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn ppv_preserves_exotic_float_bits() {
        let v = SparseVector::from_entries(vec![
            (0u32, -0.0),
            (1, f64::MIN_POSITIVE / 4.0), // subnormal
            (7, 1.0e-300),
            (8, f64::MAX),
        ]);
        let mut buf = Vec::new();
        write_ppv(&mut buf, &v).unwrap();
        let got = read_ppv(&mut Cursor::new(&buf), 10).unwrap();
        let a: Vec<(u32, u64)> = v.iter().map(|(i, x)| (i, x.to_bits())).collect();
        let b: Vec<(u32, u64)> = got.iter().map(|(i, x)| (i, x.to_bits())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn lying_length_field_is_rejected_before_allocating() {
        // A block claiming 2^60 entries backed by 3 bytes: checked_len
        // must fail from the byte budget without touching an allocator.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1u64 << 60);
        buf.extend_from_slice(&[1, 2, 3]);
        assert!(read_ppv(&mut Cursor::new(&buf), u64::MAX).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    proptest! {
        #[test]
        fn varint_roundtrips(x in 0u64..=u64::MAX) {
            prop_assert_eq!(roundtrip_varint(x), x);
        }

        #[test]
        fn zigzag_roundtrips(x in i64::MIN..=i64::MAX) {
            prop_assert_eq!(unzigzag(zigzag(x)), x);
            // Small magnitudes stay small (the property delta coding uses).
            if x.abs() < (1 << 20) {
                prop_assert!(zigzag(x) < (1 << 21));
            }
        }

        #[test]
        fn id_blocks_roundtrip(raw_ids in proptest::collection::vec(0u32..1_000_000, 0..200)) {
            let mut ids = raw_ids;
            ids.sort_unstable();
            ids.dedup();
            let mut buf = Vec::new();
            write_ids_delta(&mut buf, &ids).unwrap();
            let mut cur = Cursor::new(&buf);
            let got = read_ids_delta(&mut cur, ids.len(), 1_000_000).unwrap();
            prop_assert_eq!(got, ids);
            prop_assert!(cur.is_empty());
        }

        #[test]
        fn ppv_blocks_roundtrip(
            entries in proptest::collection::btree_map(
                0u32..10_000,
                // Arbitrary bit patterns: magnitudes round-trip raw, so
                // exotic floats (subnormals, huge exponents) must survive.
                (0u64..=u64::MAX).prop_map(f64::from_bits),
                0..100,
            )
        ) {
            let v = SparseVector::from_entries(
                entries.into_iter().filter(|&(_, x)| x != 0.0).collect(),
            );
            let mut buf = Vec::new();
            write_ppv(&mut buf, &v).unwrap();
            let mut cur = Cursor::new(&buf);
            let got = read_ppv(&mut cur, 10_000).unwrap();
            prop_assert!(cur.is_empty());
            let a: Vec<(u32, u64)> = v.iter().map(|(i, x)| (i, x.to_bits())).collect();
            let b: Vec<(u32, u64)> = got.iter().map(|(i, x)| (i, x.to_bits())).collect();
            prop_assert_eq!(a, b);
        }
    }
}
