//! Binary persistence for precomputed indexes.
//!
//! The paper's precomputation runs for hours (Figures 12/16); nobody
//! recomputes it per process. This module writes an [`HgpaIndex`] to any
//! `Write` sink in a small versioned little-endian format and reads it
//! back, so each simulated machine (or a real deployment's shard) can
//! persist its state. The format is self-contained — no external
//! serialization crates — and defends against truncation, bad magic, and
//! version mismatch with explicit errors.

use crate::hgpa::HgpaIndex;
use crate::{PprConfig, SparseVector};
use ppr_graph::NodeId;
use ppr_partition::{Hierarchy, SubgraphNode};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PPRX";
const VERSION: u32 = 1;
/// Sanity cap on any single length field (guards corrupt files from
/// triggering huge allocations).
const MAX_LEN: u64 = 1 << 33;

// ---------------------------------------------------------------- writing

struct Sink<W: Write> {
    w: W,
}

impl<W: Write> Sink<W> {
    fn u32(&mut self, x: u32) -> io::Result<()> {
        self.w.write_all(&x.to_le_bytes())
    }
    fn u64(&mut self, x: u64) -> io::Result<()> {
        self.w.write_all(&x.to_le_bytes())
    }
    fn f64(&mut self, x: f64) -> io::Result<()> {
        self.w.write_all(&x.to_le_bytes())
    }
    fn usize(&mut self, x: usize) -> io::Result<()> {
        self.u64(x as u64)
    }
    fn opt_u32(&mut self, x: Option<u32>) -> io::Result<()> {
        match x {
            None => self.u32(u32::MAX), // sentinel; real values never reach it
            Some(v) => {
                debug_assert!(v < u32::MAX);
                self.u32(v)
            }
        }
    }
    fn u32_slice(&mut self, xs: &[u32]) -> io::Result<()> {
        self.usize(xs.len())?;
        for &x in xs {
            self.u32(x)?;
        }
        Ok(())
    }
    fn usize_slice(&mut self, xs: &[usize]) -> io::Result<()> {
        self.usize(xs.len())?;
        for &x in xs {
            self.u64(x as u64)?;
        }
        Ok(())
    }
    fn sparse(&mut self, v: &SparseVector) -> io::Result<()> {
        self.usize(v.nnz())?;
        for (id, x) in v.iter() {
            self.u32(id)?;
            self.f64(x)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- reading

struct Source<R: Read> {
    r: R,
}

impl<R: Read> Source<R> {
    fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.r.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.r.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
    fn len(&mut self) -> io::Result<usize> {
        let x = self.u64()?;
        if x > MAX_LEN {
            return Err(bad("length field exceeds sanity cap"));
        }
        Ok(x as usize)
    }
    fn opt_u32(&mut self) -> io::Result<Option<u32>> {
        let x = self.u32()?;
        Ok(if x == u32::MAX { None } else { Some(x) })
    }
    fn u32_vec(&mut self) -> io::Result<Vec<u32>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }
    fn usize_vec(&mut self) -> io::Result<Vec<usize>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.u64()? as usize);
        }
        Ok(out)
    }
    fn sparse(&mut self) -> io::Result<SparseVector> {
        let n = self.len()?;
        let mut entries: Vec<(NodeId, f64)> = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let id = self.u32()?;
            let x = self.f64()?;
            entries.push((id, x));
        }
        Ok(SparseVector::from_entries(entries))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

// ------------------------------------------------------------- public API

/// Write `index` to `writer`.
pub fn save_hgpa<W: Write>(index: &HgpaIndex, writer: W) -> io::Result<()> {
    let mut s = Sink { w: writer };
    s.w.write_all(MAGIC)?;
    s.u32(VERSION)?;

    let (n, cfg, machines, hierarchy, base, hub_rank, hub_ids, skeletons, machine_of_hub, machine_of_base) =
        index.persist_parts();

    s.usize(n)?;
    s.f64(cfg.alpha)?;
    s.f64(cfg.epsilon)?;
    s.u32(cfg.max_iterations)?;
    s.usize(machines)?;

    // Hierarchy.
    s.usize(hierarchy.nodes.len())?;
    for node in &hierarchy.nodes {
        s.u32(node.level)?;
        s.opt_u32(node.parent.map(|p| p as u32))?;
        s.usize_slice(&node.children)?;
        s.u32_slice(&node.members)?;
        s.u32_slice(&node.hubs)?;
    }
    s.usize_slice(&hierarchy.home)?;
    s.usize(hierarchy.hub_level.len())?;
    for &hl in &hierarchy.hub_level {
        s.opt_u32(hl)?;
    }
    s.u32(hierarchy.depth)?;

    // Vectors.
    s.usize(base.len())?;
    for v in base {
        s.sparse(v)?;
    }
    s.u32_slice(hub_rank)?;
    s.u32_slice(hub_ids)?;
    s.usize(skeletons.len())?;
    for v in skeletons {
        s.sparse(v)?;
    }
    s.u32_slice(machine_of_hub)?;
    s.u32_slice(machine_of_base)?;
    s.w.flush()
}

/// Read an index previously written by [`save_hgpa`].
pub fn load_hgpa<R: Read>(reader: R) -> io::Result<HgpaIndex> {
    let mut s = Source { r: reader };
    let mut magic = [0u8; 4];
    s.r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an exact-ppr index file (bad magic)"));
    }
    let version = s.u32()?;
    if version != VERSION {
        return Err(bad("unsupported index format version"));
    }

    let n = s.len()?;
    let cfg = PprConfig {
        alpha: s.f64()?,
        epsilon: s.f64()?,
        max_iterations: s.u32()?,
    };
    cfg.validate();
    let machines = s.len()?;

    let node_count = s.len()?;
    let mut nodes = Vec::with_capacity(node_count.min(1 << 20));
    for _ in 0..node_count {
        let level = s.u32()?;
        let parent = s.opt_u32()?.map(|p| p as usize);
        let children = s.usize_vec()?;
        let members = s.u32_vec()?;
        let hubs = s.u32_vec()?;
        nodes.push(SubgraphNode {
            level,
            parent,
            children,
            members,
            hubs,
        });
    }
    let home = s.usize_vec()?;
    let hl_count = s.len()?;
    let mut hub_level = Vec::with_capacity(hl_count.min(1 << 20));
    for _ in 0..hl_count {
        hub_level.push(s.opt_u32()?);
    }
    let depth = s.u32()?;
    let hierarchy = Hierarchy {
        nodes,
        home,
        hub_level,
        depth,
    };

    let base_count = s.len()?;
    if base_count != n {
        return Err(bad("base vector count does not match node count"));
    }
    let mut base = Vec::with_capacity(base_count.min(1 << 20));
    for _ in 0..base_count {
        base.push(s.sparse()?);
    }
    let hub_rank = s.u32_vec()?;
    let hub_ids = s.u32_vec()?;
    let skel_count = s.len()?;
    if skel_count != hub_ids.len() {
        return Err(bad("skeleton count does not match hub count"));
    }
    let mut skeletons = Vec::with_capacity(skel_count.min(1 << 20));
    for _ in 0..skel_count {
        skeletons.push(s.sparse()?);
    }
    let machine_of_hub = s.u32_vec()?;
    let machine_of_base = s.u32_vec()?;

    if hub_rank.len() != n || machine_of_base.len() != n || machine_of_hub.len() != hub_ids.len() {
        return Err(bad("inconsistent array lengths in index file"));
    }
    if hierarchy.home.len() != n || hierarchy.hub_level.len() != n {
        return Err(bad("hierarchy does not match node count"));
    }

    Ok(HgpaIndex::from_persist_parts(
        n,
        cfg,
        machines,
        hierarchy,
        base,
        hub_rank,
        hub_ids,
        skeletons,
        machine_of_hub,
        machine_of_base,
    ))
}

/// Convenience: save to a filesystem path.
pub fn save_hgpa_file<P: AsRef<std::path::Path>>(index: &HgpaIndex, path: P) -> io::Result<()> {
    save_hgpa(index, io::BufWriter::new(std::fs::File::create(path)?))
}

/// Convenience: load from a filesystem path.
pub fn load_hgpa_file<P: AsRef<std::path::Path>>(path: P) -> io::Result<HgpaIndex> {
    load_hgpa(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hgpa::HgpaBuildOptions;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn sample_index() -> (ppr_graph::CsrGraph, HgpaIndex) {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 150,
                ..Default::default()
            },
            61,
        );
        let idx = HgpaIndex::build(
            &g,
            &PprConfig {
                epsilon: 1e-7,
                ..Default::default()
            },
            &HgpaBuildOptions::default(),
        );
        (g, idx)
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let (_, idx) = sample_index();
        let mut buf = Vec::new();
        save_hgpa(&idx, &mut buf).unwrap();
        let loaded = load_hgpa(buf.as_slice()).unwrap();
        for u in [0u32, 42, 149] {
            let a = idx.query(u);
            let b = loaded.query(u);
            assert_eq!(a, b, "u {u}");
        }
        assert_eq!(idx.machines(), loaded.machines());
        assert_eq!(idx.hub_ids(), loaded.hub_ids());
        assert_eq!(idx.stored_entries(), loaded.stored_entries());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load_hgpa(&b"NOPE00000000"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let err = load_hgpa(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation() {
        let (_, idx) = sample_index();
        let mut buf = Vec::new();
        save_hgpa(&idx, &mut buf).unwrap();
        for cut in [10usize, buf.len() / 2, buf.len() - 3] {
            assert!(load_hgpa(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let (_, idx) = sample_index();
        let dir = std::env::temp_dir().join("ppr_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.pprx");
        save_hgpa_file(&idx, &path).unwrap();
        let loaded = load_hgpa_file(&path).unwrap();
        assert_eq!(idx.query(7), loaded.query(7));
    }

    #[test]
    fn machine_vectors_survive_roundtrip() {
        let (_, idx) = sample_index();
        let mut buf = Vec::new();
        save_hgpa(&idx, &mut buf).unwrap();
        let loaded = load_hgpa(buf.as_slice()).unwrap();
        for m in 0..idx.machines() as u32 {
            assert_eq!(idx.machine_vector(33, m), loaded.machine_vector(33, m));
        }
    }
}
