//! The on-disk index format: versioned, checksummed, compressed.
//!
//! The paper's §5 precomputation runs for hours (Figures 12/16); nobody
//! recomputes it per process. This module makes built indexes durable
//! artifacts: both [`GpaIndex`] and [`HgpaIndex`] save to (and load
//! from) a self-contained binary format with no external serialization
//! crates, so a serving process can **cold-start from disk** and answer
//! bit-identical queries without touching the builder.
//!
//! ## Layout (version 2)
//!
//! ```text
//! offset 0   magic            b"PPRX"                      4 bytes
//! offset 4   version          u32 LE  (= 2)                4 bytes
//! offset 8   kind             u32 LE  (1 = GPA, 2 = HGPA)  4 bytes
//! offset 12  section count    u32 LE                       4 bytes
//! offset 16  section table    count x { tag [u8;4], len u64 LE, crc32 u32 LE }
//! then       header crc32     u32 LE over bytes [0, 16 + 16*count)
//! then       section payloads, concatenated in table order
//! ```
//!
//! Sections are tagged byte blobs; each carries its own CRC-32 in the
//! table and the table itself is covered by the header CRC, so **every
//! byte of the file is checksummed** — any truncation, bit flip, or
//! zero-fill is detected before a single field is decoded. PPV blocks
//! (partial vectors, leaf PPVs, skeleton columns) are compressed as
//! delta-varint node ids plus raw-bit `f64` magnitudes
//! ([`codec::write_ppv`]): supports cluster inside subgraphs, so gaps
//! are small, while the untouched float bits make save→load round-trips
//! **bit-identical** — the exactness gate holds on a loaded index.
//!
//! Loading defends in depth: length fields are validated against the
//! bytes actually present before any allocation
//! ([`codec::Cursor::checked_len`]), ids are bounds-checked and must be
//! strictly monotone, machine assignments must be in range, and the
//! hierarchy's parent pointers must be topologically ordered (so query
//! walks terminate). Every failure is an [`io::Error`] — the loader
//! never panics, which keeps `ppr-serve` cold-start panic-free.
//!
//! Version-1 files (the pre-codec, uncompressed, HGPA-only layout) are
//! no longer readable; the loader identifies them by their version field
//! and reports a rebuild-and-re-save error.

use crate::codec::{self, crc32, write_varint, Cursor};
use crate::gpa::GpaIndex;
use crate::hgpa::{HgpaBuildStats, HgpaIndex};
use crate::{PprConfig, SparseVector};
use ppr_graph::NodeId;
use ppr_partition::{FlatPartition, Hierarchy, SubgraphNode};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PPRX";
/// The format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 2;
/// Sanity cap on the section count (the format defines fewer than ten).
const MAX_SECTIONS: u32 = 32;
/// Sanity cap on the persisted machine count (guards the per-machine
/// vectors allocated by storage accounting).
const MAX_MACHINES: u64 = 1 << 20;

const KIND_GPA: u32 = 1;
const KIND_HGPA: u32 = 2;

// Section tags.
const TAG_CFG: [u8; 4] = *b"CFG\0";
const TAG_PART: [u8; 4] = *b"PART";
const TAG_HIER: [u8; 4] = *b"HIER";
const TAG_PLAC: [u8; 4] = *b"PLAC";
const TAG_BASE: [u8; 4] = *b"BASE";
const TAG_SKEL: [u8; 4] = *b"SKEL";
const TAG_STAT: [u8; 4] = *b"STAT";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// -------------------------------------------------------------- container

/// Which index type a persisted file holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// A flat graph-partition index (§3).
    Gpa,
    /// A hierarchical index (§4).
    Hgpa,
}

impl IndexKind {
    fn code(self) -> u32 {
        match self {
            IndexKind::Gpa => KIND_GPA,
            IndexKind::Hgpa => KIND_HGPA,
        }
    }

    fn parse(code: u32) -> io::Result<Self> {
        match code {
            KIND_GPA => Ok(IndexKind::Gpa),
            KIND_HGPA => Ok(IndexKind::Hgpa),
            other => Err(bad(format!("unknown index kind {other}"))),
        }
    }
}

/// One section's location inside a persisted file, as listed by
/// [`sections`] (tooling / test introspection).
#[derive(Clone, Copy, Debug)]
pub struct SectionInfo {
    /// Four-byte section tag (e.g. `BASE`).
    pub tag: [u8; 4],
    /// Byte offset of the payload from the start of the file.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// CRC-32 of the payload, as recorded in the section table.
    pub crc: u32,
}

/// A writer-side section: tag plus accumulated payload.
struct SectionBuf {
    tag: [u8; 4],
    payload: Vec<u8>,
}

/// Assemble and emit a complete file from its sections.
fn write_container<W: Write>(
    mut w: W,
    kind: IndexKind,
    sections: &[SectionBuf],
) -> io::Result<()> {
    if sections.len() > MAX_SECTIONS as usize {
        return Err(bad("too many sections to write"));
    }
    let mut header = Vec::with_capacity(16 + 16 * sections.len());
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&kind.code().to_le_bytes());
    // audit:allow(lossy-id-cast): bounded by the MAX_SECTIONS check above
    header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for s in sections {
        header.extend_from_slice(&s.tag);
        header.extend_from_slice(&(s.payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(&s.payload).to_le_bytes());
    }
    let header_crc = crc32(&header);
    w.write_all(&header)?;
    w.write_all(&header_crc.to_le_bytes())?;
    for s in sections {
        w.write_all(&s.payload)?;
    }
    w.flush()
}

/// Parse and fully verify a file's header, returning its kind and the
/// CRC-verified section list. Shared by every loader and by [`sections`].
fn parse_container(bytes: &[u8]) -> io::Result<(IndexKind, Vec<SectionInfo>)> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.take(4).map_err(|_| bad("file too short for magic"))?;
    if magic != MAGIC {
        return Err(bad("not an exact-ppr index file (bad magic)"));
    }
    let version = cur.u32().map_err(io::Error::from)?;
    if version != FORMAT_VERSION {
        return Err(bad(format!(
            "unsupported index format version {version} (this build reads version \
             {FORMAT_VERSION}; version-1 files predate the sectioned format — \
             rebuild the index and re-save)"
        )));
    }
    let kind = IndexKind::parse(cur.u32().map_err(io::Error::from)?)?;
    let count = cur.u32().map_err(io::Error::from)?;
    if count > MAX_SECTIONS {
        return Err(bad(format!("section count {count} exceeds sanity cap")));
    }
    let header_len = 16usize + 16 * count as usize;
    if bytes.len() < header_len + 4 {
        return Err(bad("truncated file: section table cut short"));
    }
    let stored_crc = u32::from_le_bytes([
        bytes[header_len],
        bytes[header_len + 1],
        bytes[header_len + 2],
        bytes[header_len + 3],
    ]);
    if crc32(&bytes[..header_len]) != stored_crc {
        return Err(bad("header checksum mismatch"));
    }

    let mut sections = Vec::with_capacity(count as usize);
    let mut offset = header_len + 4;
    for _ in 0..count {
        let tag_bytes = cur.take(4).map_err(io::Error::from)?;
        let tag = [tag_bytes[0], tag_bytes[1], tag_bytes[2], tag_bytes[3]];
        let len64 = cur.u64().map_err(io::Error::from)?;
        let crc = cur.u32().map_err(io::Error::from)?;
        let Ok(len) = usize::try_from(len64) else {
            return Err(bad("section length exceeds address space"));
        };
        let Some(end) = offset.checked_add(len) else {
            return Err(bad("section length overflows file offset"));
        };
        if end > bytes.len() {
            return Err(bad(format!(
                "truncated file: section {} claims {len} bytes past the end",
                tag_str(tag)
            )));
        }
        if sections.iter().any(|s: &SectionInfo| s.tag == tag) {
            return Err(bad(format!("duplicate section {}", tag_str(tag))));
        }
        sections.push(SectionInfo {
            tag,
            offset,
            len,
            crc,
        });
        offset = end;
    }
    if offset != bytes.len() {
        return Err(bad(format!(
            "file length mismatch: sections end at byte {offset}, file has {}",
            bytes.len()
        )));
    }
    for s in &sections {
        if crc32(&bytes[s.offset..s.offset + s.len]) != s.crc {
            return Err(bad(format!("section {} checksum mismatch", tag_str(s.tag))));
        }
    }
    Ok((kind, sections))
}

fn tag_str(tag: [u8; 4]) -> String {
    tag.iter()
        .map(|&b| {
            if b.is_ascii_graphic() {
                char::from(b)
            } else {
                '.'
            }
        })
        .collect()
}

/// Header-validate `bytes` and list its sections (tag, offset, length,
/// CRC) without decoding any payload. For tooling and the corruption
/// test suite; fails on exactly the containers the loaders reject.
pub fn sections(bytes: &[u8]) -> io::Result<Vec<SectionInfo>> {
    parse_container(bytes).map(|(_, s)| s)
}

/// Locate a required section's payload.
fn section<'a>(
    bytes: &'a [u8],
    sections: &[SectionInfo],
    tag: [u8; 4],
) -> io::Result<Cursor<'a>> {
    sections
        .iter()
        .find(|s| s.tag == tag)
        .map(|s| Cursor::new(&bytes[s.offset..s.offset + s.len]))
        .ok_or_else(|| bad(format!("missing section {}", tag_str(tag))))
}

/// A decoded section must leave no unconsumed bytes.
fn finish(cur: Cursor<'_>, tag: [u8; 4]) -> io::Result<()> {
    if cur.is_empty() {
        Ok(())
    } else {
        Err(bad(format!(
            "section {} has {} trailing bytes",
            tag_str(tag),
            cur.remaining()
        )))
    }
}

// ------------------------------------------------------------ CFG section

struct Header {
    cfg: PprConfig,
    n: usize,
    machines: usize,
}

fn encode_cfg(cfg: &PprConfig, n: usize, machines: usize) -> SectionBuf {
    let mut payload = Vec::new();
    payload.extend_from_slice(&cfg.alpha.to_bits().to_le_bytes());
    payload.extend_from_slice(&cfg.epsilon.to_bits().to_le_bytes());
    write_varint(&mut payload, u64::from(cfg.max_iterations));
    write_varint(&mut payload, n as u64);
    write_varint(&mut payload, machines as u64);
    SectionBuf {
        tag: TAG_CFG,
        payload,
    }
}

fn decode_cfg(bytes: &[u8], secs: &[SectionInfo]) -> io::Result<Header> {
    let mut cur = section(bytes, secs, TAG_CFG)?;
    let alpha = cur.f64_bits().map_err(io::Error::from)?;
    let epsilon = cur.f64_bits().map_err(io::Error::from)?;
    let max_iterations = cur.varint().map_err(io::Error::from)?;
    let n = cur.varint().map_err(io::Error::from)?;
    let machines = cur.varint().map_err(io::Error::from)?;
    finish(cur, TAG_CFG)?;

    // Validate with errors, not the builder's panicking asserts: a
    // forged file must never take the loader down.
    if !(alpha.is_finite() && alpha > 0.0 && alpha < 1.0) {
        return Err(bad(format!("persisted alpha {alpha} outside (0,1)")));
    }
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(bad(format!("persisted epsilon {epsilon} not positive")));
    }
    let Ok(max_iterations) = u32::try_from(max_iterations) else {
        return Err(bad("persisted max_iterations exceeds u32"));
    };
    if max_iterations == 0 {
        return Err(bad("persisted max_iterations is zero"));
    }
    if n > u64::from(NodeId::MAX) {
        return Err(bad(format!("node count {n} exceeds NodeId range")));
    }
    if machines == 0 || machines > MAX_MACHINES {
        return Err(bad(format!("machine count {machines} outside [1, 2^20]")));
    }
    Ok(Header {
        cfg: PprConfig {
            alpha,
            epsilon,
            max_iterations,
        },
        n: n as usize,
        machines: machines as usize,
    })
}

// ---------------------------------------------------------- PPV sections

fn encode_ppv_list(tag: [u8; 4], vectors: &[SparseVector]) -> io::Result<SectionBuf> {
    let mut payload = Vec::new();
    write_varint(&mut payload, vectors.len() as u64);
    for v in vectors {
        codec::write_ppv(&mut payload, v)?;
    }
    Ok(SectionBuf { tag, payload })
}

fn decode_ppv_list(
    bytes: &[u8],
    secs: &[SectionInfo],
    tag: [u8; 4],
    expect: usize,
    bound: u64,
) -> io::Result<Vec<SparseVector>> {
    let mut cur = section(bytes, secs, tag)?;
    // Each vector costs at least its one-byte nnz varint.
    let count = cur.checked_len(1).map_err(io::Error::from)?;
    if count != expect {
        return Err(bad(format!(
            "section {} holds {count} vectors, expected {expect}",
            tag_str(tag)
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(codec::read_ppv(&mut cur, bound)?);
    }
    finish(cur, tag)?;
    Ok(out)
}

// ------------------------------------------------- machine-placement lists

fn write_machine_list(payload: &mut Vec<u8>, machines_of: &[u32]) {
    write_varint(payload, machines_of.len() as u64);
    for &m in machines_of {
        write_varint(payload, u64::from(m));
    }
}

fn read_machine_list(
    cur: &mut Cursor<'_>,
    expect: usize,
    machines: usize,
    what: &str,
) -> io::Result<Vec<u32>> {
    let count = cur.checked_len(1).map_err(io::Error::from)?;
    if count != expect {
        return Err(bad(format!(
            "{what} placement lists {count} entries, expected {expect}"
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let m = cur.varint().map_err(io::Error::from)?;
        if m >= machines as u64 {
            return Err(bad(format!(
                "{what} placement names machine {m} of {machines}"
            )));
        }
        let Ok(m) = u32::try_from(m) else {
            return Err(bad(format!("{what} placement machine id exceeds u32")));
        };
        out.push(m);
    }
    Ok(out)
}

// ------------------------------------------------------------- GPA format

/// Write a [`GpaIndex`] to `writer` in the sectioned format.
pub fn save_gpa<W: Write>(index: &GpaIndex, writer: W) -> io::Result<()> {
    let n = index.node_count();
    let machines = index.machines();
    let partition = index.partition();

    let mut part = Vec::new();
    write_varint(&mut part, partition.hubs.len() as u64);
    codec::write_ids_delta(&mut part, &partition.hubs)?;
    write_varint(&mut part, partition.subgraphs.len() as u64);
    for members in &partition.subgraphs {
        write_varint(&mut part, members.len() as u64);
        codec::write_ids_delta(&mut part, members)?;
    }

    let mut plac = Vec::new();
    write_machine_list(&mut plac, index.machine_of_hub());
    write_machine_list(&mut plac, index.machine_of_part());

    let sections = [
        encode_cfg(index.config(), n, machines),
        SectionBuf {
            tag: TAG_PART,
            payload: part,
        },
        SectionBuf {
            tag: TAG_PLAC,
            payload: plac,
        },
        encode_ppv_list(TAG_BASE, index.base_vectors())?,
        encode_ppv_list(TAG_SKEL, index.skeleton_columns())?,
    ];
    write_container(writer, IndexKind::Gpa, &sections)
}

fn decode_gpa(bytes: &[u8], secs: &[SectionInfo]) -> io::Result<GpaIndex> {
    let header = decode_cfg(bytes, secs)?;
    let (n, machines) = (header.n, header.machines);
    let bound = n as u64;

    let mut cur = section(bytes, secs, TAG_PART)?;
    let hub_count = cur.checked_len(1).map_err(io::Error::from)?;
    let hubs = codec::read_ids_delta(&mut cur, hub_count, bound)?;
    let part_count = cur.checked_len(1).map_err(io::Error::from)?;
    let mut subgraphs = Vec::with_capacity(part_count);
    for _ in 0..part_count {
        let members = cur.checked_len(1).map_err(io::Error::from)?;
        subgraphs.push(codec::read_ids_delta(&mut cur, members, bound)?);
    }
    finish(cur, TAG_PART)?;

    // Derive `part_of` (and implicitly validate the partition: every
    // node is a hub or a member of exactly one part).
    let mut part_of: Vec<Option<u32>> = vec![None; n];
    let mut assigned = vec![false; n];
    for &h in &hubs {
        assigned[h as usize] = true;
    }
    for (p, members) in subgraphs.iter().enumerate() {
        let Ok(p32) = u32::try_from(p) else {
            return Err(bad("part index exceeds u32"));
        };
        for &v in members {
            if assigned[v as usize] {
                return Err(bad(format!("node {v} assigned twice in partition")));
            }
            assigned[v as usize] = true;
            part_of[v as usize] = Some(p32);
        }
    }
    if let Some(v) = assigned.iter().position(|&a| !a) {
        return Err(bad(format!("node {v} is neither hub nor part member")));
    }

    let mut cur = section(bytes, secs, TAG_PLAC)?;
    let machine_of_hub = read_machine_list(&mut cur, hubs.len(), machines, "hub")?;
    let machine_of_part = read_machine_list(&mut cur, subgraphs.len(), machines, "part")?;
    finish(cur, TAG_PLAC)?;

    let base = decode_ppv_list(bytes, secs, TAG_BASE, n, bound)?;
    let skeletons = decode_ppv_list(bytes, secs, TAG_SKEL, hubs.len(), bound)?;

    Ok(GpaIndex::from_persist_parts(
        n,
        header.cfg,
        machines,
        FlatPartition {
            hubs,
            subgraphs,
            part_of,
        },
        base,
        skeletons,
        machine_of_hub,
        machine_of_part,
    ))
}

// ------------------------------------------------------------ HGPA format

/// Write an [`HgpaIndex`] to `writer` in the sectioned format.
pub fn save_hgpa<W: Write>(index: &HgpaIndex, writer: W) -> io::Result<()> {
    let n = index.node_count();
    let machines = index.machines();
    let hierarchy = index.hierarchy();

    let mut hier = Vec::new();
    write_varint(&mut hier, hierarchy.nodes.len() as u64);
    for node in &hierarchy.nodes {
        write_varint(&mut hier, u64::from(node.level));
        write_varint(&mut hier, node.parent.map_or(0, |p| p as u64 + 1));
        write_varint(&mut hier, node.children.len() as u64);
        for &c in &node.children {
            write_varint(&mut hier, c as u64);
        }
        write_varint(&mut hier, node.members.len() as u64);
        codec::write_ids_delta(&mut hier, &node.members)?;
        write_varint(&mut hier, node.hubs.len() as u64);
        codec::write_ids_delta(&mut hier, &node.hubs)?;
    }
    write_varint(&mut hier, hierarchy.home.len() as u64);
    for &h in &hierarchy.home {
        write_varint(&mut hier, h as u64);
    }
    write_varint(&mut hier, hierarchy.hub_level.len() as u64);
    for &hl in &hierarchy.hub_level {
        write_varint(&mut hier, hl.map_or(0, |l| u64::from(l) + 1));
    }
    write_varint(&mut hier, u64::from(hierarchy.depth));

    let mut plac = Vec::new();
    write_varint(&mut plac, index.hub_ids().len() as u64);
    for &h in index.hub_ids() {
        write_varint(&mut plac, u64::from(h));
    }
    write_machine_list(&mut plac, index.machine_of_hub());
    write_machine_list(&mut plac, index.machine_of_base());

    let stats = index.stats();
    let mut stat = Vec::new();
    write_varint(&mut stat, stats.partial_pushes);
    write_varint(&mut stat, stats.skeleton_columns as u64);
    write_varint(&mut stat, stats.leaf_vectors as u64);
    write_varint(&mut stat, stats.dropped_entries as u64);

    let sections = [
        encode_cfg(index.config(), n, machines),
        SectionBuf {
            tag: TAG_HIER,
            payload: hier,
        },
        SectionBuf {
            tag: TAG_PLAC,
            payload: plac,
        },
        encode_ppv_list(TAG_BASE, index.base_vectors())?,
        encode_ppv_list(TAG_SKEL, index.skeleton_columns())?,
        SectionBuf {
            tag: TAG_STAT,
            payload: stat,
        },
    ];
    write_container(writer, IndexKind::Hgpa, &sections)
}

fn decode_hierarchy(cur: &mut Cursor<'_>, n: usize) -> io::Result<Hierarchy> {
    let bound = n as u64;
    let node_count = cur.checked_len(1).map_err(io::Error::from)?;
    let mut nodes = Vec::with_capacity(node_count);
    for i in 0..node_count {
        let level64 = cur.varint().map_err(io::Error::from)?;
        let Ok(level) = u32::try_from(level64) else {
            return Err(bad("hierarchy level exceeds u32"));
        };
        let parent_plus1 = cur.varint().map_err(io::Error::from)?;
        // Parent pointers must point strictly backwards in the arena
        // (the builder appends children after parents); this is what
        // guarantees root-to-home query walks terminate on a loaded
        // index, so it is enforced here rather than assumed.
        let parent = match parent_plus1 {
            0 => {
                if i != 0 {
                    return Err(bad(format!("hierarchy node {i} claims to be a root")));
                }
                None
            }
            p => {
                let p = p - 1;
                if p >= i as u64 {
                    return Err(bad(format!(
                        "hierarchy node {i} has forward parent pointer {p}"
                    )));
                }
                Some(p as usize)
            }
        };
        if i == 0 && parent.is_some() {
            return Err(bad("hierarchy root has a parent"));
        }
        let child_count = cur.checked_len(1).map_err(io::Error::from)?;
        let mut children = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            let c = cur.varint().map_err(io::Error::from)?;
            if c >= node_count as u64 {
                return Err(bad("hierarchy child index out of bounds"));
            }
            children.push(c as usize);
        }
        let member_count = cur.checked_len(1).map_err(io::Error::from)?;
        let members = codec::read_ids_delta(cur, member_count, bound)?;
        let hub_count = cur.checked_len(1).map_err(io::Error::from)?;
        let hubs = codec::read_ids_delta(cur, hub_count, bound)?;
        nodes.push(SubgraphNode {
            level,
            parent,
            children,
            members,
            hubs,
        });
    }

    let home_count = cur.checked_len(1).map_err(io::Error::from)?;
    if home_count != n {
        return Err(bad(format!(
            "hierarchy home lists {home_count} nodes, expected {n}"
        )));
    }
    let mut home = Vec::with_capacity(n);
    for _ in 0..n {
        let h = cur.varint().map_err(io::Error::from)?;
        if h >= node_count as u64 {
            return Err(bad("hierarchy home index out of bounds"));
        }
        home.push(h as usize);
    }

    let hl_count = cur.checked_len(1).map_err(io::Error::from)?;
    if hl_count != n {
        return Err(bad(format!(
            "hierarchy hub levels list {hl_count} nodes, expected {n}"
        )));
    }
    let mut hub_level = Vec::with_capacity(n);
    for _ in 0..n {
        let hl = cur.varint().map_err(io::Error::from)?;
        hub_level.push(match hl {
            0 => None,
            l => match u32::try_from(l - 1) {
                Ok(l) => Some(l),
                Err(_) => return Err(bad("hub level exceeds u32")),
            },
        });
    }
    let depth64 = cur.varint().map_err(io::Error::from)?;
    let Ok(depth) = u32::try_from(depth64) else {
        return Err(bad("hierarchy depth exceeds u32"));
    };
    Ok(Hierarchy {
        nodes,
        home,
        hub_level,
        depth,
    })
}

fn decode_hgpa(bytes: &[u8], secs: &[SectionInfo]) -> io::Result<HgpaIndex> {
    let header = decode_cfg(bytes, secs)?;
    let (n, machines) = (header.n, header.machines);
    let bound = n as u64;

    let mut cur = section(bytes, secs, TAG_HIER)?;
    let hierarchy = decode_hierarchy(&mut cur, n)?;
    finish(cur, TAG_HIER)?;

    let mut cur = section(bytes, secs, TAG_PLAC)?;
    let hub_count = cur.checked_len(1).map_err(io::Error::from)?;
    let mut hub_ids = Vec::with_capacity(hub_count);
    let mut hub_rank = vec![u32::MAX; n];
    for rank in 0..hub_count {
        let h = cur.varint().map_err(io::Error::from)?;
        if h >= bound {
            return Err(bad(format!("hub id {h} out of bounds")));
        }
        let h = h as NodeId;
        if hub_rank[h as usize] != u32::MAX {
            return Err(bad(format!("hub {h} listed twice")));
        }
        let Ok(rank32) = u32::try_from(rank) else {
            return Err(bad("hub rank exceeds u32"));
        };
        hub_rank[h as usize] = rank32;
        hub_ids.push(h);
    }
    let machine_of_hub = read_machine_list(&mut cur, hub_ids.len(), machines, "hub")?;
    let machine_of_base = read_machine_list(&mut cur, n, machines, "base")?;
    finish(cur, TAG_PLAC)?;

    let base = decode_ppv_list(bytes, secs, TAG_BASE, n, bound)?;
    let skeletons = decode_ppv_list(bytes, secs, TAG_SKEL, hub_ids.len(), bound)?;

    let mut cur = section(bytes, secs, TAG_STAT)?;
    let partial_pushes = cur.varint().map_err(io::Error::from)?;
    let to_usize = |x: u64, what: &str| -> io::Result<usize> {
        usize::try_from(x).map_err(|_| bad(format!("persisted {what} exceeds usize")))
    };
    let stats = HgpaBuildStats {
        partial_pushes,
        skeleton_columns: to_usize(cur.varint().map_err(io::Error::from)?, "stat")?,
        leaf_vectors: to_usize(cur.varint().map_err(io::Error::from)?, "stat")?,
        dropped_entries: to_usize(cur.varint().map_err(io::Error::from)?, "stat")?,
    };
    finish(cur, TAG_STAT)?;

    Ok(HgpaIndex::from_persist_parts(
        n,
        header.cfg,
        machines,
        hierarchy,
        base,
        hub_rank,
        hub_ids,
        skeletons,
        machine_of_hub,
        machine_of_base,
        stats,
    ))
}

// ------------------------------------------------------------- public API

/// Either index type, as loaded from a persisted file whose kind the
/// caller did not know up front. Implements the cluster's
/// `DistributedQueryable` (in `ppr-cluster`), so a serving front-end can
/// cold-start from whichever artifact is on disk.
#[derive(Debug)]
pub enum PersistedIndex {
    /// A loaded flat-partition index.
    Gpa(GpaIndex),
    /// A loaded hierarchical index.
    Hgpa(HgpaIndex),
}

impl PersistedIndex {
    /// Which index type this is.
    pub fn kind(&self) -> IndexKind {
        match self {
            PersistedIndex::Gpa(_) => IndexKind::Gpa,
            PersistedIndex::Hgpa(_) => IndexKind::Hgpa,
        }
    }

    /// Number of machines the index was built for.
    pub fn machines(&self) -> usize {
        match self {
            PersistedIndex::Gpa(i) => i.machines(),
            PersistedIndex::Hgpa(i) => i.machines(),
        }
    }

    /// Number of graph nodes.
    pub fn node_count(&self) -> usize {
        match self {
            PersistedIndex::Gpa(i) => i.node_count(),
            PersistedIndex::Hgpa(i) => i.node_count(),
        }
    }

    /// Total stored entries (space accounting).
    pub fn stored_entries(&self) -> usize {
        match self {
            PersistedIndex::Gpa(i) => i.stored_entries(),
            PersistedIndex::Hgpa(i) => i.stored_entries(),
        }
    }

    /// PPR configuration the index was built with.
    pub fn config(&self) -> &PprConfig {
        match self {
            PersistedIndex::Gpa(i) => i.config(),
            PersistedIndex::Hgpa(i) => i.config(),
        }
    }

    /// Exact PPV of `u`, reconstructed centrally.
    pub fn query(&self, u: NodeId) -> SparseVector {
        match self {
            PersistedIndex::Gpa(i) => i.query(u),
            PersistedIndex::Hgpa(i) => i.query(u),
        }
    }
}

fn read_all<R: Read>(mut reader: R) -> io::Result<Vec<u8>> {
    // Allocation is bounded by what the stream actually yields, so a
    // lying length field inside the file cannot inflate this read.
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// Read a [`GpaIndex`] previously written by [`save_gpa`].
pub fn load_gpa<R: Read>(reader: R) -> io::Result<GpaIndex> {
    let bytes = read_all(reader)?;
    let (kind, secs) = parse_container(&bytes)?;
    if kind != IndexKind::Gpa {
        return Err(bad("file holds an HGPA index, not a GPA index (kind mismatch)"));
    }
    decode_gpa(&bytes, &secs)
}

/// Read an [`HgpaIndex`] previously written by [`save_hgpa`].
pub fn load_hgpa<R: Read>(reader: R) -> io::Result<HgpaIndex> {
    let bytes = read_all(reader)?;
    let (kind, secs) = parse_container(&bytes)?;
    if kind != IndexKind::Hgpa {
        return Err(bad("file holds a GPA index, not an HGPA index (kind mismatch)"));
    }
    decode_hgpa(&bytes, &secs)
}

/// Read whichever index the file holds.
pub fn load_index<R: Read>(reader: R) -> io::Result<PersistedIndex> {
    let bytes = read_all(reader)?;
    let (kind, secs) = parse_container(&bytes)?;
    match kind {
        IndexKind::Gpa => decode_gpa(&bytes, &secs).map(PersistedIndex::Gpa),
        IndexKind::Hgpa => decode_hgpa(&bytes, &secs).map(PersistedIndex::Hgpa),
    }
}

/// Convenience: save a GPA index to a filesystem path.
pub fn save_gpa_file<P: AsRef<std::path::Path>>(index: &GpaIndex, path: P) -> io::Result<()> {
    save_gpa(index, io::BufWriter::new(std::fs::File::create(path)?))
}

/// Convenience: save an HGPA index to a filesystem path.
pub fn save_hgpa_file<P: AsRef<std::path::Path>>(index: &HgpaIndex, path: P) -> io::Result<()> {
    save_hgpa(index, io::BufWriter::new(std::fs::File::create(path)?))
}

/// Convenience: load a GPA index from a filesystem path.
pub fn load_gpa_file<P: AsRef<std::path::Path>>(path: P) -> io::Result<GpaIndex> {
    load_gpa(io::BufReader::new(std::fs::File::open(path)?))
}

/// Convenience: load an HGPA index from a filesystem path.
pub fn load_hgpa_file<P: AsRef<std::path::Path>>(path: P) -> io::Result<HgpaIndex> {
    load_hgpa(io::BufReader::new(std::fs::File::open(path)?))
}

/// Convenience: load whichever index a file holds.
pub fn load_index_file<P: AsRef<std::path::Path>>(path: P) -> io::Result<PersistedIndex> {
    load_index(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpa::GpaBuildOptions;
    use crate::hgpa::HgpaBuildOptions;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn sample_graph() -> ppr_graph::CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: 150,
                ..Default::default()
            },
            61,
        )
    }

    fn sample_hgpa() -> HgpaIndex {
        HgpaIndex::build(
            &sample_graph(),
            &PprConfig {
                epsilon: 1e-7,
                ..Default::default()
            },
            &HgpaBuildOptions::default(),
        )
    }

    fn sample_gpa() -> GpaIndex {
        GpaIndex::build(
            &sample_graph(),
            &PprConfig {
                epsilon: 1e-7,
                ..Default::default()
            },
            &GpaBuildOptions::default(),
        )
    }

    #[test]
    fn hgpa_roundtrip_preserves_queries_and_stats() {
        let idx = sample_hgpa();
        let mut buf = Vec::new();
        save_hgpa(&idx, &mut buf).unwrap();
        let loaded = load_hgpa(buf.as_slice()).unwrap();
        for u in [0u32, 42, 149] {
            assert_eq!(idx.query(u), loaded.query(u), "u {u}");
        }
        assert_eq!(idx.machines(), loaded.machines());
        assert_eq!(idx.hub_ids(), loaded.hub_ids());
        assert_eq!(idx.stored_entries(), loaded.stored_entries());
        assert_eq!(idx.stats(), loaded.stats());
    }

    #[test]
    fn gpa_roundtrip_preserves_queries() {
        let idx = sample_gpa();
        let mut buf = Vec::new();
        save_gpa(&idx, &mut buf).unwrap();
        let loaded = load_gpa(buf.as_slice()).unwrap();
        for u in [0u32, 42, 149] {
            assert_eq!(idx.query(u), loaded.query(u), "u {u}");
        }
        assert_eq!(idx.hubs(), loaded.hubs());
        assert_eq!(idx.stored_entries(), loaded.stored_entries());
    }

    #[test]
    fn load_index_detects_kind() {
        let mut buf = Vec::new();
        save_gpa(&sample_gpa(), &mut buf).unwrap();
        assert_eq!(load_index(buf.as_slice()).unwrap().kind(), IndexKind::Gpa);
        let mut buf = Vec::new();
        save_hgpa(&sample_hgpa(), &mut buf).unwrap();
        assert_eq!(load_index(buf.as_slice()).unwrap().kind(), IndexKind::Hgpa);
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let mut buf = Vec::new();
        save_gpa(&sample_gpa(), &mut buf).unwrap();
        let err = load_hgpa(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load_hgpa(&b"NOPE00000000"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_old_and_future_versions() {
        for version in [1u32, 99] {
            let mut buf = Vec::new();
            buf.extend_from_slice(MAGIC);
            buf.extend_from_slice(&version.to_le_bytes());
            buf.extend_from_slice(&[0u8; 64]);
            let err = load_hgpa(buf.as_slice()).unwrap_err();
            assert!(err.to_string().contains("version"), "{err}");
        }
    }

    #[test]
    fn rejects_truncation() {
        let idx = sample_hgpa();
        let mut buf = Vec::new();
        save_hgpa(&idx, &mut buf).unwrap();
        for cut in [0usize, 3, 10, buf.len() / 2, buf.len() - 3] {
            assert!(load_hgpa(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let idx = sample_hgpa();
        let dir = std::env::temp_dir().join("ppr_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.pprx");
        save_hgpa_file(&idx, &path).unwrap();
        let loaded = load_hgpa_file(&path).unwrap();
        assert_eq!(idx.query(7), loaded.query(7));
    }

    #[test]
    fn machine_vectors_survive_roundtrip() {
        let idx = sample_hgpa();
        let mut buf = Vec::new();
        save_hgpa(&idx, &mut buf).unwrap();
        let loaded = load_hgpa(buf.as_slice()).unwrap();
        for m in 0..idx.machines() as u32 {
            assert_eq!(idx.machine_vector(33, m), loaded.machine_vector(33, m));
        }
    }

    #[test]
    fn sections_lists_the_documented_layout() {
        let mut buf = Vec::new();
        save_hgpa(&sample_hgpa(), &mut buf).unwrap();
        let secs = sections(&buf).unwrap();
        let tags: Vec<[u8; 4]> = secs.iter().map(|s| s.tag).collect();
        assert_eq!(
            tags,
            vec![TAG_CFG, TAG_HIER, TAG_PLAC, TAG_BASE, TAG_SKEL, TAG_STAT]
        );
        // Sections are contiguous after the header and cover the file.
        let header_len = 16 + 16 * secs.len() + 4;
        assert_eq!(secs[0].offset, header_len);
        assert_eq!(secs.last().unwrap().offset + secs.last().unwrap().len, buf.len());
    }
}
