//! Selective expansion (Jeh–Widom; the paper's Appendix E.1, Eq. 9) as an
//! asynchronous residual push.
//!
//! Two intermediate vectors are maintained per source `u`: the lower
//! approximation `D` and the residual `E` (initially `x_u`). Expanding a
//! node `v` moves `α·E(v)` into `D(v)` and spreads `(1-α)·E(v)/deg(v)`
//! along its out-edges. **Hub nodes are never expanded** (mass reaching
//! them parks in `E` forever — those are exactly the tours the skeleton
//! accounts for), *except* that the source itself is always expanded on
//! its first touch, matching Jeh–Widom's schedule `Q₀ = V, Q_k = V − H`:
//! a tour's start does not count as "passing through" a hub.
//!
//! Processing nodes one at a time off a queue instead of in synchronous
//! rounds changes nothing about the limit (the pushed series is the same
//! sum over tours) but terminates adaptively: the run ends when every
//! expandable residual is at most ε, giving the paper's per-entry
//! tolerance guarantee.
//!
//! With an empty blocker set this computes the **full local PPV** of the
//! (sub)graph — which by Theorem 2 is how HGPA evaluates leaf-level
//! vectors and how partial vectors equal local PPVs of virtual subgraphs.

use crate::{PprConfig, SparseVector};
use ppr_graph::{Adjacency, NodeId};
use std::collections::VecDeque;

/// Outcome of one selective-expansion run, in the (sub)graph's id space.
#[derive(Clone, Debug)]
pub struct PushOutcome {
    /// The converged lower approximation `D` — the partial vector (or the
    /// local PPV when no blockers were given).
    pub partial: SparseVector,
    /// Residual mass parked at blocked (hub) nodes.
    pub hub_residual: SparseVector,
    /// Number of push operations performed.
    pub pushes: u64,
}

/// Reusable selective-expansion engine. Keeps graph-sized scratch buffers
/// so precomputing vectors for every node of a subgraph allocates once.
pub struct PushEngine {
    d: Vec<f64>,
    e: Vec<f64>,
    in_queue: Vec<bool>,
    touched: Vec<NodeId>,
    queue: VecDeque<NodeId>,
}

impl PushEngine {
    /// Engine for (sub)graphs of at most `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            d: vec![0.0; n],
            e: vec![0.0; n],
            in_queue: vec![false; n],
            touched: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// Grow scratch space if a larger view arrives.
    fn ensure(&mut self, n: usize) {
        if self.d.len() < n {
            self.d.resize(n, 0.0);
            self.e.resize(n, 0.0);
            self.in_queue.resize(n, false);
        }
    }

    /// Bytes of scratch this engine currently holds — the offline build's
    /// peak-scratch accounting (`OfflineReport::peak_scratch_bytes`).
    pub fn arena_bytes(&self) -> u64 {
        (self.d.len() * 8
            + self.e.len() * 8
            + self.in_queue.len()
            + self.touched.capacity() * 4
            + self.queue.capacity() * 4) as u64
    }

    /// Run selective expansion from `source`. `blocked[v]` marks hub nodes
    /// (never expanded, except `source` on its first touch). Pass all-false
    /// for a full local PPV.
    pub fn run<A: Adjacency>(
        &mut self,
        adj: &A,
        source: NodeId,
        blocked: &[bool],
        cfg: &PprConfig,
    ) -> PushOutcome {
        let n = adj.n();
        debug_assert_eq!(blocked.len(), n);
        self.ensure(n);
        let alpha = cfg.alpha;
        let eps = cfg.epsilon;
        let mut pushes = 0u64;

        let touch = |v: NodeId, touched: &mut Vec<NodeId>, e: &mut [f64], add: f64| {
            if e[v as usize] == 0.0 {
                touched.push(v);
            }
            e[v as usize] += add;
        };

        // Seed and force-expand the source once (Q₀ = V).
        touch(source, &mut self.touched, &mut self.e, 1.0);
        self.expand(adj, source, alpha, &mut pushes);
        // Note: if mass cycles back to a non-blocked source it re-enters the
        // queue like any other node; if the source is blocked, returning
        // mass parks there.

        // Enqueue whatever the seed expansion raised above tolerance.
        for &v in self.touched.clone().iter() {
            if self.e[v as usize] > eps && !blocked[v as usize] && !self.in_queue[v as usize] {
                self.in_queue[v as usize] = true;
                self.queue.push_back(v);
            }
        }

        while let Some(v) = self.queue.pop_front() {
            self.in_queue[v as usize] = false;
            if self.e[v as usize] <= eps || blocked[v as usize] {
                continue;
            }
            self.expand(adj, v, alpha, &mut pushes);
            // Enqueue neighbours whose residual crossed the threshold.
            for &w in adj.out(v) {
                if self.e[w as usize] > eps
                    && !blocked[w as usize]
                    && !self.in_queue[w as usize]
                {
                    self.in_queue[w as usize] = true;
                    self.queue.push_back(w);
                }
            }
        }

        // Harvest and reset scratch.
        let mut partial_entries = Vec::new();
        let mut residual_entries = Vec::new();
        for &v in &self.touched {
            let dv = self.d[v as usize];
            if dv != 0.0 {
                partial_entries.push((v, dv));
            }
            let ev = self.e[v as usize];
            if ev != 0.0 && blocked[v as usize] {
                residual_entries.push((v, ev));
            }
            self.d[v as usize] = 0.0;
            self.e[v as usize] = 0.0;
        }
        self.touched.clear();
        self.queue.clear();

        PushOutcome {
            partial: SparseVector::from_entries(partial_entries),
            hub_residual: SparseVector::from_entries(residual_entries),
            pushes,
        }
    }

    /// One expansion: move α·E(v) to D(v), spread the continuation.
    fn expand<A: Adjacency>(&mut self, adj: &A, v: NodeId, alpha: f64, pushes: &mut u64) {
        let mass = self.e[v as usize];
        if mass == 0.0 {
            return;
        }
        *pushes += 1;
        self.e[v as usize] = 0.0;
        self.d[v as usize] += alpha * mass;
        let deg = adj.degree(v);
        if deg == 0 {
            return; // dangling: continuation absorbed
        }
        let share = (1.0 - alpha) * mass / deg as f64;
        for &w in adj.out(v) {
            if self.e[w as usize] == 0.0 && self.d[w as usize] == 0.0 {
                self.touched.push(w);
            }
            self.e[w as usize] += share;
        }
        // deg > outs.len(): the remainder walked to the virtual node.
    }
}

/// One-shot convenience: full local PPV by push (no blockers).
pub fn local_ppv_push<A: Adjacency>(adj: &A, source: NodeId, cfg: &PprConfig) -> SparseVector {
    let mut engine = PushEngine::new(adj.n());
    let blocked = vec![false; adj.n()];
    engine.run(adj, source, &blocked, cfg).partial
}

/// One-shot convenience: partial vector w.r.t. a blocker set.
pub fn partial_vector_push<A: Adjacency>(
    adj: &A,
    source: NodeId,
    blocked: &[bool],
    cfg: &PprConfig,
) -> PushOutcome {
    let mut engine = PushEngine::new(adj.n());
    engine.run(adj, source, blocked, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::csr::from_edges;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn tight() -> PprConfig {
        PprConfig {
            epsilon: 1e-10,
            ..Default::default()
        }
    }

    #[test]
    fn no_blockers_equals_full_ppv() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 150,
                ..Default::default()
            },
            2,
        );
        for s in [0u32, 60, 149] {
            let exact = dense_ppv(&g, s, 0.15);
            let got = local_ppv_push(&g, s, &tight());
            for v in 0..150u32 {
                assert!(
                    (exact[v as usize] - got.get(v)).abs() < 1e-7,
                    "src {s} node {v}: {} vs {}",
                    exact[v as usize],
                    got.get(v)
                );
            }
        }
    }

    #[test]
    fn blocked_nodes_gain_no_partial_mass_beyond_alpha_e() {
        // Chain 0 -> 1 -> 2 with 1 blocked: partial(0) must see nothing at 2.
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let out = partial_vector_push(&g, 0, &[false, true, false], &tight());
        assert!((out.partial.get(0) - 0.15).abs() < 1e-12);
        assert_eq!(out.partial.get(1), 0.0, "blocked node absorbs, not scores");
        assert_eq!(out.partial.get(2), 0.0, "tours through hub must be blocked");
        // The parked residual at the hub is the full pass-through mass.
        assert!((out.hub_residual.get(1) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn source_expands_even_when_blocked() {
        // Source is itself a hub: first expansion must still happen.
        let g = from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let out = partial_vector_push(&g, 0, &[true, false, false], &tight());
        // p_0(0) = α (the trivial tour only; returning tours park at 0).
        assert!((out.partial.get(0) - 0.15).abs() < 1e-12);
        assert!(out.partial.get(1) > 0.0);
        // Residual parked back at the blocked source.
        assert!(out.hub_residual.get(0) > 0.0);
    }

    #[test]
    fn partial_matches_paper_figure1_structure() {
        // Figure 1: u1..u5 = 0..4, hubs {u2, u3} = {1, 2}.
        // Edges (directed, as drawn): u1->u2, u1->u4, u4->u5, u5->u2,
        // u5->u3, u2->u3, u2->u1(say cycle) — we only need reachability
        // shape: p_{u1} supported on {u1, u4, u5} only.
        let g = from_edges(
            5,
            &[(0, 1), (0, 3), (3, 4), (4, 1), (4, 2), (1, 2), (2, 0)],
        );
        let blocked = [false, true, true, false, false];
        let out = partial_vector_push(&g, 0, &blocked, &tight());
        assert!(out.partial.get(0) > 0.0);
        assert!(out.partial.get(3) > 0.0, "u4 reachable without hubs");
        assert!(out.partial.get(4) > 0.0, "u5 reachable without hubs");
        assert_eq!(out.partial.get(1), 0.0);
        assert_eq!(out.partial.get(2), 0.0);
    }

    #[test]
    fn mass_conservation_with_residuals() {
        // partial mass + α-discounted future of residuals + leaked = 1.
        // With no dangling nodes and all residuals at hubs:
        // l1(D) counts α per absorbed unit; total absorbed + parked = 1.
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 0)]);
        let blocked = [false, false, true, false];
        let out = partial_vector_push(&g, 0, &blocked, &tight());
        // Invariant of the push loop: each push removes residual e and adds
        // α·e to D plus at most (1-α)·e back to E, so ΣD + ΣE + leaked = 1.
        let absorbed: f64 = out.partial.l1_norm();
        let parked: f64 = out.hub_residual.l1_norm();
        assert!(
            (absorbed + parked - 1.0).abs() < 1e-6,
            "absorbed {absorbed} parked {parked}"
        );
    }

    #[test]
    fn engine_reuse_is_clean() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 80,
                ..Default::default()
            },
            9,
        );
        let blocked = vec![false; 80];
        let mut engine = PushEngine::new(80);
        let a1 = engine.run(&g, 5, &blocked, &tight()).partial;
        let _ = engine.run(&g, 50, &blocked, &tight());
        let a2 = engine.run(&g, 5, &blocked, &tight()).partial;
        assert_eq!(a1, a2, "scratch reuse must not contaminate results");
    }

    #[test]
    fn epsilon_bounds_error() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 200,
                ..Default::default()
            },
            4,
        );
        let exact = dense_ppv(&g, 10, 0.15);
        for eps in [1e-3, 1e-5, 1e-7] {
            let got = local_ppv_push(&g, 10, &PprConfig::with_epsilon(eps));
            let max_err = (0..200)
                .map(|v| (exact[v] - got.get(v as u32)).abs())
                .fold(0.0f64, f64::max);
            // Residual-based bound: leftover mass ≤ n·eps gets discounted;
            // empirically err stays well below sqrt scale of eps.
            assert!(max_err < eps * 200.0, "eps {eps}: err {max_err}");
        }
    }
}
