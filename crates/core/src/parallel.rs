//! Execution modes and the timed work pool shared by the offline builds
//! and (via re-export) the `ppr-cluster` fan-out.
//!
//! [`ParallelismMode`] started life in `ppr-cluster` (PR 4's online
//! fan-out); it lives here now so the *offline* precomputation paths —
//! [`crate::gpa::GpaIndex::build_distributed`] and
//! [`crate::hgpa::HgpaIndex::build_distributed`] — can share the exact
//! same switch without inverting the crate dependency (`ppr-cluster`
//! depends on `ppr-core`). `ppr-cluster` re-exports it, so existing
//! `ppr_cluster::ParallelismMode` imports keep working.
//!
//! [`run_timed`] is the offline counterpart of the cluster's per-round
//! fan-out: a deterministic pool that deals **timed work items** to
//! workers. Each item is measured individually, so per-machine *modeled*
//! seconds (sum of the owning machine's item times) keep reflecting
//! dedicated-machine cost no matter how many worker threads the host
//! lends — the paper's offline figures stay meaningful while wall-clock
//! shrinks with cores.

use std::time::Instant;

/// The workspace's single wall-clock gateway.
///
/// Every wall-clock measurement outside this module goes through
/// `Stopwatch` (the `repro audit` `wall-clock` rule enforces it). The
/// point is not the two-line convenience: funnelling real time through
/// one audited type keeps `std::time` out of modeled-time code — the
/// cluster cost model, the open-loop virtual clock, the figure
/// experiments — where a stray `Instant::now()` would silently turn a
/// reproducible, figure-accurate number into a host-dependent one.
///
/// ```
/// use ppr_core::parallel::Stopwatch;
/// let sw = Stopwatch::start();
/// let secs = sw.elapsed_seconds();
/// assert!(secs >= 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Begin measuring now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Wall-clock seconds since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// How a fan-out (machines of a query round, or work items of an offline
/// build) executes.
///
/// Results are **bit-identical** across modes: every unit of work runs in
/// isolation from read-only state and outputs are reassembled in a fixed
/// order, so the mode only changes *when* each output is computed, never
/// what it contains (pinned by `tests/concurrent_serving.rs` for the
/// online path and `tests/parallel_build.rs` for the offline builds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelismMode {
    /// Work runs one unit after another in the caller's thread. This is
    /// the paper-accurate measurement mode: on a shared (possibly
    /// single-core) host it is the only way a unit's measured compute
    /// time reflects what a dedicated machine would spend, so the figure
    /// experiments use it.
    Sequential,
    /// Work runs on scoped worker threads, at most this many at once
    /// (units are dealt to workers round-robin). This is the serving /
    /// throughput mode: wall-clock time approaches the critical path on
    /// a host with enough cores. Per-unit measured times remain recorded
    /// but may be inflated by core contention when workers exceed cores.
    Threads(usize),
}

impl ParallelismMode {
    /// The mode the environment asks for. `PPR_TEST_THREADS` (also the
    /// knob the CI matrix sweeps) wins: `1` means [`Sequential`], `N > 1`
    /// means [`Threads(N)`]. Unset, the host decides:
    /// [`std::thread::available_parallelism`] cores, sequential on a
    /// single-core machine.
    ///
    /// [`Sequential`]: ParallelismMode::Sequential
    /// [`Threads(N)`]: ParallelismMode::Threads
    pub fn from_env() -> Self {
        let workers = std::env::var("PPR_TEST_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |p| p.get())
            });
        Self::with_workers(workers)
    }

    /// The mode offline builds should use, from `PPR_BUILD_THREADS`.
    /// Unset or `1` means [`Sequential`](ParallelismMode::Sequential) —
    /// the default stays measurement-grade so the paper's offline figures
    /// are reproduced unchanged; `N > 1` opts a build into `N` workers.
    pub fn build_from_env() -> Self {
        std::env::var("PPR_BUILD_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(ParallelismMode::Sequential, Self::with_workers)
    }

    /// [`Sequential`](ParallelismMode::Sequential) for `workers <= 1`,
    /// [`Threads`](ParallelismMode::Threads) otherwise.
    pub fn with_workers(workers: usize) -> Self {
        if workers <= 1 {
            ParallelismMode::Sequential
        } else {
            ParallelismMode::Threads(workers)
        }
    }

    /// Number of concurrent workers this mode permits.
    pub fn workers(self) -> usize {
        match self {
            ParallelismMode::Sequential => 1,
            ParallelismMode::Threads(w) => w.max(1),
        }
    }

    /// True when work may run on more than one thread.
    pub fn is_parallel(self) -> bool {
        self.workers() > 1
    }
}

impl Default for ParallelismMode {
    /// Sequential — the paper-accurate measurement mode. Serving layers
    /// and builds opt into threads via the env helpers or explicitly.
    fn default() -> Self {
        ParallelismMode::Sequential
    }
}

/// Run `count` work items under `mode`, returning each item's output and
/// its individually measured seconds, **in item order**, plus the largest
/// per-worker arena footprint in bytes.
///
/// Every worker owns one reusable state `S` built by `make_state` (the
/// engine and scratch arenas in the build paths) and processes the items
/// dealt to it round-robin (`worker w` gets items `w, w + W, ...`; the
/// deal is over item indices, not machines). Outputs are
/// reassembled by item index, so the result — and anything aggregated
/// from it in item order — is independent of scheduling; with item work
/// sets disjoint and all shared state read-only, `Threads(_)` is
/// bit-identical to `Sequential`. Per-item times are measurement-grade
/// under [`ParallelismMode::Sequential`] and throughput-oriented (core
/// contention may inflate them) under [`ParallelismMode::Threads`].
///
/// `arena_bytes` sizes a worker's state after its last item; the maximum
/// over workers is the peak-scratch figure `BENCH_offline.json` records.
pub fn run_timed<S, T, FS, FB, F>(
    count: usize,
    mode: ParallelismMode,
    make_state: FS,
    arena_bytes: FB,
    exec: F,
) -> (Vec<(T, f64)>, u64)
where
    T: Send,
    S: Send,
    FS: Fn() -> S + Sync,
    FB: Fn(&S) -> u64 + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let workers = mode.workers().min(count.max(1));
    if workers <= 1 {
        let mut state = make_state();
        let out = (0..count)
            .map(|i| {
                let t = Stopwatch::start();
                let v = exec(i, &mut state);
                (v, t.elapsed_seconds())
            })
            .collect();
        return (out, arena_bytes(&state));
    }

    /// What one worker hands back: its items (tagged by index, with
    /// measured seconds) and its final arena footprint.
    type WorkerOut<T> = (Vec<(usize, T, f64)>, u64);

    let mut slots: Vec<Option<(T, f64)>> = (0..count).map(|_| None).collect();
    let exec = &exec;
    let make_state = &make_state;
    let arena_bytes = &arena_bytes;
    let outputs: Vec<WorkerOut<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut state = make_state();
                    let produced = (w..count)
                        .step_by(workers)
                        .map(|i| {
                            let t = Stopwatch::start();
                            let v = exec(i, &mut state);
                            (i, v, t.elapsed_seconds())
                        })
                        .collect();
                    (produced, arena_bytes(&state))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("build worker thread"))
            .collect()
    });
    let mut peak = 0u64;
    for (items, bytes) in outputs {
        peak = peak.max(bytes);
        for (i, v, secs) in items {
            slots[i] = Some((v, secs));
        }
    }
    let out = slots
        .into_iter()
        .map(|s| s.expect("every work item executed"))
        .collect();
    (out, peak)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_workers_thresholds() {
        assert_eq!(ParallelismMode::with_workers(0), ParallelismMode::Sequential);
        assert_eq!(ParallelismMode::with_workers(1), ParallelismMode::Sequential);
        assert_eq!(ParallelismMode::with_workers(4), ParallelismMode::Threads(4));
        assert_eq!(ParallelismMode::Sequential.workers(), 1);
        assert_eq!(ParallelismMode::Threads(3).workers(), 3);
        assert!(!ParallelismMode::Sequential.is_parallel());
        assert!(ParallelismMode::Threads(2).is_parallel());
    }

    #[test]
    fn run_timed_preserves_item_order_across_modes() {
        for mode in [
            ParallelismMode::Sequential,
            ParallelismMode::Threads(2),
            ParallelismMode::Threads(5),
        ] {
            let (out, peak) = run_timed(
                17,
                mode,
                || 0u64,
                |state| 64 + *state, // arena grows with items processed
                |i, state| {
                    *state += 1;
                    i * i
                },
            );
            let values: Vec<usize> = out.iter().map(|(v, _)| *v).collect();
            assert_eq!(values, (0..17).map(|i| i * i).collect::<Vec<_>>(), "{mode:?}");
            assert!(out.iter().all(|&(_, s)| s >= 0.0));
            assert!(peak >= 64, "{mode:?}");
        }
    }

    #[test]
    fn run_timed_handles_empty_and_excess_workers() {
        let (out, _) = run_timed(0, ParallelismMode::Threads(4), || (), |_| 0, |_, _| 1);
        assert!(out.is_empty());
        let (out, _) = run_timed(2, ParallelismMode::Threads(9), || (), |_| 0, |i, _| i);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
    }
}
