//! Incremental maintenance of an [`HgpaIndex`] under edge updates.
//!
//! The paper's index is static; its related work (§7 — incremental PPR
//! \\[6\\], scheduled approximation over evolving graphs \\[49\\]) motivates
//! dynamic support. The hierarchy makes exact maintenance *local*:
//!
//! * every precomputed vector of a subgraph `G` depends only on edges
//!   **inside** `G`'s member set, so an edge change `(u, v)` invalidates
//!   exactly the subgraphs containing both endpoints — the chain from the
//!   root down to the lowest common subgraph `L(u, v)` — plus, for the
//!   endpoints' own base vectors, their home subgraphs;
//! * an **inserted** edge whose endpoints sit in *different children* of
//!   `L` (with neither being one of `L`'s hubs) would break the separation
//!   invariant; the updater repairs it by *promoting* one endpoint into
//!   `H(L)` — the node leaves every deeper subgraph and becomes a hub,
//!   after which separation holds again by construction;
//! * a **removed** edge can never break separation, so it only triggers
//!   the chain recomputation.
//!
//! Each dirty subgraph has its hub partials, skeleton columns, and (for
//! leaves) member PPVs recomputed with the same kernels the builder uses.
//! Cost is O(depth) subgraph recomputations instead of a full rebuild;
//! exactness is preserved (validated against the dense oracle and against
//! fresh rebuilds in the tests).

use crate::hgpa::HgpaIndex;
use crate::push::PushEngine;
use crate::skeleton::SkeletonEngine;
use crate::SparseVector;
use ppr_graph::{CsrGraph, NodeId, ViewBuilder};
use std::collections::BTreeSet;

/// What one [`HgpaIndex::apply_edge_updates`] call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Subgraphs whose vectors were recomputed.
    pub subgraphs_recomputed: usize,
    /// Nodes promoted to hub status to restore separation.
    pub promoted_hubs: Vec<NodeId>,
    /// Vectors recomputed (bases + skeleton columns).
    pub vectors_recomputed: usize,
    /// Arena indices of the subgraphs that were recomputed, ascending.
    pub dirty_subgraphs: Vec<usize>,
    /// The **touched node set**: endpoints of every changed edge plus all
    /// promoted hubs, sorted and deduplicated.
    ///
    /// This is the anchor of the serving layer's conservative cache
    /// staleness predicate: a source `s`'s PPV — and, bit for bit, its
    /// reconstruction from this index — can only change if `s` can reach a
    /// touched node. A walk from `s` is affected only by rewritten
    /// transition rows, i.e. rows of changed-edge sources (insertion and
    /// removal both change the source's out-degree denominator), and
    /// reachability *to* those rows is itself invariant under the batch
    /// (a path first using a changed edge `(u, v)` must already have
    /// reached `u` by unchanged edges). Promotion restructures the
    /// hierarchy around an inserted edge's endpoint; any reconstruction
    /// term it perturbs carries a skeleton coefficient that is non-zero
    /// only for sources reaching the promoted node, so it is covered by
    /// the same predicate. Note this is deliberately *not* the union of
    /// the recomputed subgraphs' member sets: every update dirties the
    /// edge source's whole root-to-home chain, whose top is the root
    /// subgraph containing all nodes — recomputation there is a bitwise
    /// no-op for every vector whose owner cannot reach a touched node.
    pub dirty_nodes: Vec<NodeId>,
}

impl HgpaIndex {
    /// Bring the index up to date with `g_new`, given the list of edges
    /// that were inserted or removed since the graph the index was built
    /// on. The node set must be unchanged.
    ///
    /// # Panics
    /// Panics if `g_new` has a different node count.
    pub fn apply_edge_updates(
        &mut self,
        g_new: &CsrGraph,
        changed_edges: &[(NodeId, NodeId)],
    ) -> UpdateStats {
        assert_eq!(
            g_new.node_count(),
            self.node_count(),
            "incremental updates require a fixed node set"
        );
        let mut stats = UpdateStats::default();
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        let mut touched: BTreeSet<NodeId> = BTreeSet::new();

        for &(u, v) in changed_edges {
            touched.insert(u);
            touched.insert(v);
            // Everything on the *source's* root-to-home path is
            // invalidated: the edge lives inside the common chain, and —
            // crucially — `u`'s out-degree changed, which is the
            // transition denominator of every virtual-subgraph view that
            // contains `u` (Definition 3), i.e. `u`'s whole path.
            let pu = self.hierarchy().path_to(u);
            let pv = self.hierarchy().path_to(v);
            dirty.extend(pu.iter().copied());
            let mut lowest_common = self.hierarchy().root();
            for (a, b) in pu.iter().zip(pv.iter()) {
                if a != b {
                    break;
                }
                lowest_common = *a;
            }

            // Separation check (only insertions can break it): if the edge
            // still exists in g_new and its endpoints fall into different
            // children of L without either being a hub of L, promote u.
            if g_new.has_edge(u, v) && self.edge_breaks_separation(lowest_common, u, v) {
                let below = self.promote_to_hub(lowest_common, u);
                stats.promoted_hubs.push(u);
                dirty.extend(below);
            }

            // The target's home holds its base vector; the edge may have
            // entered/left its leaf's internal edge set when both
            // endpoints share the leaf (already covered by `pu` then, but
            // cheap to include explicitly).
            dirty.insert(self.hierarchy().home[v as usize]);
        }

        // Recompute every dirty subgraph bottom-up is unnecessary — they
        // are independent given the new graph — but deterministic order
        // keeps behaviour reproducible.
        for sg in dirty {
            stats.subgraphs_recomputed += 1;
            stats.vectors_recomputed += self.recompute_subgraph(g_new, sg);
            stats.dirty_subgraphs.push(sg);
        }
        touched.extend(stats.promoted_hubs.iter().copied());
        stats.dirty_nodes = touched.into_iter().collect();
        stats
    }

    /// Does `(u, v)` cross children of subgraph `sg` without a hub
    /// endpoint? (`u`/`v` are members of `sg` by construction.)
    fn edge_breaks_separation(&self, sg: usize, u: NodeId, v: NodeId) -> bool {
        let node = &self.hierarchy().nodes[sg];
        if node.is_leaf() {
            return false; // leaves have no separation obligations
        }
        if node.hubs.binary_search(&u).is_ok() || node.hubs.binary_search(&v).is_ok() {
            return false;
        }
        let child_of = |x: NodeId| {
            node.children
                .iter()
                .position(|&c| self.hierarchy().nodes[c].members.binary_search(&x).is_ok())
        };
        match (child_of(u), child_of(v)) {
            (Some(a), Some(b)) => a != b,
            // An endpoint missing from every child means it is a hub of a
            // descendant... which makes it a member of exactly one child;
            // being absent is impossible for members. Treat defensively:
            _ => false,
        }
    }

    /// Promote `u` into `H(sg)`: remove it from every descendant subgraph
    /// and register it as a hub of `sg`. Returns the arena indices of the
    /// subgraphs it was removed from (they need recomputation).
    fn promote_to_hub(&mut self, sg: usize, u: NodeId) -> Vec<usize> {
        let mut affected = Vec::new();
        // Walk u's current path strictly below `sg` and remove it.
        let path = self.hierarchy().path_to(u);
        let below: Vec<usize> = path.into_iter().skip_while(|&x| x != sg).skip(1).collect();
        for idx in below {
            let node = &mut self.hierarchy_mut().nodes[idx];
            if let Ok(pos) = node.members.binary_search(&u) {
                node.members.remove(pos);
            }
            if let Ok(pos) = node.hubs.binary_search(&u) {
                node.hubs.remove(pos);
            }
            affected.push(idx);
        }
        // Register as hub of sg.
        let level = self.hierarchy().nodes[sg].level;
        {
            let node = &mut self.hierarchy_mut().nodes[sg];
            if let Err(pos) = node.hubs.binary_search(&u) {
                node.hubs.insert(pos, u);
            }
        }
        self.hierarchy_mut().home[u as usize] = sg;
        self.hierarchy_mut().hub_level[u as usize] = Some(level);
        self.register_promoted_hub(u);
        affected
    }

    /// Recompute all stored vectors of subgraph `sg` against `g_new`.
    /// Returns the number of vectors recomputed.
    fn recompute_subgraph(&mut self, g_new: &CsrGraph, sg: usize) -> usize {
        let node = self.hierarchy().nodes[sg].clone();
        let mut vb = ViewBuilder::new(g_new);
        let cfg = *self.config();
        let mut count = 0usize;

        if node.is_leaf() {
            let view = vb.build(&node.members);
            let no_block = vec![false; view.len()];
            let mut push = PushEngine::new(view.len());
            for (local, &global) in view.globals().iter().enumerate() {
                let out = push.run(&view, local as NodeId, &no_block, &cfg);
                let vec = SparseVector::from_entries(
                    out.partial
                        .iter()
                        .map(|(l, x)| (view.global_of(l), x))
                        .collect(),
                );
                self.set_base(global, vec);
                count += 1;
            }
            return count;
        }

        let view = vb.build(&node.members);
        let mut blocked = vec![false; view.len()];
        for &h in &node.hubs {
            blocked[view.local_of(h).expect("hub is a member") as usize] = true;
        }
        let mut push = PushEngine::new(view.len());
        let mut skel = SkeletonEngine::new(view.len());
        for &h in &node.hubs {
            let lh = view.local_of(h).expect("hub is a member");
            let out = push.run(&view, lh, &blocked, &cfg);
            self.set_base(
                h,
                SparseVector::from_entries(
                    out.partial
                        .iter()
                        .map(|(l, x)| (view.global_of(l), x))
                        .collect(),
                ),
            );
            let col = skel.run(&view, lh, &cfg);
            self.set_skeleton(
                h,
                SparseVector::from_entries(
                    col.iter().map(|(l, x)| (view.global_of(l), x)).collect(),
                ),
            );
            count += 2;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hgpa::HgpaBuildOptions;
    use crate::PprConfig;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
    use ppr_graph::GraphBuilder;
    use ppr_partition::HierarchyConfig;

    fn tight() -> PprConfig {
        PprConfig {
            epsilon: 1e-9,
            ..Default::default()
        }
    }

    fn opts() -> HgpaBuildOptions {
        HgpaBuildOptions {
            hierarchy: HierarchyConfig {
                max_leaf_size: 16,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn base_graph(n: usize, seed: u64) -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: n,
                depth: 4,
                locality: 0.9,
                ..Default::default()
            },
            seed,
        )
    }

    fn with_edges(g: &CsrGraph, add: &[(NodeId, NodeId)], remove: &[(NodeId, NodeId)]) -> CsrGraph {
        let rm: std::collections::HashSet<(NodeId, NodeId)> = remove.iter().copied().collect();
        let mut b = GraphBuilder::new(g.node_count());
        for e in g.edges() {
            if !rm.contains(&e) {
                b.push_edge(e.0, e.1);
            }
        }
        for &(u, v) in add {
            b.push_edge(u, v);
        }
        b.build()
    }

    fn assert_exact(idx: &HgpaIndex, g: &CsrGraph, queries: &[NodeId]) {
        for &u in queries {
            let oracle = dense_ppv(g, u, 0.15);
            let got = idx.query(u);
            for v in 0..g.node_count() as NodeId {
                assert!(
                    (got.get(v) - oracle[v as usize]).abs() < 1e-5,
                    "u {u} v {v}: {} vs {}",
                    got.get(v),
                    oracle[v as usize]
                );
            }
        }
    }

    #[test]
    fn intra_leaf_insertion_stays_exact() {
        let g = base_graph(200, 5);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        // Insert an edge between two members of the same leaf.
        let leaf = idx.hierarchy().leaves().find(|&l| idx.hierarchy().nodes[l].members.len() >= 2).unwrap();
        let (a, b) = {
            let m = &idx.hierarchy().nodes[leaf].members;
            (m[0], m[1])
        };
        let g2 = with_edges(&g, &[(a, b)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(a, b)]);
        assert!(stats.promoted_hubs.is_empty(), "no separation breach");
        assert!(stats.subgraphs_recomputed >= 1);
        assert_exact(&idx, &g2, &[a, b, 0, 199]);
    }

    #[test]
    fn cross_child_insertion_promotes_a_hub() {
        let g = base_graph(250, 9);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        // Find two non-hub nodes in different children of the root.
        let root = idx.hierarchy().root();
        let children = idx.hierarchy().nodes[root].children.clone();
        assert!(children.len() >= 2, "root must split");
        let pick = |c: usize| {
            idx.hierarchy().nodes[c]
                .members
                .iter()
                .copied()
                .find(|&v| idx.hierarchy().hub_level[v as usize].is_none())
                .expect("non-hub member")
        };
        let (a, b) = (pick(children[0]), pick(children[1]));
        assert!(!g.has_edge(a, b));

        let g2 = with_edges(&g, &[(a, b)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(a, b)]);
        assert_eq!(stats.promoted_hubs, vec![a], "endpoint promoted");
        assert!(idx.hierarchy().hub_level[a as usize].is_some());
        assert_exact(&idx, &g2, &[a, b, 10, 249]);
    }

    #[test]
    fn edge_removal_never_promotes() {
        let g = base_graph(200, 13);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let (u, v) = g.edges().next().unwrap();
        let g2 = with_edges(&g, &[], &[(u, v)]);
        let stats = idx.apply_edge_updates(&g2, &[(u, v)]);
        assert!(stats.promoted_hubs.is_empty());
        assert_exact(&idx, &g2, &[u, v, 100]);
    }

    #[test]
    fn batched_mixed_updates_stay_exact() {
        let g = base_graph(220, 21);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let removed: Vec<(NodeId, NodeId)> = g.edges().step_by(37).take(4).collect();
        let added: Vec<(NodeId, NodeId)> = vec![(3, 140), (60, 201), (10, 11)]
            .into_iter()
            .filter(|&(u, v)| !g.has_edge(u, v) && u != v)
            .collect();
        let g2 = with_edges(&g, &added, &removed);
        let mut changed = removed.clone();
        changed.extend(&added);
        let stats = idx.apply_edge_updates(&g2, &changed);
        assert!(stats.subgraphs_recomputed > 0);
        assert_exact(&idx, &g2, &[0, 3, 60, 140, 219]);
    }

    #[test]
    fn repeated_updates_accumulate_correctly() {
        let g0 = base_graph(150, 31);
        let mut idx = HgpaIndex::build(&g0, &tight(), &opts());
        let mut g = g0;
        for (step, edge) in [(0u32, (5u32, 120u32)), (1, (80, 20)), (2, (140, 2))]
            .into_iter()
        {
            let _ = step;
            if g.has_edge(edge.0, edge.1) {
                continue;
            }
            let g2 = with_edges(&g, &[edge], &[]);
            idx.apply_edge_updates(&g2, &[edge]);
            g = g2;
        }
        assert_exact(&idx, &g, &[2, 5, 80, 149]);
    }

    #[test]
    fn update_is_cheaper_than_rebuild() {
        let g = base_graph(400, 41);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let leaf = idx.hierarchy().leaves().find(|&l| idx.hierarchy().nodes[l].members.len() >= 2).unwrap();
        let (a, b) = {
            let m = &idx.hierarchy().nodes[leaf].members;
            (m[0], m[1])
        };
        let g2 = with_edges(&g, &[(a, b)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(a, b)]);
        // Chain-local: far fewer vector recomputations than a full build.
        let full = HgpaIndex::build(&g2, &tight(), &opts());
        let full_vectors = full.hierarchy().nodes.len().max(1);
        assert!(
            stats.subgraphs_recomputed <= idx.hierarchy().depth as usize + 3,
            "recomputed {} subgraphs",
            stats.subgraphs_recomputed
        );
        let _ = full_vectors;
    }

    #[test]
    fn stats_report_dirty_sets() {
        let g = base_graph(200, 5);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let leaf = idx
            .hierarchy()
            .leaves()
            .find(|&l| idx.hierarchy().nodes[l].members.len() >= 2)
            .unwrap();
        let (a, b) = {
            let m = &idx.hierarchy().nodes[leaf].members;
            (m[0], m[1])
        };
        let g2 = with_edges(&g, &[(a, b)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(a, b)]);
        // Touched set = the changed edge's endpoints (no promotion here).
        assert_eq!(stats.dirty_nodes, {
            let mut e = vec![a, b];
            e.sort_unstable();
            e
        });
        assert_eq!(stats.dirty_subgraphs.len(), stats.subgraphs_recomputed);
        assert!(stats.dirty_subgraphs.windows(2).all(|w| w[0] < w[1]));
        assert!(stats.dirty_subgraphs.contains(&leaf));
    }

    #[test]
    fn promoted_hubs_join_dirty_nodes() {
        let g = base_graph(250, 9);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let root = idx.hierarchy().root();
        let children = idx.hierarchy().nodes[root].children.clone();
        let pick = |c: usize| {
            idx.hierarchy().nodes[c]
                .members
                .iter()
                .copied()
                .find(|&v| idx.hierarchy().hub_level[v as usize].is_none())
                .expect("non-hub member")
        };
        let (a, b) = (pick(children[0]), pick(children[1]));
        let g2 = with_edges(&g, &[(a, b)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(a, b)]);
        assert_eq!(stats.promoted_hubs, vec![a]);
        assert!(stats.dirty_nodes.contains(&a) && stats.dirty_nodes.contains(&b));
    }

    #[test]
    #[should_panic(expected = "fixed node set")]
    fn node_set_change_rejected() {
        let g = base_graph(100, 1);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let bigger = base_graph(101, 1);
        idx.apply_edge_updates(&bigger, &[]);
    }
}
