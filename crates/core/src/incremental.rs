//! Incremental maintenance of an [`HgpaIndex`] under edge updates and
//! node churn.
//!
//! The paper's index is static; its related work (§7 — incremental PPR
//! \\[6\\], scheduled approximation over evolving graphs \\[49\\]) motivates
//! dynamic support. The hierarchy makes exact maintenance *local*:
//!
//! * every precomputed vector of a subgraph `G` depends only on edges
//!   **inside** `G`'s member set, so an edge change `(u, v)` invalidates
//!   exactly the subgraphs containing both endpoints — the chain from the
//!   root down to the lowest common subgraph `L(u, v)` — plus, for the
//!   endpoints' own base vectors, their home subgraphs;
//! * an **inserted** edge whose endpoints sit in *different children* of
//!   `L` (with neither being one of `L`'s hubs) would break the separation
//!   invariant; the updater repairs it by *promoting* one endpoint into
//!   `H(L)` — the node leaves every deeper subgraph and becomes a hub,
//!   after which separation holds again by construction;
//! * a **removed** edge can never break separation, so it only triggers
//!   the chain recomputation;
//! * an **added node** joins the least-populated leaf as an isolated
//!   member (its base vector is then computed against the new graph like
//!   any other dirty leaf member); a **removed node** is excised from
//!   every subgraph on its root-to-home chain, its stored vectors are
//!   dropped, and its id becomes a tombstone — the id space stays dense,
//!   queries for it return the empty vector.
//!
//! Chain-level dirtiness alone is machine-scale: the top of every chain
//! is the root subgraph, whose hub list covers the whole graph. The
//! [`MaintenanceEngine`] therefore narrows recomputation to the
//! **affected region** inside each dirty subgraph with two reachability
//! predicates over the *new* graph (both in `ppr_graph::reach`):
//!
//! * a base/partial vector owned by `o` (leaf PPV or hub partial) is
//!   stale iff `o` can **reach** a touched node — a forward push from `o`
//!   only visits `o`'s reachable region, and restricted to a clean
//!   owner's region the old and new graphs agree edge-for-edge (a path
//!   from `o` to the first changed edge's source would make `o` reach a
//!   touched node);
//! * a skeleton column of hub `h` aggregates walks **into** `h`, so it is
//!   stale iff `h` is reachable **from** a touched node.
//!
//! Skipped vectors are bitwise identical to what a recomputation would
//! produce (pinned in tests), so exactness is untouched. Both predicates
//! are answered from one SCC condensation that the engine reuses across
//! low-churn batches: a snapshot condensation answers conservatively for
//! later graphs as long as reverse queries are augmented with the
//! *sources* and forward queries with the *targets* of every edge
//! inserted since the snapshot (deletions only shrink reachability, so
//! the snapshot already over-approximates them).
//!
//! Cost is O(affected region) vector recomputations instead of a full
//! rebuild; exactness is preserved (validated against the dense oracle
//! and against fresh rebuilds in the tests, and fuzzed under mixed
//! node+edge churn in `tests/node_churn.rs`).

use crate::hgpa::HgpaIndex;
use crate::push::PushEngine;
use crate::skeleton::SkeletonEngine;
use crate::{PprConfig, SparseVector};
use ppr_graph::{AppliedGraphDelta, CsrGraph, DeltaError, NodeId, SccCondensation, ViewBuilder};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// Why an incremental update batch was rejected. The index is left
/// exactly as it was: every validation failure is detected before the
/// first mutation ([`UpdateError::HierarchyCorruption`] is the one
/// exception — it reports pre-existing damage, not damage caused by the
/// rejected batch).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// The new graph's node count does not line up with the index's node
    /// set (plus any nodes added by this batch).
    NodeSetMismatch {
        /// Nodes the index would maintain after this batch.
        index_nodes: usize,
        /// Nodes the supplied graph actually has.
        graph_nodes: usize,
    },
    /// An operation referenced a node that is not live in the index — a
    /// tombstoned (previously removed) id, or an id out of range.
    DeadNode {
        /// The offending node id.
        node: NodeId,
    },
    /// The hierarchy's membership invariant is broken: a non-hub member
    /// of an internal subgraph belongs to none of its children. This is
    /// index corruption (it cannot arise from a valid update sequence);
    /// surfacing it beats silently computing wrong promotions.
    HierarchyCorruption {
        /// Arena index of the corrupt subgraph.
        subgraph: usize,
        /// The member missing from every child.
        node: NodeId,
    },
    /// The underlying [`GraphDelta`](ppr_graph::GraphDelta) failed
    /// validation against the current graph.
    Delta(DeltaError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::NodeSetMismatch {
                index_nodes,
                graph_nodes,
            } => write!(
                f,
                "node set mismatch: the index maintains {index_nodes} nodes \
                 but the graph has {graph_nodes}"
            ),
            UpdateError::DeadNode { node } => {
                write!(f, "node {node} is not live in the index")
            }
            UpdateError::HierarchyCorruption { subgraph, node } => write!(
                f,
                "hierarchy invariant broken: node {node} is a member of \
                 subgraph {subgraph} but of none of its children"
            ),
            UpdateError::Delta(e) => write!(f, "invalid graph delta: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<DeltaError> for UpdateError {
    fn from(e: DeltaError) -> Self {
        UpdateError::Delta(e)
    }
}

/// What one incremental update batch did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Subgraphs visited because their chain was dirtied (some may have
    /// had every vector skipped by the staleness predicates).
    pub subgraphs_recomputed: usize,
    /// Nodes promoted to hub status to restore separation.
    pub promoted_hubs: Vec<NodeId>,
    /// Vectors recomputed (bases + skeleton columns).
    pub vectors_recomputed: usize,
    /// Vectors in dirty subgraphs that the staleness predicates proved
    /// unchanged and therefore skipped.
    pub vectors_skipped: usize,
    /// Nodes added to the index by this batch.
    pub nodes_added: usize,
    /// Nodes excised (tombstoned) by this batch.
    pub nodes_removed: usize,
    /// Arena indices of the subgraphs that were visited, ascending.
    pub dirty_subgraphs: Vec<usize>,
    /// The **touched node set**: endpoints of every changed or dropped
    /// edge, every added or removed node, plus all promoted hubs, sorted
    /// and deduplicated.
    ///
    /// This is the anchor of the serving layer's conservative cache
    /// staleness predicate: a source `s`'s PPV — and, bit for bit, its
    /// reconstruction from this index — can only change if `s` can reach a
    /// touched node. A walk from `s` is affected only by rewritten
    /// transition rows, i.e. rows of changed-edge sources (insertion and
    /// removal both change the source's out-degree denominator), and
    /// reachability *to* those rows is itself invariant under the batch
    /// (a path first using a changed edge `(u, v)` must already have
    /// reached `u` by unchanged edges). Promotion restructures the
    /// hierarchy around an inserted edge's endpoint; any reconstruction
    /// term it perturbs carries a skeleton coefficient that is non-zero
    /// only for sources reaching the promoted node, so it is covered by
    /// the same predicate. The same predicate, evaluated over the new
    /// graph, is what the engine uses internally to skip provably
    /// unchanged vectors inside dirty subgraphs.
    pub dirty_nodes: Vec<NodeId>,
}

/// A cached SCC condensation of some earlier graph snapshot, answering
/// staleness queries conservatively for every later graph as long as the
/// node set is unchanged and the accumulated drift stays small.
struct CondCache {
    cond: SccCondensation,
    /// Node count of the snapshot the condensation was built on.
    nodes: usize,
    /// Total updates (edges + node ops) applied since the snapshot.
    pending: usize,
    /// Sources of edges inserted since the snapshot: augmenting reverse
    /// queries with them restores conservativeness (a new path from `o`
    /// to a target has a pure-snapshot prefix ending at such a source).
    inserted_sources: Vec<NodeId>,
    /// Targets of edges inserted since the snapshot — the forward twin.
    inserted_targets: Vec<NodeId>,
}

/// Accumulated drift beyond which reusing a snapshot condensation stops
/// paying off (the augmented query sets grow and the approximation
/// loosens) and the engine rebuilds it.
const COND_REBUILD_THRESHOLD: usize = 32;

/// Reusable state for applying update batches to an [`HgpaIndex`]:
/// one [`PushEngine`]/[`SkeletonEngine`] pair that grows to the largest
/// subgraph it meets and is reused across every dirty subgraph of every
/// batch (the same amortization the parallel builder uses per worker),
/// plus an SCC condensation cached across low-churn batches for the
/// staleness predicates.
///
/// The engine holds no reference to a particular index or graph; one
/// engine may serve many indexes, though the condensation cache is only
/// reused while consecutive batches target graphs with one node set.
pub struct MaintenanceEngine {
    push: PushEngine,
    skel: SkeletonEngine,
    cond: Option<CondCache>,
}

impl Default for MaintenanceEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl MaintenanceEngine {
    /// A fresh engine with empty arenas (they grow on first use).
    pub fn new() -> Self {
        Self {
            push: PushEngine::new(0),
            skel: SkeletonEngine::new(0),
            cond: None,
        }
    }

    /// Bring `idx` up to date with an applied [`ppr_graph::GraphDelta`]
    /// (node churn + net edge changes, as produced by
    /// [`ppr_graph::apply_delta`]).
    ///
    /// On `Err` the index is unchanged (all validation precedes the
    /// first mutation).
    pub fn apply(
        &mut self,
        idx: &mut HgpaIndex,
        applied: &AppliedGraphDelta,
    ) -> Result<UpdateStats, UpdateError> {
        let changed: Vec<(NodeId, NodeId)> =
            applied.net.iter().map(|e| e.endpoints()).collect();
        self.apply_parts(
            idx,
            &applied.graph,
            &applied.added,
            &applied.removed,
            &applied.dropped_edges,
            &changed,
        )
    }

    /// Bring `idx` up to date with `g_new` over an unchanged node set,
    /// given the edges inserted or removed since the graph the index
    /// currently reflects.
    pub fn apply_edges(
        &mut self,
        idx: &mut HgpaIndex,
        g_new: &CsrGraph,
        changed_edges: &[(NodeId, NodeId)],
    ) -> Result<UpdateStats, UpdateError> {
        self.apply_parts(idx, g_new, &[], &[], &[], changed_edges)
    }

    fn apply_parts(
        &mut self,
        idx: &mut HgpaIndex,
        g_new: &CsrGraph,
        added: &[NodeId],
        removed: &[NodeId],
        dropped: &[(NodeId, NodeId)],
        changed: &[(NodeId, NodeId)],
    ) -> Result<UpdateStats, UpdateError> {
        let mut stats = UpdateStats::default();
        let old_n = idx.node_count();

        // ---- validation: everything checked before the first mutation.
        if g_new.node_count() != old_n + added.len() {
            return Err(UpdateError::NodeSetMismatch {
                index_nodes: old_n + added.len(),
                graph_nodes: g_new.node_count(),
            });
        }
        if added.is_empty() && removed.is_empty() && dropped.is_empty() && changed.is_empty() {
            return Ok(stats);
        }
        for (i, &v) in added.iter().enumerate() {
            // Additions extend the dense id space in order.
            if v as usize != old_n + i {
                return Err(UpdateError::NodeSetMismatch {
                    index_nodes: old_n + added.len(),
                    graph_nodes: g_new.node_count(),
                });
            }
        }
        let removed_set: HashSet<NodeId> = removed.iter().copied().collect();
        for &v in removed {
            if !idx.is_live(v) {
                return Err(UpdateError::DeadNode { node: v });
            }
        }
        for &(u, v) in changed {
            for x in [u, v] {
                let live_old = (x as usize) < old_n && idx.is_live(x) && !removed_set.contains(&x);
                let freshly_added = (old_n..old_n + added.len()).contains(&(x as usize));
                if !live_old && !freshly_added {
                    return Err(UpdateError::DeadNode { node: x });
                }
            }
        }

        // ---- dirtiness from node churn, read against the pre-excision
        // hierarchy (a removed node's chain, and the chains of the
        // surviving sources whose out-degree its dropped edges shrank).
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        let mut touched: BTreeSet<NodeId> = BTreeSet::new();
        for &v in removed {
            touched.insert(v);
            dirty.extend(idx.hierarchy().path_to(v));
        }
        for &(x, y) in dropped {
            touched.insert(x);
            touched.insert(y);
            dirty.extend(idx.hierarchy().path_to(x));
            dirty.insert(idx.hierarchy().home[y as usize]);
        }
        for &v in removed {
            idx.excise_node(v);
            stats.nodes_removed += 1;
        }
        for &v in added {
            let leaf = idx.admit_node(v);
            dirty.insert(leaf);
            touched.insert(v);
            stats.nodes_added += 1;
        }

        // ---- dirtiness from net edge changes, plus separation repair.
        for &(u, v) in changed {
            touched.insert(u);
            touched.insert(v);
            // Everything on the *source's* root-to-home path is
            // invalidated: the edge lives inside the common chain, and —
            // crucially — `u`'s out-degree changed, which is the
            // transition denominator of every virtual-subgraph view that
            // contains `u` (Definition 3), i.e. `u`'s whole path.
            let pu = idx.hierarchy().path_to(u);
            let pv = idx.hierarchy().path_to(v);
            dirty.extend(pu.iter().copied());
            let mut lowest_common = idx.hierarchy().root();
            for (a, b) in pu.iter().zip(pv.iter()) {
                if a != b {
                    break;
                }
                lowest_common = *a;
            }

            // Separation check (only insertions can break it): if the edge
            // exists in g_new and its endpoints fall into different
            // children of L without either being a hub of L, promote u.
            if g_new.has_edge(u, v) && idx.edge_breaks_separation(lowest_common, u, v)? {
                let below = idx.promote_to_hub(lowest_common, u);
                stats.promoted_hubs.push(u);
                dirty.extend(below);
            }

            // The target's home holds its base vector; the edge may have
            // entered/left its leaf's internal edge set when both
            // endpoints share the leaf (already covered by `pu` then, but
            // cheap to include explicitly).
            dirty.insert(idx.hierarchy().home[v as usize]);
        }
        touched.extend(stats.promoted_hubs.iter().copied());

        // ---- affected region: per-vector staleness over the new graph.
        let touched_vec: Vec<NodeId> = touched.iter().copied().collect();
        let inserted: Vec<(NodeId, NodeId)> = changed
            .iter()
            .copied()
            .filter(|&(u, v)| g_new.has_edge(u, v))
            .collect();
        let batch_size = changed.len() + dropped.len() + added.len() + removed.len();
        let (stale_base, stale_col) = self.staleness(g_new, &touched_vec, &inserted, batch_size);

        // ---- recompute what the predicates could not rule out, in
        // deterministic ascending subgraph order, sharing one engine pair
        // and one view builder across the whole dirty set.
        let cfg = *idx.config();
        let mut vb = ViewBuilder::new(g_new);
        for sg in dirty {
            stats.subgraphs_recomputed += 1;
            let (done, skipped) = recompute_subgraph(
                idx,
                &mut vb,
                &cfg,
                sg,
                &stale_base,
                &stale_col,
                &mut self.push,
                &mut self.skel,
            );
            stats.vectors_recomputed += done;
            stats.vectors_skipped += skipped;
            stats.dirty_subgraphs.push(sg);
        }
        stats.dirty_nodes = touched.into_iter().collect();
        Ok(stats)
    }

    /// Evaluate both staleness predicates, reusing the cached snapshot
    /// condensation when the accumulated drift allows it.
    fn staleness(
        &mut self,
        g: &CsrGraph,
        touched: &[NodeId],
        inserted: &[(NodeId, NodeId)],
        batch_size: usize,
    ) -> (Vec<bool>, Vec<bool>) {
        let reusable = self
            .cond
            .as_ref()
            .is_some_and(|c| {
                c.nodes == g.node_count() && c.pending + batch_size <= COND_REBUILD_THRESHOLD
            });
        if !reusable {
            self.cond = Some(CondCache {
                cond: SccCondensation::build(g),
                nodes: g.node_count(),
                pending: 0,
                inserted_sources: Vec::new(),
                inserted_targets: Vec::new(),
            });
        }
        let cache = self.cond.as_mut().expect("just ensured above");
        // This batch's inserted endpoints are already in `touched`, so
        // only insertions from *earlier* batches need augmenting in.
        let mut rev_targets = touched.to_vec();
        rev_targets.extend_from_slice(&cache.inserted_sources);
        let mut fwd_sources = touched.to_vec();
        fwd_sources.extend_from_slice(&cache.inserted_targets);
        let stale_base = cache.cond.sources_reaching(&rev_targets);
        let stale_col = cache.cond.reachable_from(&fwd_sources);
        for &(u, v) in inserted {
            cache.inserted_sources.push(u);
            cache.inserted_targets.push(v);
        }
        cache.pending += batch_size;
        (stale_base, stale_col)
    }
}

impl HgpaIndex {
    /// Bring the index up to date with `g_new`, given the list of edges
    /// that were inserted or removed since the graph the index was built
    /// on. The node set must be unchanged; use
    /// [`MaintenanceEngine::apply`] for batches with node churn (and to
    /// amortize engine arenas across batches — this convenience method
    /// spins up a transient engine per call).
    ///
    /// On `Err` the index is unchanged.
    pub fn apply_edge_updates(
        &mut self,
        g_new: &CsrGraph,
        changed_edges: &[(NodeId, NodeId)],
    ) -> Result<UpdateStats, UpdateError> {
        MaintenanceEngine::new().apply_edges(self, g_new, changed_edges)
    }

    /// Does `(u, v)` cross children of subgraph `sg` without a hub
    /// endpoint? (`u`/`v` are members of `sg` by construction.)
    ///
    /// A non-hub member of an internal subgraph belongs to exactly one
    /// child; finding neither endpoint in any child means the hierarchy
    /// is corrupt, which is reported (and debug-asserted) rather than
    /// silently treated as "no promotion needed".
    fn edge_breaks_separation(&self, sg: usize, u: NodeId, v: NodeId) -> Result<bool, UpdateError> {
        let node = &self.hierarchy().nodes[sg];
        if node.is_leaf() {
            return Ok(false); // leaves have no separation obligations
        }
        if node.hubs.binary_search(&u).is_ok() || node.hubs.binary_search(&v).is_ok() {
            return Ok(false);
        }
        let child_of = |x: NodeId| {
            node.children
                .iter()
                .position(|&c| self.hierarchy().nodes[c].members.binary_search(&x).is_ok())
        };
        let corrupt = |node: NodeId| {
            debug_assert!(
                false,
                "hierarchy invariant broken: node {node} is a member of \
                 subgraph {sg} but of none of its children"
            );
            Err(UpdateError::HierarchyCorruption { subgraph: sg, node })
        };
        match (child_of(u), child_of(v)) {
            (Some(a), Some(b)) => Ok(a != b),
            (None, _) => corrupt(u),
            (_, None) => corrupt(v),
        }
    }

    /// Promote `u` into `H(sg)`: remove it from every descendant subgraph
    /// and register it as a hub of `sg`. Returns the arena indices of the
    /// subgraphs it was removed from (they need recomputation).
    fn promote_to_hub(&mut self, sg: usize, u: NodeId) -> Vec<usize> {
        let mut affected = Vec::new();
        // Walk u's current path strictly below `sg` and remove it.
        let path = self.hierarchy().path_to(u);
        let below: Vec<usize> = path.into_iter().skip_while(|&x| x != sg).skip(1).collect();
        for idx in below {
            let node = &mut self.hierarchy_mut().nodes[idx];
            if let Ok(pos) = node.members.binary_search(&u) {
                node.members.remove(pos);
            }
            if let Ok(pos) = node.hubs.binary_search(&u) {
                node.hubs.remove(pos);
            }
            affected.push(idx);
        }
        // Register as hub of sg.
        let level = self.hierarchy().nodes[sg].level;
        {
            let node = &mut self.hierarchy_mut().nodes[sg];
            if let Err(pos) = node.hubs.binary_search(&u) {
                node.hubs.insert(pos, u);
            }
        }
        self.hierarchy_mut().home[u as usize] = sg;
        self.hierarchy_mut().hub_level[u as usize] = Some(level);
        self.register_promoted_hub(u);
        affected
    }
}

/// Recompute the stored vectors of subgraph `sg` that the staleness
/// predicates could not prove unchanged. Returns `(recomputed, skipped)`
/// vector counts. When every vector of the subgraph is provably clean the
/// view is not even built.
#[allow(clippy::too_many_arguments)]
fn recompute_subgraph(
    idx: &mut HgpaIndex,
    vb: &mut ViewBuilder<'_>,
    cfg: &PprConfig,
    sg: usize,
    stale_base: &[bool],
    stale_col: &[bool],
    push: &mut PushEngine,
    skel: &mut SkeletonEngine,
) -> (usize, usize) {
    let node = idx.hierarchy().nodes[sg].clone();

    if node.is_leaf() {
        if node.members.is_empty() {
            return (0, 0);
        }
        if node.members.iter().all(|&m| !stale_base[m as usize]) {
            return (0, node.members.len());
        }
        let view = vb.build(&node.members);
        let no_block = vec![false; view.len()];
        let (mut done, mut skipped) = (0usize, 0usize);
        for (local, &global) in view.globals().iter().enumerate() {
            if !stale_base[global as usize] {
                skipped += 1;
                continue;
            }
            let out = push.run(&view, local as NodeId, &no_block, cfg);
            idx.set_base(
                global,
                SparseVector::from_entries(
                    out.partial
                        .iter()
                        .map(|(l, x)| (view.global_of(l), x))
                        .collect(),
                ),
            );
            done += 1;
        }
        return (done, skipped);
    }

    if node.hubs.is_empty() {
        return (0, 0);
    }
    if node
        .hubs
        .iter()
        .all(|&h| !stale_base[h as usize] && !stale_col[h as usize])
    {
        return (0, 2 * node.hubs.len());
    }
    let view = vb.build(&node.members);
    let mut blocked = vec![false; view.len()];
    for &h in &node.hubs {
        blocked[view.local_of(h).expect("hub is a member") as usize] = true;
    }
    let (mut done, mut skipped) = (0usize, 0usize);
    for &h in &node.hubs {
        let lh = view.local_of(h).expect("hub is a member");
        if stale_base[h as usize] {
            let out = push.run(&view, lh, &blocked, cfg);
            idx.set_base(
                h,
                SparseVector::from_entries(
                    out.partial
                        .iter()
                        .map(|(l, x)| (view.global_of(l), x))
                        .collect(),
                ),
            );
            done += 1;
        } else {
            skipped += 1;
        }
        if stale_col[h as usize] {
            let col = skel.run(&view, lh, cfg);
            idx.set_skeleton(
                h,
                SparseVector::from_entries(
                    col.iter().map(|(l, x)| (view.global_of(l), x)).collect(),
                ),
            );
            done += 1;
        } else {
            skipped += 1;
        }
    }
    (done, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hgpa::HgpaBuildOptions;
    use crate::PprConfig;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
    use ppr_graph::{apply_delta, EdgeUpdate, GraphDelta, GraphBuilder, NodeUpdate};
    use ppr_partition::HierarchyConfig;

    fn tight() -> PprConfig {
        PprConfig {
            epsilon: 1e-9,
            ..Default::default()
        }
    }

    fn opts() -> HgpaBuildOptions {
        HgpaBuildOptions {
            hierarchy: HierarchyConfig {
                max_leaf_size: 16,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn base_graph(n: usize, seed: u64) -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: n,
                depth: 4,
                locality: 0.9,
                ..Default::default()
            },
            seed,
        )
    }

    fn with_edges(g: &CsrGraph, add: &[(NodeId, NodeId)], remove: &[(NodeId, NodeId)]) -> CsrGraph {
        let rm: std::collections::HashSet<(NodeId, NodeId)> = remove.iter().copied().collect();
        let mut b = GraphBuilder::new(g.node_count());
        for e in g.edges() {
            if !rm.contains(&e) {
                b.push_edge(e.0, e.1);
            }
        }
        for &(u, v) in add {
            b.push_edge(u, v);
        }
        b.build()
    }

    fn assert_exact(idx: &HgpaIndex, g: &CsrGraph, queries: &[NodeId]) {
        for &u in queries {
            let oracle = dense_ppv(g, u, 0.15);
            let got = idx.query(u);
            for v in 0..g.node_count() as NodeId {
                assert!(
                    (got.get(v) - oracle[v as usize]).abs() < 1e-5,
                    "u {u} v {v}: {} vs {}",
                    got.get(v),
                    oracle[v as usize]
                );
            }
        }
    }

    /// Bitwise comparison against a from-scratch build that reuses the
    /// maintained hierarchy — the strongest exactness pin we have (the
    /// oracle comparison above tolerates push-ordering noise; this one
    /// does not).
    fn assert_bit_identical_to_rebuild(idx: &HgpaIndex, g: &CsrGraph) {
        let fresh = HgpaIndex::build_with_hierarchy(g, idx.config(), &opts(), idx.hierarchy().clone());
        assert_eq!(idx.base_vectors(), fresh.base_vectors(), "base vectors diverged");
        // Skeleton ranks can be permuted between a maintained index
        // (promotions append) and a fresh build (hierarchy order), so
        // compare per hub id.
        for (rank, &h) in idx.hub_ids().iter().enumerate() {
            if !idx.is_live(h) {
                continue; // orphaned rank of an excised hub
            }
            let fresh_rank = fresh
                .hub_ids()
                .iter()
                .position(|&x| x == h)
                .expect("hub registered in fresh build");
            assert_eq!(
                idx.skeleton_columns()[rank],
                fresh.skeleton_columns()[fresh_rank],
                "skeleton column of hub {h} diverged"
            );
        }
    }

    #[test]
    fn intra_leaf_insertion_stays_exact() {
        let g = base_graph(200, 5);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        // Insert an edge between two members of the same leaf.
        let leaf = idx.hierarchy().leaves().find(|&l| idx.hierarchy().nodes[l].members.len() >= 2).unwrap();
        let (a, b) = {
            let m = &idx.hierarchy().nodes[leaf].members;
            (m[0], m[1])
        };
        let g2 = with_edges(&g, &[(a, b)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(a, b)]).expect("valid batch");
        assert!(stats.promoted_hubs.is_empty(), "no separation breach");
        assert!(stats.subgraphs_recomputed >= 1);
        assert_exact(&idx, &g2, &[a, b, 0, 199]);
        assert_bit_identical_to_rebuild(&idx, &g2);
    }

    #[test]
    fn cross_child_insertion_promotes_a_hub() {
        let g = base_graph(250, 9);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        // Find two non-hub nodes in different children of the root.
        let root = idx.hierarchy().root();
        let children = idx.hierarchy().nodes[root].children.clone();
        assert!(children.len() >= 2, "root must split");
        let pick = |c: usize| {
            idx.hierarchy().nodes[c]
                .members
                .iter()
                .copied()
                .find(|&v| idx.hierarchy().hub_level[v as usize].is_none())
                .expect("non-hub member")
        };
        let (a, b) = (pick(children[0]), pick(children[1]));
        assert!(!g.has_edge(a, b));

        let g2 = with_edges(&g, &[(a, b)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(a, b)]).expect("valid batch");
        assert_eq!(stats.promoted_hubs, vec![a], "endpoint promoted");
        assert!(idx.hierarchy().hub_level[a as usize].is_some());
        assert_exact(&idx, &g2, &[a, b, 10, 249]);
    }

    #[test]
    fn edge_removal_never_promotes() {
        let g = base_graph(200, 13);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let (u, v) = g.edges().next().unwrap();
        let g2 = with_edges(&g, &[], &[(u, v)]);
        let stats = idx.apply_edge_updates(&g2, &[(u, v)]).expect("valid batch");
        assert!(stats.promoted_hubs.is_empty());
        assert_exact(&idx, &g2, &[u, v, 100]);
        assert_bit_identical_to_rebuild(&idx, &g2);
    }

    #[test]
    fn batched_mixed_updates_stay_exact() {
        let g = base_graph(220, 21);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let removed: Vec<(NodeId, NodeId)> = g.edges().step_by(37).take(4).collect();
        let added: Vec<(NodeId, NodeId)> = vec![(3, 140), (60, 201), (10, 11)]
            .into_iter()
            .filter(|&(u, v)| !g.has_edge(u, v) && u != v)
            .collect();
        let g2 = with_edges(&g, &added, &removed);
        let mut changed = removed.clone();
        changed.extend(&added);
        let stats = idx.apply_edge_updates(&g2, &changed).expect("valid batch");
        assert!(stats.subgraphs_recomputed > 0);
        assert_exact(&idx, &g2, &[0, 3, 60, 140, 219]);
    }

    #[test]
    fn repeated_updates_accumulate_correctly() {
        let g0 = base_graph(150, 31);
        let mut idx = HgpaIndex::build(&g0, &tight(), &opts());
        let mut g = g0;
        for (step, edge) in [(0u32, (5u32, 120u32)), (1, (80, 20)), (2, (140, 2))]
            .into_iter()
        {
            let _ = step;
            if g.has_edge(edge.0, edge.1) {
                continue;
            }
            let g2 = with_edges(&g, &[edge], &[]);
            idx.apply_edge_updates(&g2, &[edge]).expect("valid batch");
            g = g2;
        }
        assert_exact(&idx, &g, &[2, 5, 80, 149]);
    }

    #[test]
    fn update_is_cheaper_than_rebuild() {
        let g = base_graph(400, 41);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let leaf = idx.hierarchy().leaves().find(|&l| idx.hierarchy().nodes[l].members.len() >= 2).unwrap();
        let (a, b) = {
            let m = &idx.hierarchy().nodes[leaf].members;
            (m[0], m[1])
        };
        let g2 = with_edges(&g, &[(a, b)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(a, b)]).expect("valid batch");
        assert!(
            stats.subgraphs_recomputed <= idx.hierarchy().depth as usize + 3,
            "recomputed {} subgraphs",
            stats.subgraphs_recomputed
        );
        // Affected-region narrowing: chain subgraphs hold vectors whose
        // owners provably cannot reach the touched leaf pair; those must
        // be skipped, not recomputed.
        assert!(
            stats.vectors_skipped > 0,
            "expected provably-clean vectors on the dirty chains"
        );
    }

    #[test]
    fn stats_report_dirty_sets() {
        let g = base_graph(200, 5);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let leaf = idx
            .hierarchy()
            .leaves()
            .find(|&l| idx.hierarchy().nodes[l].members.len() >= 2)
            .unwrap();
        let (a, b) = {
            let m = &idx.hierarchy().nodes[leaf].members;
            (m[0], m[1])
        };
        let g2 = with_edges(&g, &[(a, b)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(a, b)]).expect("valid batch");
        // Touched set = the changed edge's endpoints (no promotion here).
        assert_eq!(stats.dirty_nodes, {
            let mut e = vec![a, b];
            e.sort_unstable();
            e
        });
        assert_eq!(stats.dirty_subgraphs.len(), stats.subgraphs_recomputed);
        assert!(stats.dirty_subgraphs.windows(2).all(|w| w[0] < w[1]));
        assert!(stats.dirty_subgraphs.contains(&leaf));
    }

    #[test]
    fn promoted_hubs_join_dirty_nodes() {
        let g = base_graph(250, 9);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let root = idx.hierarchy().root();
        let children = idx.hierarchy().nodes[root].children.clone();
        let pick = |c: usize| {
            idx.hierarchy().nodes[c]
                .members
                .iter()
                .copied()
                .find(|&v| idx.hierarchy().hub_level[v as usize].is_none())
                .expect("non-hub member")
        };
        let (a, b) = (pick(children[0]), pick(children[1]));
        let g2 = with_edges(&g, &[(a, b)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(a, b)]).expect("valid batch");
        assert_eq!(stats.promoted_hubs, vec![a]);
        assert!(stats.dirty_nodes.contains(&a) && stats.dirty_nodes.contains(&b));
    }

    #[test]
    fn node_set_change_rejected() {
        let g = base_graph(100, 1);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let bigger = base_graph(101, 1);
        let err = idx.apply_edge_updates(&bigger, &[]).unwrap_err();
        assert!(
            matches!(err, UpdateError::NodeSetMismatch { index_nodes: 100, graph_nodes: 101 }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("node set"));
        // The rejected batch left the index untouched.
        assert_exact(&idx, &g, &[0, 99]);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "hierarchy invariant"))]
    fn hierarchy_corruption_is_reported_not_masked() {
        let g = base_graph(250, 9);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let root = idx.hierarchy().root();
        let children = idx.hierarchy().nodes[root].children.clone();
        assert!(children.len() >= 2, "root must split");
        let pick = |idx: &HgpaIndex, c: usize| {
            idx.hierarchy().nodes[c]
                .members
                .iter()
                .copied()
                .find(|&v| idx.hierarchy().hub_level[v as usize].is_none())
                .expect("non-hub member")
        };
        let (a, b) = (pick(&idx, children[0]), pick(&idx, children[1]));
        // Seed the corruption: drop `a` from its root-child's member list
        // while leaving it in the root's members and in its deeper chain.
        {
            let node = &mut idx.hierarchy_mut().nodes[children[0]];
            let pos = node.members.binary_search(&a).expect("a is a member");
            node.members.remove(pos);
        }
        // A cross-child insertion now probes `a`'s child slot at the root
        // and must surface the corruption instead of skipping promotion.
        let g2 = with_edges(&g, &[(a, b)], &[]);
        let err = idx
            .apply_edge_updates(&g2, &[(a, b)])
            .expect_err("corruption must not be masked");
        assert!(
            matches!(err, UpdateError::HierarchyCorruption { subgraph, node }
                if subgraph == root && node == a),
            "got {err:?}"
        );
        assert!(err.to_string().contains("hierarchy invariant broken"));
    }

    #[test]
    fn engine_reuse_is_bit_identical_to_transient_engines() {
        let g0 = base_graph(220, 47);
        let mut live = HgpaIndex::build(&g0, &tight(), &opts());
        let mut fresh = live.clone();
        let mut engine = MaintenanceEngine::new();
        let mut g = g0;
        let batches: [&[(NodeId, NodeId)]; 3] =
            [&[(3, 140), (60, 201)], &[(10, 11)], &[(140, 2), (2, 140)]];
        for batch in batches {
            let add: Vec<(NodeId, NodeId)> = batch
                .iter()
                .copied()
                .filter(|&(u, v)| !g.has_edge(u, v) && u != v)
                .collect();
            let g2 = with_edges(&g, &add, &[]);
            // Persistent engine (condensation cache warm after batch 1)
            // vs a throwaway engine per batch: identical stats & vectors.
            let a = engine.apply_edges(&mut live, &g2, &add).expect("valid");
            let b = fresh.apply_edge_updates(&g2, &add).expect("valid");
            assert_eq!(a, b, "stats diverged between engine modes");
            assert_eq!(live.base_vectors(), fresh.base_vectors());
            assert_eq!(live.skeleton_columns(), fresh.skeleton_columns());
            g = g2;
        }
        assert_bit_identical_to_rebuild(&live, &g);
    }

    #[test]
    fn clean_owners_are_skipped_on_a_chain() {
        // A directed path 0 -> 1 -> ... -> n-1: an update at the tail
        // (high ids) is unreachable from every earlier node... but the
        // *source's* whole root-to-home chain is dirtied, so without the
        // affected-region predicate everything would recompute. With it,
        // owners past the update (which cannot reach back) are skipped.
        let n = 120usize;
        let edges: Vec<(NodeId, NodeId)> = (0..n as NodeId - 1).map(|i| (i, i + 1)).collect();
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.push_edge(u, v);
        }
        let g = b.build();
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        // Insert an edge near the head: nodes upstream of the head are
        // few, nodes strictly downstream of the new edge's reach are
        // many and provably clean as *skeleton* sources... here simply:
        // the inserted edge (2 -> 0) touches {0, 1, 2}; every node >= 3
        // cannot reach them, so every such base vector is skipped.
        let g2 = with_edges(&g, &[(2, 0)], &[]);
        let stats = idx.apply_edge_updates(&g2, &[(2, 0)]).expect("valid");
        assert!(
            stats.vectors_skipped > 0,
            "chain owners downstream of the update must be skipped"
        );
        assert_exact(&idx, &g2, &[0, 2, 3, 60, 119]);
        assert_bit_identical_to_rebuild(&idx, &g2);
    }

    #[test]
    fn condensation_reuse_across_batches_stays_exact() {
        let g0 = base_graph(200, 53);
        let mut idx = HgpaIndex::build(&g0, &tight(), &opts());
        let mut engine = MaintenanceEngine::new();
        let mut g = g0;
        // Several small sequential batches: the snapshot condensation is
        // reused (batch sizes sum below the rebuild threshold) while
        // edges accumulate, exercising the augmented-query path.
        type Batch<'a> = (&'a [(NodeId, NodeId)], &'a [usize]);
        let script: [Batch; 4] = [
            (&[(5, 120)], &[]),
            (&[(80, 20), (21, 80)], &[0]),
            (&[(140, 2)], &[5]),
            (&[(2, 140), (7, 9)], &[]),
        ];
        for (adds, rm_idx) in script {
            let add: Vec<(NodeId, NodeId)> = adds
                .iter()
                .copied()
                .filter(|&(u, v)| !g.has_edge(u, v) && u != v)
                .collect();
            let rm: Vec<(NodeId, NodeId)> = rm_idx
                .iter()
                .filter_map(|&i| g.edges().nth(i))
                .collect();
            let g2 = with_edges(&g, &add, &rm);
            let mut changed = add.clone();
            changed.extend(&rm);
            engine.apply_edges(&mut idx, &g2, &changed).expect("valid");
            g = g2;
        }
        assert_bit_identical_to_rebuild(&idx, &g);
        assert_exact(&idx, &g, &[2, 5, 80, 140, 199]);
    }

    #[test]
    fn added_node_is_admitted_and_exact() {
        let g = base_graph(150, 61);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let mut engine = MaintenanceEngine::new();
        let v = g.node_count() as NodeId;
        let delta = GraphDelta {
            nodes: vec![NodeUpdate::Add],
            edges: vec![EdgeUpdate::Insert(v, 3), EdgeUpdate::Insert(7, v)],
        };
        let applied = apply_delta(&g, &delta).expect("valid delta");
        let stats = engine.apply(&mut idx, &applied).expect("valid batch");
        assert_eq!(stats.nodes_added, 1);
        assert!(idx.is_live(v));
        assert_eq!(idx.node_count(), 151);
        // The new node has a home leaf and both directions serve exactly.
        assert_exact(&idx, &applied.graph, &[v, 3, 7, 0]);
        assert_bit_identical_to_rebuild(&idx, &applied.graph);
    }

    #[test]
    fn isolated_added_node_serves_alpha_self_mass() {
        let g = base_graph(120, 67);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let mut engine = MaintenanceEngine::new();
        let v = g.node_count() as NodeId;
        let applied = apply_delta(
            &g,
            &GraphDelta {
                nodes: vec![NodeUpdate::Add],
                edges: vec![],
            },
        )
        .expect("valid delta");
        engine.apply(&mut idx, &applied).expect("valid batch");
        let ppv = idx.query(v);
        assert!((ppv.get(v) - 0.15).abs() < 1e-12, "isolated PPV is α at self");
        assert_eq!(ppv.nnz(), 1);
    }

    #[test]
    fn removed_node_is_excised_and_exact() {
        let g = base_graph(180, 71);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let mut engine = MaintenanceEngine::new();
        // Remove a node with both in- and out-edges.
        let v = (0..180u32)
            .find(|&v| g.out_degree(v) > 0 && !g.in_neighbors(v).is_empty())
            .expect("connected node");
        let applied = apply_delta(
            &g,
            &GraphDelta {
                nodes: vec![NodeUpdate::Remove(v)],
                edges: vec![],
            },
        )
        .expect("valid delta");
        let stats = engine.apply(&mut idx, &applied).expect("valid batch");
        assert_eq!(stats.nodes_removed, 1);
        assert!(!idx.is_live(v));
        assert!(stats.dirty_nodes.contains(&v));
        // Dead node serves the empty vector / 0.0 everywhere.
        assert_eq!(idx.query(v).nnz(), 0);
        assert_eq!(idx.query_value(v, 0), 0.0);
        // Live nodes stay exact on the post-churn graph.
        let live: Vec<NodeId> = [0u32, 50, 120, 179]
            .into_iter()
            .filter(|&u| u != v)
            .collect();
        assert_exact(&idx, &applied.graph, &live);
        assert_bit_identical_to_rebuild(&idx, &applied.graph);
    }

    #[test]
    fn double_remove_is_rejected_without_damage() {
        let g = base_graph(100, 73);
        let mut idx = HgpaIndex::build(&g, &tight(), &opts());
        let mut engine = MaintenanceEngine::new();
        let rm = |v: NodeId| GraphDelta {
            nodes: vec![NodeUpdate::Remove(v)],
            edges: vec![],
        };
        let applied = apply_delta(&g, &rm(4)).expect("valid delta");
        engine.apply(&mut idx, &applied).expect("first removal");
        // Second removal of the same id: the delta layer rejects it
        // against a graph that still has the tombstone, so drive the
        // engine directly with a hand-built batch.
        let stale = AppliedGraphDelta {
            graph: applied.graph.clone(),
            added: vec![],
            removed: vec![4],
            dropped_edges: vec![],
            net: vec![],
            skipped: 0,
            cancelled: 0,
        };
        let err = engine.apply(&mut idx, &stale).unwrap_err();
        assert!(matches!(err, UpdateError::DeadNode { node: 4 }), "got {err:?}");
        // Index still serves the post-first-removal graph exactly.
        assert_exact(&idx, &applied.graph, &[0, 50, 99]);
    }
}
