//! Hubs-skeleton columns (§5.2, Eq. 8, Theorem 6).
//!
//! The skeleton vector of `u` holds `s_u(h) = r_u(h)` for every hub `h`.
//! The paper's key distribution insight is to compute it **one hub at a
//! time**: fix `h` and iterate
//!
//! ```text
//! F_{k+1}(u) = (1-α) · Σ_{v ∈ Out(u)} F_k(v) / deg(u)  +  α · x_h(u)
//! ```
//!
//! whose fixpoint is the *column* `c_h(u) = r_u(h)` over all sources `u`
//! (Theorem 6). Each column is independent — no cross-machine dependency —
//! and needs only O(|V|) working memory, which is what makes §5.2's
//! distributed precomputation communication-free.
//!
//! Two implementations:
//! * [`skeleton_column_jacobi`] — the literal synchronous sweep of Eq. 8.
//! * [`skeleton_column_push`] — a residual (Gauss–Seidel style) variant
//!   that pushes residuals backwards along in-edges and only touches nodes
//!   whose value actually changes. Orders of magnitude faster on sparse
//!   subgraphs; identical limit (both are summations of the same Neumann
//!   series). The equivalence is property-tested and benchmarked as the
//!   ablation `skeleton_jacobi_vs_push`.

use crate::{PprConfig, SparseVector};
use ppr_graph::{Adjacency, InAdjacency, NodeId};
use std::collections::VecDeque;

/// Literal Eq. 8 sweep. Returns the dense column `u -> r_u(h)`.
pub fn skeleton_column_jacobi<A: Adjacency>(adj: &A, hub: NodeId, cfg: &PprConfig) -> Vec<f64> {
    cfg.validate();
    let n = adj.n();
    let alpha = cfg.alpha;
    let mut cur = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..cfg.max_iterations {
        let mut max_diff = 0.0f64;
        for u in 0..n as NodeId {
            let deg = adj.degree(u);
            let mut acc = 0.0;
            if deg > 0 {
                for &v in adj.out(u) {
                    acc += cur[v as usize];
                }
                acc *= (1.0 - alpha) / deg as f64;
            }
            if u == hub {
                acc += alpha;
            }
            let d = (acc - cur[u as usize]).abs();
            if d > max_diff {
                max_diff = d;
            }
            next[u as usize] = acc;
        }
        std::mem::swap(&mut cur, &mut next);
        if max_diff <= cfg.epsilon {
            break;
        }
    }
    cur
}

/// Reusable residual-push engine for skeleton columns.
///
/// Invariant maintained: `c(u) = p(u) + ((I - M)^{-1} r)(u)` where
/// `M(u, v) = (1-α)/deg(u)` for each edge `u -> v`. Settling a node moves
/// its residual into the estimate and spreads `M`-weighted residual to its
/// **in-neighbours** (they reach `h` through it). Termination when all
/// residuals are at most ε gives a per-entry error of at most ε/α.
pub struct SkeletonEngine {
    p: Vec<f64>,
    r: Vec<f64>,
    in_queue: Vec<bool>,
    touched: Vec<NodeId>,
    queue: VecDeque<NodeId>,
}

impl SkeletonEngine {
    /// Engine for (sub)graphs of at most `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            p: vec![0.0; n],
            r: vec![0.0; n],
            in_queue: vec![false; n],
            touched: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.p.len() < n {
            self.p.resize(n, 0.0);
            self.r.resize(n, 0.0);
            self.in_queue.resize(n, false);
        }
    }

    /// Bytes of scratch this engine currently holds — the offline build's
    /// peak-scratch accounting (`OfflineReport::peak_scratch_bytes`).
    pub fn arena_bytes(&self) -> u64 {
        (self.p.len() * 8
            + self.r.len() * 8
            + self.in_queue.len()
            + self.touched.capacity() * 4
            + self.queue.capacity() * 4) as u64
    }

    /// Compute the column for `hub`, sparsified at the tolerance.
    pub fn run<A: InAdjacency>(&mut self, adj: &A, hub: NodeId, cfg: &PprConfig) -> SparseVector {
        let n = adj.n();
        self.ensure(n);
        let alpha = cfg.alpha;
        let eps = cfg.epsilon;

        self.r[hub as usize] = alpha;
        self.touched.push(hub);
        self.queue.push_back(hub);
        self.in_queue[hub as usize] = true;

        while let Some(u) = self.queue.pop_front() {
            self.in_queue[u as usize] = false;
            let res = self.r[u as usize];
            if res <= eps {
                continue;
            }
            self.r[u as usize] = 0.0;
            self.p[u as usize] += res;
            // Every in-neighbour v reaches h through u with one more step:
            // r(v) += (1-α)/deg(v) · res.
            for &v in adj.inn(u) {
                let deg = adj.degree(v);
                debug_assert!(deg > 0, "in-neighbour must have out-degree");
                let add = (1.0 - alpha) * res / deg as f64;
                if self.r[v as usize] == 0.0 && self.p[v as usize] == 0.0 {
                    self.touched.push(v);
                }
                self.r[v as usize] += add;
                if self.r[v as usize] > eps && !self.in_queue[v as usize] {
                    self.in_queue[v as usize] = true;
                    self.queue.push_back(v);
                }
            }
        }

        let mut entries = Vec::new();
        for &v in &self.touched {
            let val = self.p[v as usize];
            if val != 0.0 {
                entries.push((v, val));
            }
            self.p[v as usize] = 0.0;
            self.r[v as usize] = 0.0;
        }
        self.touched.clear();
        self.queue.clear();
        SparseVector::from_entries(entries)
    }
}

/// One-shot convenience over [`SkeletonEngine`].
pub fn skeleton_column_push<A: InAdjacency>(
    adj: &A,
    hub: NodeId,
    cfg: &PprConfig,
) -> SparseVector {
    SkeletonEngine::new(adj.n()).run(adj, hub, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::csr::from_edges;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
    use ppr_graph::{ViewBuilder};

    fn tight() -> PprConfig {
        PprConfig {
            epsilon: 1e-11,
            ..Default::default()
        }
    }

    #[test]
    fn column_matches_dense_rows() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 100,
                ..Default::default()
            },
            3,
        );
        let hub = 42u32;
        let col = skeleton_column_jacobi(&g, hub, &tight());
        for u in [0u32, 10, 42, 99] {
            let exact = dense_ppv(&g, u, 0.15);
            assert!(
                (col[u as usize] - exact[hub as usize]).abs() < 1e-8,
                "u {u}: {} vs {}",
                col[u as usize],
                exact[hub as usize]
            );
        }
    }

    #[test]
    fn push_equals_jacobi() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 150,
                ..Default::default()
            },
            8,
        );
        for hub in [0u32, 75, 149] {
            let a = skeleton_column_jacobi(&g, hub, &tight());
            let b = skeleton_column_push(&g, hub, &tight());
            for u in 0..150u32 {
                assert!(
                    (a[u as usize] - b.get(u)).abs() < 1e-7,
                    "hub {hub} u {u}: {} vs {}",
                    a[u as usize],
                    b.get(u)
                );
            }
        }
    }

    #[test]
    fn hub_sees_alpha_at_itself_minimum() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let col = skeleton_column_push(&g, 1, &tight());
        // r_1(1) >= α (trivial tour) and r_0(1) > 0 (one step away).
        assert!(col.get(1) >= 0.15 - 1e-12);
        assert!(col.get(0) > 0.0);
    }

    #[test]
    fn works_on_virtual_subgraph_views() {
        // Column on a view must honour original degrees (virtual node).
        let g = from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let mut vb = ViewBuilder::new(&g);
        let view = vb.build(&[0, 1]); // node 1 keeps degree 2 (edge to 2 escapes)
        let l1 = view.local_of(1).unwrap();
        let col = skeleton_column_push(&view, l1, &tight());
        let exact = dense_ppv(&view, 0, 0.15); // local source u=0 (global 0)
        let l0 = view.local_of(0).unwrap();
        assert!((col.get(l0) - exact[l1 as usize]).abs() < 1e-8);
    }

    #[test]
    fn unreachable_sources_absent() {
        // 0 -> 1; nothing reaches 0, so column of hub 0 is {0: α}.
        let g = from_edges(2, &[(0, 1)]);
        let col = skeleton_column_push(&g, 0, &tight());
        assert!((col.get(0) - 0.15).abs() < 1e-12);
        assert_eq!(col.get(1), 0.0);
    }

    #[test]
    fn engine_reuse_is_clean() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 90,
                ..Default::default()
            },
            1,
        );
        let mut eng = SkeletonEngine::new(90);
        let a1 = eng.run(&g, 7, &tight());
        let _ = eng.run(&g, 44, &tight());
        let a2 = eng.run(&g, 7, &tight());
        assert_eq!(a1, a2);
    }

    #[test]
    fn epsilon_controls_error() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 200,
                ..Default::default()
            },
            12,
        );
        let exact = skeleton_column_jacobi(&g, 5, &tight());
        for eps in [1e-4, 1e-6] {
            let got = skeleton_column_push(&g, 5, &PprConfig::with_epsilon(eps));
            let max_err = (0..200u32)
                .map(|u| (exact[u as usize] - got.get(u)).abs())
                .fold(0.0f64, f64::max);
            assert!(max_err <= eps / 0.15 + 1e-12, "eps {eps}: {max_err}");
        }
    }
}
