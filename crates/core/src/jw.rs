//! PPV-JW: the brute-force centralized extension of Jeh–Widom (§2.3).
//!
//! Precompute, for an *arbitrary* hub set `H`:
//! * the partial vector `p_u` of **every** node (tours blocked by `H`), and
//! * the skeleton column `c_h(u) = r_u(h)` of every hub.
//!
//! Query-time reconstruction is Eq. 4:
//!
//! ```text
//! r_u = (1/α) Σ_{h∈H} S_u(h) · P_h  +  p_u
//!   where  S_u(h) = s_u(h) − α·f_u(h),   P_h = p_h − α·x_h
//! ```
//!
//! The space cost is O(|V|²) in the worst case — the problem statement the
//! whole paper attacks — but the *algorithm* is the exactness backbone:
//! GPA (§3) is precisely PPV-JW with a separator hub set and the work
//! spread over machines, so tests validate GPA and HGPA against this.

use crate::push::PushEngine;
use crate::skeleton::SkeletonEngine;
use crate::{PprConfig, SparseVector};
use ppr_graph::{CsrGraph, NodeId};

/// Precomputed Jeh–Widom decomposition over an explicit hub set.
pub struct JwIndex {
    n: usize,
    cfg: PprConfig,
    /// Sorted hub set.
    hubs: Vec<NodeId>,
    /// Partial vector of every node.
    partials: Vec<SparseVector>,
    /// Skeleton column per hub (aligned with `hubs`).
    skeletons: Vec<SparseVector>,
}

impl JwIndex {
    /// Build the index. `hubs` may be any node set (deduplicated here).
    pub fn build(g: &CsrGraph, hubs: &[NodeId], cfg: &PprConfig) -> Self {
        cfg.validate();
        let n = g.node_count();
        let mut hubs = hubs.to_vec();
        hubs.sort_unstable();
        hubs.dedup();

        let mut blocked = vec![false; n];
        for &h in &hubs {
            blocked[h as usize] = true;
        }

        let mut push = PushEngine::new(n);
        let partials: Vec<SparseVector> = (0..n as NodeId)
            .map(|u| push.run(g, u, &blocked, cfg).partial)
            .collect();

        let mut skel = SkeletonEngine::new(n);
        let skeletons: Vec<SparseVector> = hubs.iter().map(|&h| skel.run(g, h, cfg)).collect();

        Self {
            n,
            cfg: *cfg,
            hubs,
            partials,
            skeletons,
        }
    }

    /// The hub set.
    pub fn hubs(&self) -> &[NodeId] {
        &self.hubs
    }

    /// Partial vector of `u`.
    pub fn partial(&self, u: NodeId) -> &SparseVector {
        &self.partials[u as usize]
    }

    /// Skeleton value `s_u(h)`.
    pub fn skeleton(&self, u: NodeId, h: NodeId) -> f64 {
        match self.hubs.binary_search(&h) {
            Ok(i) => self.skeletons[i].get(u),
            Err(_) => 0.0,
        }
    }

    /// Reconstruct the exact PPV of `u` (Eq. 4).
    pub fn query(&self, u: NodeId) -> SparseVector {
        self.query_preference(&[(u, 1.0)])
    }

    /// Exact PPV of a weighted preference set (the paper's `P`), by the
    /// Jeh–Widom linearity theorem.
    pub fn query_preference(&self, preference: &[(NodeId, f64)]) -> SparseVector {
        let alpha = self.cfg.alpha;
        let mut dense = vec![0.0f64; self.n];
        let mut touched: Vec<NodeId> = Vec::new();

        for &(u, w) in preference {
            for (i, &h) in self.hubs.iter().enumerate() {
                let mut coef = self.skeletons[i].get(u);
                if h == u {
                    coef -= alpha; // the f_u(h) correction of Eq. 3
                }
                if coef == 0.0 {
                    continue;
                }
                // += (coef/α) · p_h. With strict partial vectors (tours may
                // not touch hubs after the start, so p_h(h) = α and p_h is
                // zero at every other hub) this lands S_u(h) at coordinate
                // h — the exact PPV value there — while contributing
                // Eq. 4's hub term at non-hub coordinates. Jeh–Widom's
                // −α·x_h adjustment exists for their looser partial-vector
                // semantics and must NOT be applied here.
                self.partials[h as usize].scatter_into(&mut dense, &mut touched, w * coef / alpha);
            }
            self.partials[u as usize].scatter_into(&mut dense, &mut touched, w);
        }

        touched.sort_unstable();
        touched.dedup();
        SparseVector::from_entries(
            touched
                .into_iter()
                .filter(|&v| dense[v as usize].abs() > 0.0)
                .map(|v| (v, dense[v as usize]))
                .collect(),
        )
    }

    /// Total stored entries (space-cost accounting for §2.3 comparisons).
    pub fn stored_entries(&self) -> usize {
        self.partials.iter().map(SparseVector::nnz).sum::<usize>()
            + self.skeletons.iter().map(SparseVector::nnz).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::csr::from_edges;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn tight() -> PprConfig {
        PprConfig {
            epsilon: 1e-10,
            ..Default::default()
        }
    }

    fn assert_close(idx: &JwIndex, g: &CsrGraph, u: NodeId, tol: f64) {
        let exact = dense_ppv(g, u, idx.cfg.alpha);
        let got = idx.query(u);
        for v in 0..g.node_count() as NodeId {
            assert!(
                (exact[v as usize] - got.get(v)).abs() < tol,
                "u {u} v {v}: exact {} got {}",
                exact[v as usize],
                got.get(v)
            );
        }
    }

    #[test]
    fn exact_on_small_cycle_any_hubs() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (2, 0)]);
        for hubs in [vec![], vec![2u32], vec![1, 3], vec![0, 1, 2, 3, 4]] {
            let idx = JwIndex::build(&g, &hubs, &tight());
            for u in 0..5 {
                assert_close(&idx, &g, u, 1e-7);
            }
        }
    }

    #[test]
    fn exact_on_community_graph() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 120,
                ..Default::default()
            },
            31,
        );
        // Arbitrary hubs: every 10th node.
        let hubs: Vec<NodeId> = (0..120).step_by(10).collect();
        let idx = JwIndex::build(&g, &hubs, &tight());
        for u in [0u32, 5, 10, 60, 119] {
            assert_close(&idx, &g, u, 1e-6);
        }
    }

    #[test]
    fn query_of_hub_node_is_exact() {
        let g = from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 1)]);
        let idx = JwIndex::build(&g, &[1], &tight());
        assert_close(&idx, &g, 1, 1e-8); // u IS the hub: f_u(h) path
    }

    #[test]
    fn empty_hub_set_degenerates_to_partials() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let idx = JwIndex::build(&g, &[], &tight());
        // With no hubs the partial vector IS the PPV.
        assert_close(&idx, &g, 0, 1e-8);
        assert_eq!(idx.stored_entries(), idx.partials.iter().map(|p| p.nnz()).sum::<usize>());
    }

    #[test]
    fn skeleton_accessor() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let idx = JwIndex::build(&g, &[1], &tight());
        let exact = dense_ppv(&g, 0, 0.15);
        assert!((idx.skeleton(0, 1) - exact[1]).abs() < 1e-8);
        assert_eq!(idx.skeleton(0, 2), 0.0, "non-hub lookup is zero");
    }

    #[test]
    fn dangling_nodes_handled() {
        let g = from_edges(4, &[(0, 1), (1, 2), (1, 3)]); // 2 and 3 dangling
        let idx = JwIndex::build(&g, &[1], &tight());
        for u in 0..4 {
            assert_close(&idx, &g, u, 1e-8);
        }
    }
}
