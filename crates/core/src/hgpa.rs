//! HGPA — the hierarchical, hub-distributed algorithm (§4).
//!
//! The graph is recursively partitioned into a hierarchy (Figure 6). Per
//! subgraph `G` at level `m` with hub set `H(G)` separating its children,
//! the index stores:
//!
//! * for each hub `h ∈ H(G)`: its **partial vector** `p_h[G]` (selective
//!   expansion inside the virtual subgraph `G̃`, blocked by `H(G)`) and its
//!   **skeleton column** `c_h[G](u) = r_u[G̃](h)` over the members of `G`;
//! * for each non-hub node `u` in a leaf: its full local PPV `r_u[G̃_l]`.
//!
//! The query-time reconstruction walks `u`'s root-to-home path (Eq. 6):
//!
//! ```text
//! r_u = Σ_m (1/α) Σ_{h ∈ H(G_m^{(u)})} S_u[G_m](h) · P_h[G_m]  +  base(u)
//! ```
//!
//! with `base(u)` the leaf PPV (non-hub `u`) or `u`'s own partial vector at
//! the level where it became a hub — the uniform formula that Theorem 3
//! shows telescopes to Eq. 4 and hence the exact PPV.
//!
//! Distribution (§4.4, Eq. 7, Figure 8): every subgraph's hub list is
//! split evenly over the `s` machines, and leaf subgraphs are spread
//! round-robin, so each machine does `~1/s` of every level's work — the
//! load balance the paper's Figure 10 demonstrates. Each machine's reply
//! is a single vector; the coordinator just sums (Theorem 4 communication
//! bound O(s·|V|)).

use crate::gpa::harvest;
use crate::parallel::{run_timed, ParallelismMode};
use crate::push::PushEngine;
use crate::skeleton::SkeletonEngine;
use crate::{PprConfig, Scratch, SparseVector};
use ppr_graph::{CsrGraph, NodeId, ViewBuilder};
use ppr_partition::{Hierarchy, HierarchyConfig};

/// Build options for [`HgpaIndex`].
#[derive(Clone, Copy, Debug)]
pub struct HgpaBuildOptions {
    /// Hierarchical-partitioning options (fanout, depth, hub cover, ...).
    pub hierarchy: HierarchyConfig,
    /// Number of machines the index is spread over.
    pub machines: usize,
    /// `HGPA_ad` (§6.2.9): drop stored entries with value below this
    /// threshold after precomputation. `None` keeps the exact index.
    pub drop_threshold: Option<f64>,
    /// How precompute work items (per-subgraph hub slices, per-leaf local
    /// PPVs) execute. Index contents are bit-identical across modes
    /// (pinned by `tests/parallel_build.rs`);
    /// [`ParallelismMode::Sequential`] keeps per-machine modeled seconds
    /// measurement-grade, while [`ParallelismMode::Threads`] shrinks
    /// wall-clock with host cores.
    pub parallelism: ParallelismMode,
}

impl Default for HgpaBuildOptions {
    fn default() -> Self {
        Self {
            hierarchy: HierarchyConfig::default(),
            machines: 6, // the paper's default machine count (§6.1)
            drop_threshold: None,
            parallelism: ParallelismMode::Sequential,
        }
    }
}

/// Per-build statistics (offline cost accounting for Figures 12/16/17).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HgpaBuildStats {
    /// Partial-vector push operations executed.
    pub partial_pushes: u64,
    /// Skeleton columns computed.
    pub skeleton_columns: usize,
    /// Leaf PPVs computed.
    pub leaf_vectors: usize,
    /// Entries dropped by the `HGPA_ad` threshold.
    pub dropped_entries: usize,
}

/// The precomputed HGPA index.
///
/// ```
/// use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
/// use ppr_core::PprConfig;
/// use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
///
/// let graph = hierarchical_sbm(&HsbmConfig { nodes: 300, ..Default::default() }, 7);
/// let cfg = PprConfig { epsilon: 1e-7, ..Default::default() };
/// let index = HgpaIndex::build(&graph, &cfg, &HgpaBuildOptions::default());
///
/// // Full PPV, top-k, and node-to-node queries are all exact.
/// let ppv = index.query(0);
/// assert!(ppv.l1_norm() <= 1.0 + 1e-9);
/// assert_eq!(index.query_top_k(0, 3), ppv.top_k(3));
/// let (v, score) = ppv.top_k(1)[0];
/// assert!((index.query_value(0, v) - score).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct HgpaIndex {
    n: usize,
    cfg: PprConfig,
    machines: usize,
    hierarchy: Hierarchy,
    /// Base vector per node: leaf local PPV (non-hubs) or own partial
    /// vector at the hub's level (hubs). Entries in global ids.
    base: Vec<SparseVector>,
    /// Hub-aligned storage: `hub_rank[v]` indexes `skeletons` and
    /// `machine_of_hub`; `u32::MAX` for non-hubs.
    hub_rank: Vec<u32>,
    /// Hub node id per rank.
    hub_ids: Vec<NodeId>,
    /// Skeleton column per hub rank (keyed by member node id).
    skeletons: Vec<SparseVector>,
    /// Machine owning each hub rank (even split *within* each subgraph's
    /// hub list, per Eq. 7).
    machine_of_hub: Vec<u32>,
    /// Machine owning each node's base vector.
    machine_of_base: Vec<u32>,
    /// Build statistics.
    stats: HgpaBuildStats,
}

/// Per-machine offline (precomputation) cost report — the paper's offline
/// time metric is the maximum entry (Figures 12, 16, 20, 28).
#[derive(Clone, Debug, Default)]
pub struct OfflineReport {
    /// *Modeled* seconds each machine spent precomputing its vectors: the
    /// sum of its individually timed work items, i.e. dedicated-machine
    /// cost regardless of how many worker threads this host lent the
    /// build. Measurement-grade under [`ParallelismMode::Sequential`];
    /// under [`ParallelismMode::Threads`] core contention may inflate
    /// item times, so treat these as throughput-oriented there.
    pub per_machine_seconds: Vec<f64>,
    /// Seconds spent partitioning (done once, coordinator-side).
    pub partition_seconds: f64,
    /// Real elapsed seconds of the whole precompute fan-out in this
    /// process (excluding partitioning) — the wall-clock counterpart of
    /// the modeled [`OfflineReport::max_machine_seconds`], mirroring
    /// `ClusterQueryReport::wall_seconds` on the online path. Under
    /// `Sequential` this is ≈ the *sum* of machine times; under
    /// `Threads` with enough cores it approaches the longest item chain.
    pub wall_seconds: f64,
    /// Largest per-worker engine-arena footprint (push + skeleton
    /// scratch) the build held, in bytes — the `BENCH_offline.json`
    /// peak-scratch metric.
    pub peak_scratch_bytes: u64,
}

impl OfflineReport {
    /// Maximum per-machine time — the paper's reported offline time.
    pub fn max_machine_seconds(&self) -> f64 {
        self.per_machine_seconds.iter().copied().fold(0.0, f64::max)
    }
}

/// One unit of §5's distributed precomputation: either a leaf subgraph
/// (the owner computes every member's local PPV) or one machine's slice
/// of an internal subgraph's hub list (partial vector + skeleton column
/// per owned hub, sharing one subgraph view). Slicing hubs per machine —
/// rather than one item per hub — keeps the view-build amortization of
/// the sequential schedule, so a machine's modeled cost includes exactly
/// the view builds a dedicated machine would pay.
enum BuildItem<'h> {
    Leaf {
        sg: &'h ppr_partition::SubgraphNode,
        machine: usize,
    },
    HubSlice {
        sg: &'h ppr_partition::SubgraphNode,
        rank_base: u32,
        machine: usize,
    },
}

impl BuildItem<'_> {
    fn machine(&self) -> usize {
        match self {
            BuildItem::Leaf { machine, .. } | BuildItem::HubSlice { machine, .. } => *machine,
        }
    }
}

/// What one work item produced during distributed precomputation.
struct ItemOutput {
    bases: Vec<(NodeId, SparseVector)>,
    skeletons: Vec<(u32, SparseVector)>,
    stats: HgpaBuildStats,
}

impl HgpaIndex {
    /// Build the index: hierarchical partition + distributed per-subgraph
    /// precomputation (§5); see
    /// [`HgpaIndex::build_distributed_with_hierarchy`] for how the work
    /// is scheduled.
    pub fn build(g: &CsrGraph, cfg: &PprConfig, opts: &HgpaBuildOptions) -> Self {
        Self::build_distributed(g, cfg, opts).0
    }

    /// Build and report per-machine offline cost.
    pub fn build_distributed(
        g: &CsrGraph,
        cfg: &PprConfig,
        opts: &HgpaBuildOptions,
    ) -> (Self, OfflineReport) {
        let t0 = crate::parallel::Stopwatch::start();
        let hierarchy = Hierarchy::build(g, &opts.hierarchy);
        let partition_seconds = t0.elapsed_seconds();
        let (idx, mut report) =
            Self::build_distributed_with_hierarchy(g, cfg, opts, hierarchy);
        report.partition_seconds = partition_seconds;
        (idx, report)
    }

    /// Build from a pre-computed hierarchy (lets experiments sweep machine
    /// counts without re-partitioning).
    pub fn build_with_hierarchy(
        g: &CsrGraph,
        cfg: &PprConfig,
        opts: &HgpaBuildOptions,
        hierarchy: Hierarchy,
    ) -> Self {
        Self::build_distributed_with_hierarchy(g, cfg, opts, hierarchy).0
    }

    /// Distributed build from a pre-computed hierarchy.
    ///
    /// Work placement follows §4.4/§5 exactly: each subgraph's hub list is
    /// split evenly over machines (each machine computes the partial vector
    /// *and* skeleton column of its hubs) and leaf subgraphs are assigned
    /// round-robin (the owning machine computes every member's local PPV).
    /// Machines share nothing but the read-only graph — "we keep a copy of
    /// the graph structure on each machine" — so the work items are
    /// genuinely communication-free until the final merge, which models
    /// the vectors landing on their owners' disks.
    ///
    /// Execution is decoupled from placement: the items are dealt to
    /// [`opts.parallelism`](HgpaBuildOptions::parallelism) workers (one
    /// reusable engine set each), timed individually, and summed per
    /// owning machine — so [`OfflineReport::per_machine_seconds`] keeps
    /// reflecting dedicated-machine cost under any worker count while
    /// [`OfflineReport::wall_seconds`] tracks this host's real elapsed
    /// time. Index contents are bit-identical across modes (pinned by
    /// `tests/parallel_build.rs`).
    pub fn build_distributed_with_hierarchy(
        g: &CsrGraph,
        cfg: &PprConfig,
        opts: &HgpaBuildOptions,
        hierarchy: Hierarchy,
    ) -> (Self, OfflineReport) {
        cfg.validate();
        assert!(opts.machines >= 1);
        let n = g.node_count();
        let machines = opts.machines;

        // Hub ranks in hierarchy order (per-subgraph contiguous).
        let mut hub_rank = vec![u32::MAX; n];
        let mut hub_ids: Vec<NodeId> = Vec::new();
        let mut machine_of_hub: Vec<u32> = Vec::new();
        for sg in &hierarchy.nodes {
            for (i, &h) in sg.hubs.iter().enumerate() {
                // audit:allow(lossy-id-cast): hub rank < n, within the
                // builder-asserted u32::MAX node bound
                hub_rank[h as usize] = hub_ids.len() as u32;
                hub_ids.push(h);
                // Eq. 7: split each subgraph's hub list evenly over machines.
                // audit:allow(lossy-id-cast): machine index, bounded by `% machines`
                machine_of_hub.push((i % machines) as u32);
            }
        }

        // Decompose §5's precomputation into independent work items (leaf
        // PPV batches and per-machine hub slices, in hierarchy order) and
        // deal them to `opts.parallelism` workers. Items are timed
        // individually and summed per owning machine, so per-machine
        // modeled seconds reflect dedicated-machine cost — the quantity
        // the paper's offline figures report — under any worker count.
        // The work sets are disjoint and merge in item order, so index
        // contents are identical in every mode.
        let items = build_items(&hierarchy, machines);
        let t_build = crate::parallel::Stopwatch::start();
        let (outputs, peak_scratch_bytes) = run_timed(
            items.len(),
            opts.parallelism,
            || BuildWorker {
                push: PushEngine::new(0),
                skel: SkeletonEngine::new(0),
                vb: ViewBuilder::new(g),
            },
            |w| w.push.arena_bytes() + w.skel.arena_bytes(),
            |i, w| run_item(&items[i], cfg, machines, w),
        );
        let wall_seconds = t_build.elapsed_seconds();

        let mut base: Vec<SparseVector> = vec![SparseVector::new(); n];
        let mut skeletons: Vec<SparseVector> = vec![SparseVector::new(); hub_ids.len()];
        let mut stats = HgpaBuildStats::default();
        let mut per_machine_seconds = vec![0.0f64; machines];
        for (item, (out, secs)) in items.iter().zip(outputs) {
            for (v, vec) in out.bases {
                base[v as usize] = vec;
            }
            for (rank, col) in out.skeletons {
                skeletons[rank as usize] = col;
            }
            stats.partial_pushes += out.stats.partial_pushes;
            stats.skeleton_columns += out.stats.skeleton_columns;
            stats.leaf_vectors += out.stats.leaf_vectors;
            per_machine_seconds[item.machine()] += secs;
        }

        // HGPA_ad truncation (§6.2.9).
        if let Some(t) = opts.drop_threshold {
            for v in base.iter_mut().chain(skeletons.iter_mut()) {
                stats.dropped_entries += v.truncate_below(t);
            }
        }

        // Base-vector placement: leaf subgraphs round-robin (§4.4); hub
        // bases live with their hub's machine.
        let mut machine_of_base = vec![0u32; n];
        for (leaf_idx, leaf) in hierarchy.leaves().enumerate() {
            // audit:allow(lossy-id-cast): machine index, bounded by `% machines`
            let m = (leaf_idx % machines) as u32;
            for &v in &hierarchy.nodes[leaf].members {
                machine_of_base[v as usize] = m;
            }
        }
        for (rank, &h) in hub_ids.iter().enumerate() {
            machine_of_base[h as usize] = machine_of_hub[rank];
        }

        let idx = Self {
            n,
            cfg: *cfg,
            machines,
            hierarchy,
            base,
            hub_rank,
            hub_ids,
            skeletons,
            machine_of_hub,
            machine_of_base,
            stats,
        };
        let report = OfflineReport {
            per_machine_seconds,
            partition_seconds: 0.0,
            wall_seconds,
            peak_scratch_bytes,
        };
        (idx, report)
    }

    /// Exact PPV of `u`, reconstructed centrally (Eq. 6).
    pub fn query(&self, u: NodeId) -> SparseVector {
        self.query_preference(&[(u, 1.0)])
    }

    /// Exact PPV of a weighted preference set (the paper's general `P`,
    /// §1). By the Jeh–Widom linearity theorem the PPV of `P` is the
    /// weighted sum of its members' PPVs, so the machines simply
    /// accumulate each member's terms into the same reply vector — still
    /// one communication round.
    pub fn query_preference(&self, preference: &[(NodeId, f64)]) -> SparseVector {
        let mut dense = vec![0.0f64; self.n];
        let mut touched: Vec<NodeId> = Vec::new();
        for &(u, w) in preference {
            self.accumulate_query(u, w, None, &mut dense, &mut touched);
        }
        harvest(dense, touched)
    }

    /// The vector machine `machine` sends to the coordinator for query `u`
    /// (Algorithm 1). Summing over machines equals [`HgpaIndex::query`].
    pub fn machine_vector(&self, u: NodeId, machine: u32) -> SparseVector {
        self.machine_vector_preference(&[(u, 1.0)], machine)
    }

    /// Machine reply for a preference-set query.
    pub fn machine_vector_preference(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
    ) -> SparseVector {
        let mut scratch = Scratch::with_len(self.n);
        self.machine_vector_preference_into(preference, machine, &mut scratch)
    }

    /// [`HgpaIndex::machine_vector_preference`] accumulating into a
    /// caller-owned [`Scratch`] — bit-identical output, but a fan-out
    /// worker answering many queries pays the O(n) dense allocation once
    /// instead of once per call.
    pub fn machine_vector_preference_into(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
        scratch: &mut Scratch,
    ) -> SparseVector {
        scratch.ensure(self.n);
        let (dense, touched) = scratch.parts();
        for &(u, w) in preference {
            self.accumulate_query(u, w, Some(machine), dense, touched);
        }
        scratch.harvest()
    }

    fn accumulate_query(
        &self,
        u: NodeId,
        weight: f64,
        only_machine: Option<u32>,
        dense: &mut [f64],
        touched: &mut Vec<NodeId>,
    ) {
        if !self.is_live(u) {
            return; // tombstoned or out-of-range source: empty PPV
        }
        let alpha = self.cfg.alpha;
        // Walk the root-to-home path; every subgraph on it contributes its
        // hub terms (the leaf, having no hubs, contributes none).
        for sg_idx in self.hierarchy.path_to(u) {
            let sg = &self.hierarchy.nodes[sg_idx];
            for &h in &sg.hubs {
                let rank = self.hub_rank[h as usize] as usize;
                if let Some(m) = only_machine {
                    if self.machine_of_hub[rank] != m {
                        continue;
                    }
                }
                let mut coef = self.skeletons[rank].get(u);
                if h == u {
                    coef -= alpha;
                }
                if coef == 0.0 {
                    continue;
                }
                // Strict per-level partials put p_h[G_m](h) = α and no
                // other hub entries, so this writes the local skeleton
                // value at coordinate h (the recursion's exact value
                // there, Theorem 3) and the Eq. 6 hub term elsewhere.
                self.base[h as usize].scatter_into(dense, touched, weight * coef / alpha);
            }
        }
        let include_base = match only_machine {
            Some(m) => self.machine_of_base[u as usize] == m,
            None => true,
        };
        if include_base {
            self.base[u as usize].scatter_into(dense, touched, weight);
        }
    }

    /// Start a reusable query session: repeated queries share one dense
    /// accumulator instead of allocating per call. This is how the
    /// experiment harness executes the paper's 1000-query workloads.
    pub fn session(&self) -> QuerySession<'_> {
        QuerySession {
            index: self,
            dense: vec![0.0; self.n],
            touched: Vec::new(),
        }
    }

    /// Exact single-value query `r_u(v)` — the node-to-node PPR problem
    /// (§7, Lofgren et al.) answered from the index without materialising
    /// the full vector: only the hub terms along `u`'s path are probed at
    /// coordinate `v`, costing O(path hubs · log nnz).
    pub fn query_value(&self, u: NodeId, v: NodeId) -> f64 {
        if !self.is_live(u) {
            return 0.0; // tombstoned or out-of-range source
        }
        let alpha = self.cfg.alpha;
        let mut acc = self.base[u as usize].get(v);
        for sg_idx in self.hierarchy.path_to(u) {
            let sg = &self.hierarchy.nodes[sg_idx];
            for &h in &sg.hubs {
                let rank = self.hub_rank[h as usize] as usize;
                let mut coef = self.skeletons[rank].get(u);
                if h == u {
                    coef -= alpha;
                }
                if coef == 0.0 {
                    continue;
                }
                acc += coef / alpha * self.base[h as usize].get(v);
            }
        }
        acc
    }

    /// Exact top-k query (§7's top-k PPR problem): the k highest-scoring
    /// nodes of `u`'s PPV with their scores, descending.
    pub fn query_top_k(&self, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        self.query(u).top_k(k)
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of graph nodes, **including tombstones** of removed nodes
    /// (the id space stays dense under node churn).
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Is `v` a node this index currently serves? `false` for ids out of
    /// range and for tombstones left by node removal; queries for such
    /// sources return the empty vector (or `0.0` from
    /// [`HgpaIndex::query_value`]) instead of panicking.
    pub fn is_live(&self, v: NodeId) -> bool {
        (v as usize) < self.n && self.hierarchy.home[v as usize] != usize::MAX
    }

    /// The partition hierarchy backing this index.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Build-time statistics.
    pub fn stats(&self) -> &HgpaBuildStats {
        &self.stats
    }

    /// PPR configuration used at build time.
    pub fn config(&self) -> &PprConfig {
        &self.cfg
    }

    /// All hub node ids, in hierarchy order.
    pub fn hub_ids(&self) -> &[NodeId] {
        &self.hub_ids
    }

    /// Base vector of every node (leaf local PPV or own partial vector),
    /// indexed by node id. Exposed so differential tests can pin builds
    /// bit-identical.
    pub fn base_vectors(&self) -> &[SparseVector] {
        &self.base
    }

    /// Skeleton column per hub rank (aligned with [`HgpaIndex::hub_ids`]).
    pub fn skeleton_columns(&self) -> &[SparseVector] {
        &self.skeletons
    }

    /// Machine owning each hub rank (Eq. 7's even split).
    pub fn machine_of_hub(&self) -> &[u32] {
        &self.machine_of_hub
    }

    /// Machine owning each node's base vector.
    pub fn machine_of_base(&self) -> &[u32] {
        &self.machine_of_base
    }

    /// Bytes of precomputed state on each machine (Figure 11's metric).
    pub fn storage_bytes_per_machine(&self) -> Vec<u64> {
        let mut bytes = vec![0u64; self.machines];
        for (rank, &h) in self.hub_ids.iter().enumerate() {
            let m = self.machine_of_hub[rank] as usize;
            bytes[m] += self.base[h as usize].wire_bytes() + self.skeletons[rank].wire_bytes();
        }
        for v in 0..self.n as NodeId {
            if self.hub_rank[v as usize] == u32::MAX {
                bytes[self.machine_of_base[v as usize] as usize] +=
                    self.base[v as usize].wire_bytes();
            }
        }
        bytes
    }

    /// Total stored entries across machines (space accounting, §4.5).
    pub fn stored_entries(&self) -> usize {
        self.base.iter().map(SparseVector::nnz).sum::<usize>()
            + self.skeletons.iter().map(SparseVector::nnz).sum::<usize>()
    }

    /// Mutable hierarchy access for the incremental updater.
    pub(crate) fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hierarchy
    }

    /// Replace a node's base vector (incremental updater).
    pub(crate) fn set_base(&mut self, v: NodeId, vec: SparseVector) {
        self.base[v as usize] = vec;
    }

    /// Replace a hub's skeleton column (incremental updater).
    pub(crate) fn set_skeleton(&mut self, hub: NodeId, col: SparseVector) {
        let rank = self.hub_rank[hub as usize];
        assert_ne!(rank, u32::MAX, "node {hub} is not a registered hub");
        self.skeletons[rank as usize] = col;
    }

    /// Give a freshly promoted hub a storage rank and machine assignment.
    /// Idempotent for nodes that already hold a rank (hubs promoted from a
    /// deeper level keep their slot).
    pub(crate) fn register_promoted_hub(&mut self, u: NodeId) {
        if self.hub_rank[u as usize] != u32::MAX {
            return;
        }
        // audit:allow(lossy-id-cast): hub rank < n, within the
        // builder-asserted u32::MAX node bound
        let rank = self.hub_ids.len() as u32;
        self.hub_rank[u as usize] = rank;
        self.hub_ids.push(u);
        self.skeletons.push(SparseVector::new());
        // Least-loaded assignment keeps the Eq. 7 balance as hubs arrive.
        let mut load = vec![0usize; self.machines];
        for &m in &self.machine_of_hub {
            load[m as usize] += 1;
        }
        let machine = load
            .iter()
            .enumerate()
            .min_by_key(|&(_, l)| *l)
            .map(|(m, _)| m as u32)
            .unwrap_or(0);
        self.machine_of_hub.push(machine);
        self.machine_of_base[u as usize] = machine;
    }

    /// Admit a freshly added node (id `self.n`, extending the dense id
    /// space) as a member of the least-populated leaf; returns that
    /// leaf's arena index so the updater can dirty it. The node's base
    /// vector starts empty — the caller recomputes the leaf against the
    /// new graph.
    pub(crate) fn admit_node(&mut self, v: NodeId) -> usize {
        debug_assert_eq!(v as usize, self.n, "added ids must extend the dense id space");
        let leaf = self
            .hierarchy
            .leaves()
            .min_by_key(|&l| (self.hierarchy.nodes[l].members.len(), l))
            .expect("a hierarchy always has at least one leaf");
        // Leaf members are never hubs, so the first member's base machine
        // is the leaf's round-robin owner (empty leaf: machine 0).
        let machine = self.hierarchy.nodes[leaf]
            .members
            .first()
            .map(|&m| self.machine_of_base[m as usize])
            .unwrap_or(0);
        // Member lists are closed upward: insert into the leaf and every
        // ancestor (new ids sort after all existing members).
        let mut cursor = Some(leaf);
        while let Some(i) = cursor {
            let node = &mut self.hierarchy.nodes[i];
            if let Err(pos) = node.members.binary_search(&v) {
                node.members.insert(pos, v);
            }
            cursor = node.parent;
        }
        self.hierarchy.home.push(leaf);
        self.hierarchy.hub_level.push(None);
        self.n += 1;
        self.base.push(SparseVector::new());
        self.hub_rank.push(u32::MAX);
        self.machine_of_base.push(machine);
        leaf
    }

    /// Excise a removed node: drop it from every subgraph on its
    /// root-to-home chain (member and hub lists), clear its stored
    /// vectors, and tombstone its id (`home = usize::MAX`). The id space
    /// stays dense; a former hub's rank slot is orphaned (its skeleton
    /// column is emptied and the rank never reused).
    pub(crate) fn excise_node(&mut self, v: NodeId) {
        let path = self.hierarchy.path_to(v);
        for sg in path {
            let node = &mut self.hierarchy.nodes[sg];
            if let Ok(pos) = node.members.binary_search(&v) {
                node.members.remove(pos);
            }
            if let Ok(pos) = node.hubs.binary_search(&v) {
                node.hubs.remove(pos);
            }
        }
        self.hierarchy.home[v as usize] = usize::MAX;
        self.hierarchy.hub_level[v as usize] = None;
        self.base[v as usize] = SparseVector::new();
        let rank = self.hub_rank[v as usize];
        if rank != u32::MAX {
            self.skeletons[rank as usize] = SparseVector::new();
            self.hub_rank[v as usize] = u32::MAX;
        }
    }

    /// Reassemble from persisted fields. The loader (`core::persist`)
    /// derives `hub_rank` from the stored hub list and validates every
    /// field before calling this; build statistics round-trip so a
    /// cold-started process can still report offline cost accounting.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_persist_parts(
        n: usize,
        cfg: PprConfig,
        machines: usize,
        hierarchy: Hierarchy,
        base: Vec<SparseVector>,
        hub_rank: Vec<u32>,
        hub_ids: Vec<NodeId>,
        skeletons: Vec<SparseVector>,
        machine_of_hub: Vec<u32>,
        machine_of_base: Vec<u32>,
        stats: HgpaBuildStats,
    ) -> Self {
        Self {
            n,
            cfg,
            machines,
            hierarchy,
            base,
            hub_rank,
            hub_ids,
            skeletons,
            machine_of_hub,
            machine_of_base,
            stats,
        }
    }
}

/// Amortised query executor over one [`HgpaIndex`]: reuses a dense
/// accumulator across calls (see [`HgpaIndex::session`]).
pub struct QuerySession<'i> {
    index: &'i HgpaIndex,
    dense: Vec<f64>,
    touched: Vec<NodeId>,
}

impl QuerySession<'_> {
    /// Exact PPV of `u`; identical to [`HgpaIndex::query`].
    pub fn query(&mut self, u: NodeId) -> SparseVector {
        self.query_preference(&[(u, 1.0)])
    }

    /// Exact PPV of a weighted preference set.
    pub fn query_preference(&mut self, preference: &[(NodeId, f64)]) -> SparseVector {
        for &(u, w) in preference {
            self.index
                .accumulate_query(u, w, None, &mut self.dense, &mut self.touched);
        }
        self.harvest_reset()
    }

    /// The reply vector machine `machine` computes for query `u` —
    /// identical to [`HgpaIndex::machine_vector`] but reusing this
    /// session's dense scratch, so a batch fan-out pays the O(n)
    /// allocation once per machine instead of once per source.
    pub fn machine_vector(&mut self, u: NodeId, machine: u32) -> SparseVector {
        self.index
            .accumulate_query(u, 1.0, Some(machine), &mut self.dense, &mut self.touched);
        self.harvest_reset()
    }

    /// Sparsify the accumulator and zero the scratch for the next call.
    fn harvest_reset(&mut self) -> SparseVector {
        SparseVector::harvest_scratch(&mut self.dense, &mut self.touched)
    }
}

/// Map a view-local sparse vector to global ids.
fn map_to_global(v: &SparseVector, view: &ppr_graph::SubView) -> SparseVector {
    SparseVector::from_entries(v.iter().map(|(l, x)| (view.global_of(l), x)).collect())
}

/// Reusable per-worker state for the build fan-out: engines grow to the
/// largest subgraph their worker meets and are reused across every item
/// (the sequential schedule used to allocate fresh engines per machine
/// and per leaf).
struct BuildWorker<'g> {
    push: PushEngine,
    skel: SkeletonEngine,
    vb: ViewBuilder<'g>,
}

/// Enumerate §5's work items in hierarchy order: one [`BuildItem::Leaf`]
/// per leaf subgraph (owner round-robin by leaf index, §4.4) and one
/// [`BuildItem::HubSlice`] per (internal subgraph, machine) pair with a
/// non-empty hub-position slice (Eq. 7's even split of each hub list).
fn build_items(hierarchy: &Hierarchy, machines: usize) -> Vec<BuildItem<'_>> {
    let mut items = Vec::new();
    let mut rank_cursor = 0u32; // global hub rank, in hierarchy order
    let mut leaf_cursor = 0usize;
    for sg in &hierarchy.nodes {
        if sg.is_leaf() {
            items.push(BuildItem::Leaf {
                sg,
                machine: leaf_cursor % machines,
            });
            leaf_cursor += 1;
            continue;
        }
        for machine in 0..machines.min(sg.hubs.len()) {
            items.push(BuildItem::HubSlice {
                sg,
                rank_base: rank_cursor,
                machine,
            });
        }
        // audit:allow(lossy-id-cast): hub rank < n, within the
        // builder-asserted u32::MAX node bound
        rank_cursor += sg.hubs.len() as u32;
    }
    items
}

/// Execute one work item with a worker's reusable engines.
fn run_item(
    item: &BuildItem<'_>,
    cfg: &PprConfig,
    machines: usize,
    w: &mut BuildWorker<'_>,
) -> ItemOutput {
    let mut out = ItemOutput {
        bases: Vec::new(),
        skeletons: Vec::new(),
        stats: HgpaBuildStats::default(),
    };
    match *item {
        BuildItem::Leaf { sg, .. } => {
            // Leaf: full local PPV for every member (Theorem 2 turns these
            // into partial vectors w.r.t. all ancestor hubs).
            let view = w.vb.build(&sg.members);
            let no_block = vec![false; view.len()];
            for (local, &global) in view.globals().iter().enumerate() {
                let res = w.push.run(&view, local as NodeId, &no_block, cfg);
                out.stats.partial_pushes += res.pushes;
                out.stats.leaf_vectors += 1;
                out.bases.push((global, map_to_global(&res.partial, &view)));
            }
        }
        BuildItem::HubSlice {
            sg,
            rank_base,
            machine,
        } => {
            // Internal subgraph: this item handles hub positions
            // machine, machine+machines, ... of the subgraph's hub list.
            let view = w.vb.build(&sg.members);
            let mut blocked = vec![false; view.len()];
            for &h in &sg.hubs {
                blocked[view.local_of(h).expect("hub is a member") as usize] = true;
            }
            for pos in (machine..sg.hubs.len()).step_by(machines) {
                let h = sg.hubs[pos];
                let lh = view.local_of(h).expect("hub is a member");
                let res = w.push.run(&view, lh, &blocked, cfg);
                out.stats.partial_pushes += res.pushes;
                out.bases.push((h, map_to_global(&res.partial, &view)));

                let col = w.skel.run(&view, lh, cfg);
                out.stats.skeleton_columns += 1;
                out.skeletons
                    .push((rank_base + pos as u32, map_to_global(&col, &view)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
    use ppr_partition::CoverAlgorithm;

    fn sample(n: usize, seed: u64) -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: n,
                depth: 4,
                locality: 0.9,
                ..Default::default()
            },
            seed,
        )
    }

    fn tight() -> PprConfig {
        PprConfig {
            epsilon: 1e-9,
            ..Default::default()
        }
    }

    fn small_leaves() -> HgpaBuildOptions {
        HgpaBuildOptions {
            hierarchy: HierarchyConfig {
                max_leaf_size: 16,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn query_matches_dense_oracle() {
        let g = sample(200, 3);
        let idx = HgpaIndex::build(&g, &tight(), &small_leaves());
        assert!(idx.hierarchy().depth >= 2, "hierarchy should be non-trivial");
        for u in [0u32, 33, 111, 199] {
            let exact = dense_ppv(&g, u, 0.15);
            let got = idx.query(u);
            for v in 0..200u32 {
                assert!(
                    (exact[v as usize] - got.get(v)).abs() < 1e-5,
                    "u {u} v {v}: {} vs {}",
                    exact[v as usize],
                    got.get(v)
                );
            }
        }
    }

    #[test]
    fn hub_queries_exact_at_every_level() {
        let g = sample(250, 11);
        let idx = HgpaIndex::build(&g, &tight(), &small_leaves());
        // One hub from each level present.
        let mut tested = 0;
        for sg in &idx.hierarchy.nodes {
            if let Some(&h) = sg.hubs.first() {
                let exact = dense_ppv(&g, h, 0.15);
                let got = idx.query(h);
                for v in 0..250u32 {
                    assert!(
                        (exact[v as usize] - got.get(v)).abs() < 1e-5,
                        "hub {h} (level {}) v {v}",
                        sg.level
                    );
                }
                tested += 1;
            }
        }
        assert!(tested >= 2, "expected hubs at multiple levels");
    }

    #[test]
    fn machine_vectors_sum_to_query() {
        let g = sample(220, 5);
        let opts = HgpaBuildOptions {
            machines: 4,
            ..small_leaves()
        };
        let idx = HgpaIndex::build(&g, &tight(), &opts);
        for u in [3u32, 100, 219] {
            let full = idx.query(u);
            let mut dense = vec![0.0f64; 220];
            for m in 0..4 {
                for (v, x) in idx.machine_vector(u, m).iter() {
                    dense[v as usize] += x;
                }
            }
            for v in 0..220u32 {
                assert!(
                    (full.get(v) - dense[v as usize]).abs() < 1e-12,
                    "u {u} v {v}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_gpa() {
        use crate::gpa::{GpaBuildOptions, GpaIndex};
        let g = sample(180, 21);
        let hgpa = HgpaIndex::build(&g, &tight(), &small_leaves());
        let gpa = GpaIndex::build(&g, &tight(), &GpaBuildOptions::default());
        for u in [0u32, 90, 179] {
            let a = hgpa.query(u);
            let b = gpa.query(u);
            for v in 0..180u32 {
                assert!(
                    (a.get(v) - b.get(v)).abs() < 1e-5,
                    "u {u} v {v}: {} vs {}",
                    a.get(v),
                    b.get(v)
                );
            }
        }
    }

    #[test]
    fn hgpa_ad_truncates_but_stays_close() {
        let g = sample(200, 7);
        let exact_idx = HgpaIndex::build(&g, &tight(), &small_leaves());
        let ad_idx = HgpaIndex::build(
            &g,
            &tight(),
            &HgpaBuildOptions {
                drop_threshold: Some(1e-4),
                ..small_leaves()
            },
        );
        assert!(ad_idx.stats().dropped_entries > 0);
        assert!(ad_idx.stored_entries() < exact_idx.stored_entries());
        let a = exact_idx.query(50);
        let b = ad_idx.query(50);
        // Top entries survive truncation nearly unchanged.
        let (top, _) = a.top_k(1)[0];
        assert!((a.get(top) - b.get(top)).abs() < 1e-2);
    }

    #[test]
    fn deeper_hierarchies_store_less() {
        let g = sample(400, 13);
        let shallow = HgpaIndex::build(
            &g,
            &PprConfig::default(),
            &HgpaBuildOptions {
                hierarchy: HierarchyConfig {
                    max_depth: Some(1),
                    max_leaf_size: 0,
                    min_members: 4,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let deep = HgpaIndex::build(
            &g,
            &PprConfig::default(),
            &HgpaBuildOptions {
                hierarchy: HierarchyConfig {
                    max_depth: Some(5),
                    max_leaf_size: 24,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert!(
            deep.stored_entries() < shallow.stored_entries(),
            "deep {} vs shallow {}",
            deep.stored_entries(),
            shallow.stored_entries()
        );
    }

    #[test]
    fn storage_is_load_balanced() {
        let g = sample(300, 17);
        let opts = HgpaBuildOptions {
            machines: 5,
            ..small_leaves()
        };
        let idx = HgpaIndex::build(&g, &tight(), &opts);
        let bytes = idx.storage_bytes_per_machine();
        let total: u64 = bytes.iter().sum();
        let max = *bytes.iter().max().unwrap();
        // Ideal share is 20%; allow generous slack for small samples.
        assert!(
            (max as f64) < 0.5 * total as f64,
            "imbalanced storage: {bytes:?}"
        );
    }

    #[test]
    fn point_queries_match_full_queries() {
        let g = sample(200, 3);
        let idx = HgpaIndex::build(&g, &tight(), &small_leaves());
        for u in [0u32, 77, 199] {
            let full = idx.query(u);
            for v in [0u32, 1, 50, 123, 199] {
                assert!(
                    (idx.query_value(u, v) - full.get(v)).abs() < 1e-12,
                    "u {u} v {v}"
                );
            }
            // Hub source too.
            let top = idx.query_top_k(u, 10);
            assert_eq!(top, full.top_k(10));
            assert!(top.len() == 10);
            assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        }
        if let Some(&h) = idx.hub_ids().first() {
            let full = idx.query(h);
            for v in [0u32, 100] {
                assert!((idx.query_value(h, v) - full.get(v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn session_queries_match_one_shot() {
        let g = sample(180, 23);
        let idx = HgpaIndex::build(&g, &tight(), &small_leaves());
        let mut session = idx.session();
        for u in [0u32, 45, 90, 45, 179] {
            // repeats included: scratch must reset cleanly
            assert_eq!(session.query(u), idx.query(u), "u {u}");
        }
        let pref = [(3u32, 0.5), (99u32, 0.5)];
        assert_eq!(
            session.query_preference(&pref),
            idx.query_preference(&pref)
        );
    }

    #[test]
    fn preference_queries_match_linearity() {
        let g = sample(160, 19);
        let idx = HgpaIndex::build(&g, &tight(), &small_leaves());
        let pref = [(5u32, 0.25), (80u32, 0.75)];
        let direct = idx.query_preference(&pref);
        let a = idx.query(5);
        let b = idx.query(80);
        for v in 0..160u32 {
            let want = 0.25 * a.get(v) + 0.75 * b.get(v);
            assert!((direct.get(v) - want).abs() < 1e-12, "v {v}");
        }
    }

    #[test]
    fn konig_and_greedy_covers_both_exact() {
        let g = sample(150, 29);
        for cover in [CoverAlgorithm::KonigExact, CoverAlgorithm::Greedy] {
            let idx = HgpaIndex::build(
                &g,
                &tight(),
                &HgpaBuildOptions {
                    hierarchy: HierarchyConfig {
                        cover,
                        max_leaf_size: 16,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            let exact = dense_ppv(&g, 75, 0.15);
            let got = idx.query(75);
            for v in 0..150u32 {
                assert!(
                    (exact[v as usize] - got.get(v)).abs() < 1e-5,
                    "{cover:?} v {v}"
                );
            }
        }
    }
}
