//! GPA — the graph-partition based distributed algorithm (§3).
//!
//! The graph is split into `m` balanced subgraphs; the bridging nodes form
//! the hub set `H`. The benefit (§3.2) is that the partial vector of a
//! non-hub node is confined to its own subgraph — by Theorem 2 it *is* the
//! local PPV of the subgraph's virtual-subgraph view — collapsing the
//! dominant O((|V|−|H|)²) storage term of PPV-JW to O((|V|−|H|)²/m).
//!
//! Storage layout mirrors §3.1: every machine holds the partial vectors of
//! the nodes assigned to it and, for each of its hubs, the hub's partial
//! vector **and** the hub's skeleton column (so the weight `S_u(h)` is
//! local at query time). A query fans out once: machine `i` computes
//!
//! ```text
//! v_i = (1/α) Σ_{h ∈ H(M_i)} S_u(h) · P_h   ( + p_u if u lives on M_i )
//! ```
//!
//! and ships `v_i` to the coordinator, which sums — Eq. 5. Theorem 1 says
//! the result equals PPV-JW's; the tests check it against the dense oracle.

use crate::parallel::{run_timed, ParallelismMode};
use crate::push::PushEngine;
use crate::skeleton::SkeletonEngine;
use crate::{PprConfig, Scratch, SparseVector};
use ppr_graph::{CsrGraph, NodeId, ViewBuilder};
use ppr_partition::{flat_partition, CoverAlgorithm, FlatPartition, PartitionConfig};

/// Build options for [`GpaIndex`].
#[derive(Clone, Copy, Debug)]
pub struct GpaBuildOptions {
    /// Number of subgraphs `m` the graph is partitioned into.
    pub subgraphs: usize,
    /// Number of machines `n` the index is spread over.
    pub machines: usize,
    /// Hub (vertex cover) selection algorithm.
    pub cover: CoverAlgorithm,
    /// Partitioner options.
    pub partition: PartitionConfig,
    /// How precompute work items (hub columns, per-subgraph local PPVs)
    /// execute. Index contents are bit-identical across modes (pinned by
    /// `tests/parallel_build.rs`); [`ParallelismMode::Sequential`] keeps
    /// per-machine modeled seconds measurement-grade, while
    /// [`ParallelismMode::Threads`] shrinks wall-clock with host cores.
    pub parallelism: ParallelismMode,
}

impl Default for GpaBuildOptions {
    fn default() -> Self {
        Self {
            subgraphs: 4,
            machines: 4,
            cover: CoverAlgorithm::KonigExact,
            partition: PartitionConfig::default(),
            parallelism: ParallelismMode::Sequential,
        }
    }
}

/// Reusable per-worker state for the build fan-out: both engines grow to
/// the largest (sub)graph their worker meets and are reused across every
/// item, so the per-part `PushEngine::new(view.len())` allocation the
/// sequential build used to pay is gone.
struct BuildWorker<'g> {
    push: PushEngine,
    skel: SkeletonEngine,
    vb: ViewBuilder<'g>,
}

/// What one work item produced.
struct ItemOut {
    bases: Vec<(NodeId, SparseVector)>,
    skeleton: Option<(u32, SparseVector)>,
}

/// The precomputed GPA index.
#[derive(Debug)]
pub struct GpaIndex {
    n: usize,
    cfg: PprConfig,
    machines: usize,
    partition: FlatPartition,
    /// Partial vector of every node (global-id entries).
    base: Vec<SparseVector>,
    /// `hub_rank[v]` = index into hub-aligned arrays, `u32::MAX` if non-hub.
    hub_rank: Vec<u32>,
    /// Skeleton column per hub rank (keyed by source node id).
    skeletons: Vec<SparseVector>,
    /// Machine owning each hub rank.
    machine_of_hub: Vec<u32>,
    /// Machine owning each part.
    machine_of_part: Vec<u32>,
}

impl GpaIndex {
    /// Partition, select hubs, and precompute all vectors (§5).
    pub fn build(g: &CsrGraph, cfg: &PprConfig, opts: &GpaBuildOptions) -> Self {
        Self::build_distributed(g, cfg, opts).0
    }

    /// Distributed build: hubs round-robin over machines (each machine
    /// computes its hubs' partial vectors and skeleton columns against the
    /// whole graph, §5.2 GPA flavour), parts round-robin (the owner
    /// computes every member's local PPV). Returns per-machine offline
    /// seconds alongside the index.
    ///
    /// The precomputation is decomposed into independent **work items** —
    /// one per hub (partial vector + skeleton column) and one per
    /// non-empty part (every member's local PPV) — dealt to
    /// [`opts.parallelism`](GpaBuildOptions::parallelism) workers, each
    /// owning one reusable engine set. Items are timed individually and
    /// summed per owning machine, so
    /// [`OfflineReport::per_machine_seconds`](crate::hgpa::OfflineReport::per_machine_seconds)
    /// keeps reflecting dedicated-machine cost (the paper's offline
    /// metric) under any worker count, while
    /// [`OfflineReport::wall_seconds`](crate::hgpa::OfflineReport::wall_seconds)
    /// reports what this host actually spent. Index contents are
    /// bit-identical across modes: item work sets are disjoint, all
    /// shared state is read-only, and outputs merge in item order.
    pub fn build_distributed(
        g: &CsrGraph,
        cfg: &PprConfig,
        opts: &GpaBuildOptions,
    ) -> (Self, crate::hgpa::OfflineReport) {
        cfg.validate();
        assert!(opts.machines >= 1);
        let n = g.node_count();
        let machines = opts.machines;
        let t0 = crate::parallel::Stopwatch::start();
        let partition = flat_partition(g, opts.subgraphs, opts.cover, &opts.partition);
        let partition_seconds = t0.elapsed_seconds();

        let mut hub_rank = vec![u32::MAX; n];
        for (i, &h) in partition.hubs.iter().enumerate() {
            hub_rank[h as usize] = i as u32;
        }
        let mut blocked = vec![false; n];
        for &h in &partition.hubs {
            blocked[h as usize] = true;
        }

        // Work items: hubs first (item i = hub rank i), then the
        // non-empty parts. Owners follow §3.1's round-robin placement.
        let hubs = partition.hubs.len();
        let live_parts: Vec<usize> = (0..partition.subgraphs.len())
            .filter(|&p| !partition.subgraphs[p].is_empty())
            .collect();
        let machine_of_item = |item: usize| -> usize {
            if item < hubs {
                item % machines
            } else {
                live_parts[item - hubs] % machines
            }
        };

        let t_build = crate::parallel::Stopwatch::start();
        let (outputs, peak_scratch_bytes) = run_timed(
            hubs + live_parts.len(),
            opts.parallelism,
            || BuildWorker {
                push: PushEngine::new(0),
                skel: SkeletonEngine::new(0),
                vb: ViewBuilder::new(g),
            },
            |w| w.push.arena_bytes() + w.skel.arena_bytes(),
            |item, w| {
                if item < hubs {
                    // Hub: partial (whole graph, blocked by H) + skeleton
                    // column (whole graph).
                    let h = partition.hubs[item];
                    ItemOut {
                        bases: vec![(h, w.push.run(g, h, &blocked, cfg).partial)],
                        skeleton: Some((item as u32, w.skel.run(g, h, cfg))),
                    }
                } else {
                    // Part: full local PPV per member (Theorem 2).
                    let part = &partition.subgraphs[live_parts[item - hubs]];
                    let view = w.vb.build(part);
                    let no_block = vec![false; view.len()];
                    let bases = view
                        .globals()
                        .iter()
                        .enumerate()
                        .map(|(local, &global)| {
                            let res = w.push.run(&view, local as NodeId, &no_block, cfg);
                            (
                                global,
                                SparseVector::from_entries(
                                    res.partial
                                        .iter()
                                        .map(|(l, v)| (view.global_of(l), v))
                                        .collect(),
                                ),
                            )
                        })
                        .collect();
                    ItemOut {
                        bases,
                        skeleton: None,
                    }
                }
            },
        );
        let wall_seconds = t_build.elapsed_seconds();

        let mut base: Vec<SparseVector> = vec![SparseVector::new(); n];
        let mut skeletons: Vec<SparseVector> = vec![SparseVector::new(); hubs];
        let mut per_machine_seconds = vec![0.0f64; machines];
        for (item, (out, secs)) in outputs.into_iter().enumerate() {
            for (v, vec) in out.bases {
                base[v as usize] = vec;
            }
            if let Some((rank, col)) = out.skeleton {
                skeletons[rank as usize] = col;
            }
            per_machine_seconds[machine_of_item(item)] += secs;
        }

        // Even distribution: hubs round-robin, parts round-robin (§3.1).
        let machine_of_hub: Vec<u32> = (0..partition.hubs.len())
            // audit:allow(lossy-id-cast): machine index, bounded by `% machines`
            .map(|i| (i % machines) as u32)
            .collect();
        let machine_of_part: Vec<u32> = (0..partition.subgraphs.len())
            // audit:allow(lossy-id-cast): machine index, bounded by `% machines`
            .map(|p| (p % machines) as u32)
            .collect();

        let idx = Self {
            n,
            cfg: *cfg,
            machines,
            partition,
            base,
            hub_rank,
            skeletons,
            machine_of_hub,
            machine_of_part,
        };
        let report = crate::hgpa::OfflineReport {
            per_machine_seconds,
            partition_seconds,
            wall_seconds,
            peak_scratch_bytes,
        };
        (idx, report)
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of graph nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The hub set.
    pub fn hubs(&self) -> &[NodeId] {
        &self.partition.hubs
    }

    /// The flat partition backing this index.
    pub fn partition(&self) -> &FlatPartition {
        &self.partition
    }

    /// PPR configuration used at build time.
    pub fn config(&self) -> &PprConfig {
        &self.cfg
    }

    /// Base (partial) vector of every node, indexed by node id — the
    /// precomputed state the machine replies are assembled from. Exposed
    /// so differential tests can pin builds bit-identical.
    pub fn base_vectors(&self) -> &[SparseVector] {
        &self.base
    }

    /// Skeleton column per hub rank (aligned with [`GpaIndex::hubs`]).
    pub fn skeleton_columns(&self) -> &[SparseVector] {
        &self.skeletons
    }

    /// Machine owning each hub rank.
    pub fn machine_of_hub(&self) -> &[u32] {
        &self.machine_of_hub
    }

    /// Machine owning each part.
    pub fn machine_of_part(&self) -> &[u32] {
        &self.machine_of_part
    }

    /// Total stored entries across machines (base vectors + skeleton
    /// columns) — the space-accounting twin of
    /// [`HgpaIndex::stored_entries`](crate::hgpa::HgpaIndex::stored_entries).
    pub fn stored_entries(&self) -> usize {
        self.base.iter().map(SparseVector::nnz).sum::<usize>()
            + self.skeletons.iter().map(SparseVector::nnz).sum::<usize>()
    }

    /// Reassemble from persisted fields. The loader (`core::persist`)
    /// validates the partition before calling this; `hub_rank` is derived
    /// here from hub order rather than stored.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_persist_parts(
        n: usize,
        cfg: PprConfig,
        machines: usize,
        partition: FlatPartition,
        base: Vec<SparseVector>,
        skeletons: Vec<SparseVector>,
        machine_of_hub: Vec<u32>,
        machine_of_part: Vec<u32>,
    ) -> Self {
        let mut hub_rank = vec![u32::MAX; n];
        for (rank, &h) in partition.hubs.iter().enumerate() {
            // audit:allow(lossy-id-cast): hub rank < n, within the
            // loader-validated u32 node bound
            hub_rank[h as usize] = rank as u32;
        }
        Self {
            n,
            cfg,
            machines,
            partition,
            base,
            hub_rank,
            skeletons,
            machine_of_hub,
            machine_of_part,
        }
    }

    /// Machine that stores node `u`'s base (partial) vector.
    pub fn machine_of_node(&self, u: NodeId) -> u32 {
        match self.partition.part_of[u as usize] {
            Some(p) => self.machine_of_part[p as usize],
            None => self.machine_of_hub[self.hub_rank[u as usize] as usize],
        }
    }

    /// The vector machine `i` sends to the coordinator for query `u`
    /// (Algorithm sketch in §3.1). Dense accumulation, sparsified once.
    pub fn machine_vector(&self, u: NodeId, machine: u32) -> SparseVector {
        self.machine_vector_preference(&[(u, 1.0)], machine)
    }

    /// Machine reply for a weighted preference-set query (linearity).
    pub fn machine_vector_preference(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
    ) -> SparseVector {
        let mut scratch = Scratch::with_len(self.n);
        self.machine_vector_preference_into(preference, machine, &mut scratch)
    }

    /// [`GpaIndex::machine_vector_preference`] accumulating into a
    /// caller-owned [`Scratch`] — bit-identical output, but a fan-out
    /// worker answering many queries pays the O(n) dense allocation once
    /// instead of once per call.
    pub fn machine_vector_preference_into(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
        scratch: &mut Scratch,
    ) -> SparseVector {
        let alpha = self.cfg.alpha;
        scratch.ensure(self.n);
        let (dense, touched) = scratch.parts();

        for &(u, w) in preference {
            for (rank, &h) in self.partition.hubs.iter().enumerate() {
                if self.machine_of_hub[rank] != machine {
                    continue;
                }
                self.accumulate_hub_term(u, w, h, rank, alpha, dense, touched);
            }
            if self.machine_of_node(u) == machine {
                self.base[u as usize].scatter_into(dense, touched, w);
            }
        }
        scratch.harvest()
    }

    /// Exact PPV of `u`, reconstructed centrally (all machines' work in one
    /// pass — what §6.2.9 calls the centralized setting).
    pub fn query(&self, u: NodeId) -> SparseVector {
        self.query_preference(&[(u, 1.0)])
    }

    /// Exact PPV of a weighted preference set (the paper's `P`), by the
    /// Jeh–Widom linearity theorem.
    pub fn query_preference(&self, preference: &[(NodeId, f64)]) -> SparseVector {
        let alpha = self.cfg.alpha;
        let mut dense = vec![0.0f64; self.n];
        let mut touched: Vec<NodeId> = Vec::new();
        for &(u, w) in preference {
            for (rank, &h) in self.partition.hubs.iter().enumerate() {
                self.accumulate_hub_term(u, w, h, rank, alpha, &mut dense, &mut touched);
            }
            self.base[u as usize].scatter_into(&mut dense, &mut touched, w);
        }
        harvest(dense, touched)
    }

    #[allow(clippy::too_many_arguments)]
    fn accumulate_hub_term(
        &self,
        u: NodeId,
        weight: f64,
        h: NodeId,
        rank: usize,
        alpha: f64,
        dense: &mut [f64],
        touched: &mut Vec<NodeId>,
    ) {
        let mut coef = self.skeletons[rank].get(u);
        if h == u {
            coef -= alpha;
        }
        if coef == 0.0 {
            return;
        }
        // Strict partials: p_h(h) = α and no other hub entries, so this
        // scatter writes S_u(h) at coordinate h (the exact PPV there) and
        // Eq. 4's hub term everywhere else. See `jw::JwIndex::query`.
        self.base[h as usize].scatter_into(dense, touched, weight * coef / alpha);
    }

    /// Bytes of precomputed state stored on each machine (the paper's
    /// space-cost metric: maximum over machines, Figure 11).
    pub fn storage_bytes_per_machine(&self) -> Vec<u64> {
        let mut bytes = vec![0u64; self.machines];
        for (rank, &h) in self.partition.hubs.iter().enumerate() {
            let m = self.machine_of_hub[rank] as usize;
            bytes[m] += self.base[h as usize].wire_bytes() + self.skeletons[rank].wire_bytes();
        }
        for (p, part) in self.partition.subgraphs.iter().enumerate() {
            let m = self.machine_of_part[p] as usize;
            for &v in part {
                bytes[m] += self.base[v as usize].wire_bytes();
            }
        }
        bytes
    }
}

/// Sparsify a dense accumulator using its touch list.
pub(crate) fn harvest(dense: Vec<f64>, mut touched: Vec<NodeId>) -> SparseVector {
    touched.sort_unstable();
    touched.dedup();
    SparseVector::from_entries(
        touched
            .into_iter()
            .filter_map(|v| {
                let x = dense[v as usize];
                (x != 0.0).then_some((v, x))
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn sample(n: usize, seed: u64) -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: n,
                depth: 4,
                locality: 0.9,
                ..Default::default()
            },
            seed,
        )
    }

    fn tight() -> PprConfig {
        PprConfig {
            epsilon: 1e-9,
            ..Default::default()
        }
    }

    #[test]
    fn query_matches_dense_oracle() {
        let g = sample(200, 3);
        let idx = GpaIndex::build(&g, &tight(), &GpaBuildOptions::default());
        for u in [0u32, 33, 111, 199] {
            let exact = dense_ppv(&g, u, 0.15);
            let got = idx.query(u);
            for v in 0..200u32 {
                assert!(
                    (exact[v as usize] - got.get(v)).abs() < 1e-5,
                    "u {u} v {v}: {} vs {}",
                    exact[v as usize],
                    got.get(v)
                );
            }
        }
    }

    #[test]
    fn hub_queries_match_too() {
        let g = sample(150, 9);
        let idx = GpaIndex::build(&g, &tight(), &GpaBuildOptions::default());
        let hub = idx.hubs().first().copied().expect("sample has hubs");
        let exact = dense_ppv(&g, hub, 0.15);
        let got = idx.query(hub);
        for v in 0..150u32 {
            assert!((exact[v as usize] - got.get(v)).abs() < 1e-5, "v {v}");
        }
    }

    #[test]
    fn machine_vectors_sum_to_query() {
        let g = sample(180, 5);
        let opts = GpaBuildOptions {
            machines: 3,
            ..Default::default()
        };
        let idx = GpaIndex::build(&g, &tight(), &opts);
        for u in [7u32, 90] {
            let full = idx.query(u);
            let mut sum = SparseVector::new();
            for m in 0..3 {
                sum = sum.add_scaled(&idx.machine_vector(u, m), 1.0);
            }
            for v in 0..180u32 {
                assert!(
                    (full.get(v) - sum.get(v)).abs() < 1e-12,
                    "u {u} v {v}"
                );
            }
        }
    }

    #[test]
    fn each_machine_owns_disjoint_state() {
        let g = sample(160, 8);
        let opts = GpaBuildOptions {
            machines: 4,
            ..Default::default()
        };
        let idx = GpaIndex::build(&g, &tight(), &opts);
        let bytes = idx.storage_bytes_per_machine();
        assert_eq!(bytes.len(), 4);
        assert!(bytes.iter().all(|&b| b > 0), "{bytes:?}");
        // Load balance: no machine holds more than 70% of total.
        let total: u64 = bytes.iter().sum();
        for &b in &bytes {
            assert!(b as f64 <= 0.7 * total as f64, "{bytes:?}");
        }
    }

    #[test]
    fn partial_support_confined_to_subgraph() {
        let g = sample(200, 3);
        let idx = GpaIndex::build(&g, &tight(), &GpaBuildOptions::default());
        for (p, part) in idx.partition.subgraphs.iter().enumerate() {
            for &v in part {
                for (w, _) in idx.base[v as usize].iter() {
                    assert!(
                        idx.partition.part_of[w as usize] == Some(p as u32),
                        "partial of {v} (part {p}) leaks to {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_machine_single_part_degenerates_gracefully() {
        let g = sample(100, 2);
        let opts = GpaBuildOptions {
            subgraphs: 1,
            machines: 1,
            ..Default::default()
        };
        let idx = GpaIndex::build(&g, &tight(), &opts);
        assert!(idx.hubs().is_empty());
        let exact = dense_ppv(&g, 42, 0.15);
        let got = idx.query(42);
        for v in 0..100u32 {
            assert!((exact[v as usize] - got.get(v)).abs() < 1e-6);
        }
    }
}
