#![warn(missing_docs)]

//! Exact Personalized PageRank: kernels, decomposition, and the paper's
//! GPA / HGPA distributed indexes.
//!
//! Module map (paper section in parentheses):
//!
//! * [`sparse`] — the sparse vector type every precomputed object uses.
//! * [`power`] — queue-based power iteration (§1 Eq. 1, Appendix C
//!   Algorithm 2); the baseline and the accuracy reference.
//! * [`push`] — selective expansion (Appendix E.1, Eq. 9) as an
//!   asynchronous residual push; computes **partial vectors** and, with an
//!   empty blocker set, full local PPVs.
//! * [`skeleton`] — the per-hub column iteration (§5.2 Eq. 8, Theorem 6)
//!   in both Jacobi and residual-push forms; computes **hubs skeleton
//!   vectors** one hub at a time, which is what makes the distribution of
//!   §5.2 possible.
//! * [`jw`] — PPV-JW (§2.3): the centralized brute-force decomposition the
//!   distributed algorithms must agree with (Theorem 1).
//! * [`gpa`] — the flat graph-partition algorithm (§3).
//! * [`hgpa`] — the hierarchical, hub-distributed algorithm (§4),
//!   including the `HGPA_ad` truncation variant of §6.2.9.
//! * [`parallel`] — the [`ParallelismMode`] switch (shared with
//!   `ppr-cluster`'s online fan-out) and the timed work pool both offline
//!   builds deal their hub-column / local-PPV work items through.
//! * [`codec`] — varint/delta/zigzag primitives, CRC32, and the
//!   compressed PPV block encoding the storage tier is built on.
//! * [`persist`] — the versioned, checksummed on-disk index format:
//!   save/load for both [`gpa::GpaIndex`] and [`hgpa::HgpaIndex`], so
//!   §5's precomputation is paid once and served from disk thereafter.
//!
//! ## Semantics
//!
//! Everything here follows the tour/linear-system model of §2.1:
//! `r_u = α·x_u + (1-α)·Aᵀ·r_u` with `A` row-substochastic. Mass at a
//! dangling node (or at the virtual node of a subgraph view) is absorbed —
//! the semantics under which the decomposition theorems are exact. The
//! power kernel also offers the dangling policy of Algorithm 2 for
//! comparison; see [`power::DanglingPolicy`].

pub mod codec;
pub mod gpa;
pub mod hgpa;
pub mod incremental;
pub mod jw;
pub mod parallel;
pub mod persist;
pub mod power;
pub mod push;
pub mod skeleton;
pub mod sparse;

pub use parallel::ParallelismMode;
pub use sparse::{Scratch, SparseVector};

/// Shared configuration for all PPV computations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PprConfig {
    /// Teleport (restart) probability α ∈ (0, 1). The paper fixes 0.15.
    pub alpha: f64,
    /// Error tolerance ε: iterative kernels run until per-entry residuals
    /// fall below it (§6.1 uses 1e-4; exactness experiments shrink it).
    pub epsilon: f64,
    /// Safety cap on sweep-style iterations.
    pub max_iterations: u32,
}

impl Default for PprConfig {
    fn default() -> Self {
        Self {
            alpha: 0.15,
            epsilon: 1e-4,
            max_iterations: 10_000,
        }
    }
}

impl PprConfig {
    /// Construct with the paper's defaults and a custom tolerance.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Default::default()
        }
    }

    /// Validate invariants; called by index builders.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "alpha must be in (0,1), got {}",
            self.alpha
        );
        assert!(self.epsilon > 0.0, "epsilon must be positive");
        assert!(self.max_iterations > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PprConfig::default();
        assert_eq!(c.alpha, 0.15);
        assert_eq!(c.epsilon, 1e-4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        PprConfig {
            alpha: 1.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        PprConfig {
            epsilon: 0.0,
            ..Default::default()
        }
        .validate();
    }
}
