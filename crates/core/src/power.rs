//! Power iteration (the paper's Algorithm 2, Appendix C).
//!
//! The reference method every other algorithm is compared against:
//! iterate `r_{k+1} = α·x_q + (1-α)·Aᵀ·r_k` until the per-entry change
//! falls below the tolerance. An active-queue optimisation (exactly the
//! `valuedNodes` queue of Algorithm 2) restricts each sweep to nodes
//! holding mass.

use crate::{PprConfig, SparseVector};
use ppr_graph::{Adjacency, NodeId};

/// What happens to the `(1-α)` continuation mass at a node with no
/// traversable out-edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DanglingPolicy {
    /// Tours end; the mass is absorbed. This is the inverse-P-distance
    /// semantics (§2.1) under which the decomposition theorems are exact,
    /// and the default everywhere in this workspace.
    #[default]
    Absorb,
    /// Algorithm 2's choice: dangling nodes gain a virtual arc back to the
    /// query node, so all mass stays in circulation and the PPV sums to 1
    /// on dangling-free reachable sets.
    RestartToSource,
}

/// Result of a power-iteration run.
#[derive(Clone, Debug)]
pub struct PowerResult {
    /// The converged PPV, dense over the (sub)graph's id space.
    pub ppv: Vec<f64>,
    /// Sweeps executed.
    pub iterations: u32,
    /// Whether the tolerance was met within the iteration cap.
    pub converged: bool,
}

/// Run power iteration for a single preference node `source`.
pub fn power_iteration_full<A: Adjacency>(
    adj: &A,
    source: NodeId,
    cfg: &PprConfig,
    policy: DanglingPolicy,
) -> PowerResult {
    power_iteration_pref(adj, &[(source, 1.0)], cfg, policy)
}

/// Run power iteration for a weighted preference set (weights should sum
/// to 1 for the probabilistic reading, but any non-negative weights work).
pub fn power_iteration_pref<A: Adjacency>(
    adj: &A,
    preference: &[(NodeId, f64)],
    cfg: &PprConfig,
    policy: DanglingPolicy,
) -> PowerResult {
    cfg.validate();
    let n = adj.n();
    let alpha = cfg.alpha;
    let mut cur = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    // r_0 = preference vector (any start converges; this one starts close).
    for &(u, w) in preference {
        cur[u as usize] += w;
    }

    // Active set: nodes with mass, maintained as in Algorithm 2. A stamp
    // array (one epoch per sweep) avoids reallocating a visited set.
    let mut active: Vec<NodeId> = preference.iter().map(|&(u, _)| u).collect();
    let mut stamp = vec![0u32; n];

    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iterations {
        iterations += 1;
        // next = α x_pref
        for &(u, w) in preference {
            next[u as usize] += alpha * w;
        }
        let mut new_active: Vec<NodeId> = preference.iter().map(|&(u, _)| u).collect();
        for &u in &new_active {
            stamp[u as usize] = iterations;
        }

        for &u in &active {
            let mass = cur[u as usize];
            if mass == 0.0 {
                continue;
            }
            let outs = adj.out(u);
            let deg = adj.degree(u);
            if deg == 0 {
                if policy == DanglingPolicy::RestartToSource {
                    // Algorithm 2 lines 14–16: route continuation mass back
                    // to the preference nodes.
                    for &(q, w) in preference {
                        next[q as usize] += (1.0 - alpha) * mass * w;
                        if stamp[q as usize] != iterations {
                            stamp[q as usize] = iterations;
                            new_active.push(q);
                        }
                    }
                }
                continue;
            }
            let share = (1.0 - alpha) * mass / deg as f64;
            for &v in outs {
                next[v as usize] += share;
                if stamp[v as usize] != iterations {
                    stamp[v as usize] = iterations;
                    new_active.push(v);
                }
            }
            // Mass on edges leaving a subgraph view (deg > outs.len()) is
            // absorbed by the virtual node — nothing to do.
        }

        // Convergence: max per-entry change over touched nodes.
        let mut max_diff = 0.0f64;
        for &u in active.iter().chain(new_active.iter()) {
            let d = (next[u as usize] - cur[u as usize]).abs();
            if d > max_diff {
                max_diff = d;
            }
        }

        std::mem::swap(&mut cur, &mut next);
        for &u in &active {
            next[u as usize] = 0.0;
        }
        for &u in &new_active {
            next[u as usize] = 0.0;
        }
        active = new_active;

        if max_diff <= cfg.epsilon {
            converged = true;
            break;
        }
    }

    PowerResult {
        ppv: cur,
        iterations,
        converged,
    }
}

/// Convenience wrapper returning only the dense PPV.
pub fn power_iteration<A: Adjacency>(adj: &A, source: NodeId, cfg: &PprConfig) -> Vec<f64> {
    power_iteration_full(adj, source, cfg, DanglingPolicy::Absorb).ppv
}

/// Global (non-personalized) PageRank: the PPV of the uniform preference
/// vector. Used by the FastPPV baseline's hub selection and handy for
/// applications.
pub fn global_pagerank<A: Adjacency>(adj: &A, cfg: &PprConfig) -> Vec<f64> {
    let n = adj.n();
    if n == 0 {
        return Vec::new();
    }
    let uniform: Vec<(NodeId, f64)> = (0..n as NodeId).map(|v| (v, 1.0 / n as f64)).collect();
    power_iteration_pref(adj, &uniform, cfg, DanglingPolicy::Absorb).ppv
}

/// Sparse convenience wrapper (threshold 0: keep all nonzeros).
pub fn power_iteration_sparse<A: Adjacency>(
    adj: &A,
    source: NodeId,
    cfg: &PprConfig,
) -> SparseVector {
    SparseVector::from_dense(&power_iteration(adj, source, cfg), None, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::csr::from_edges;
    use ppr_graph::dense::dense_ppv;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn tight() -> PprConfig {
        PprConfig {
            epsilon: 1e-12,
            ..Default::default()
        }
    }

    #[test]
    fn matches_dense_on_cycle() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let exact = dense_ppv(&g, 0, 0.15);
        let got = power_iteration(&g, 0, &tight());
        for i in 0..4 {
            assert!((exact[i] - got[i]).abs() < 1e-9, "node {i}");
        }
    }

    #[test]
    fn matches_dense_on_random_graph() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 120,
                ..Default::default()
            },
            5,
        );
        for s in [0u32, 17, 63] {
            let exact = dense_ppv(&g, s, 0.15);
            let got = power_iteration(&g, s, &tight());
            for i in 0..120 {
                assert!((exact[i] - got[i]).abs() < 1e-9, "src {s} node {i}");
            }
        }
    }

    #[test]
    fn absorb_leaks_mass_at_dangling() {
        let g = from_edges(2, &[(0, 1)]); // 1 dangling
        let r = power_iteration(&g, 0, &tight());
        let sum: f64 = r.iter().sum();
        assert!(sum < 1.0);
        assert!((r[1] - 0.15 * 0.85).abs() < 1e-9);
    }

    #[test]
    fn restart_policy_conserves_mass() {
        let g = from_edges(2, &[(0, 1)]);
        let r = power_iteration_full(&g, 0, &tight(), DanglingPolicy::RestartToSource);
        let sum: f64 = r.ppv.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum = {sum}");
        assert!(r.converged);
    }

    #[test]
    fn preference_set_linearity() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let a = power_iteration(&g, 0, &tight());
        let b = power_iteration(&g, 1, &tight());
        let mix =
            power_iteration_pref(&g, &[(0, 0.4), (1, 0.6)], &tight(), DanglingPolicy::Absorb).ppv;
        for i in 0..3 {
            assert!((mix[i] - (0.4 * a[i] + 0.6 * b[i])).abs() < 1e-8);
        }
    }

    #[test]
    fn loose_epsilon_converges_fast() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 300,
                ..Default::default()
            },
            6,
        );
        let res = power_iteration_full(
            &g,
            0,
            &PprConfig {
                epsilon: 1e-2,
                ..Default::default()
            },
            DanglingPolicy::Absorb,
        );
        assert!(res.converged);
        assert!(res.iterations < 40, "iters = {}", res.iterations);
    }

    #[test]
    fn unreachable_nodes_stay_zero() {
        // 0 -> 1; node 2 isolated.
        let g = from_edges(3, &[(0, 1)]);
        let r = power_iteration(&g, 0, &tight());
        assert_eq!(r[2], 0.0);
    }
}
