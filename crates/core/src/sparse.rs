//! Sparse PPV vectors.
//!
//! Precomputed partial vectors, skeleton columns, and query results are all
//! sparse: supports are confined to subgraphs (that is the whole point of
//! hub-based partitioning, §3.2) and tolerance truncation drops tiny
//! entries. The representation is a sorted `(node, value)` array — compact,
//! cache-friendly to scan, and O(log n) to probe, mirroring how the paper
//! ships vectors over the wire (its communication costs are byte counts of
//! exactly these arrays).

use ppr_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Immutable-ish sparse vector with entries sorted by node id.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(NodeId, f64)>,
}

impl SparseVector {
    /// Empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// From unsorted entries; ids must be distinct.
    pub fn from_entries(mut entries: Vec<(NodeId, f64)>) -> Self {
        entries.sort_unstable_by_key(|e| e.0);
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate ids in sparse vector"
        );
        Self { entries }
    }

    /// From a dense slice, keeping entries with `|value| > threshold`.
    /// Node ids are taken from `ids[i]` (pass `None` for identity).
    ///
    /// Survivors are counted in a first pass so the entry vector is
    /// allocated exactly once (bit-identical output, no growth
    /// reallocations on the precompute hot path).
    pub fn from_dense(dense: &[f64], ids: Option<&[NodeId]>, threshold: f64) -> Self {
        let surviving = dense.iter().filter(|v| v.abs() > threshold).count();
        let mut entries = Vec::with_capacity(surviving);
        for (i, &v) in dense.iter().enumerate() {
            if v.abs() > threshold {
                let id = match ids {
                    Some(m) => m[i],
                    None => i as NodeId,
                };
                entries.push((id, v));
            }
        }
        if ids.is_some() {
            entries.sort_unstable_by_key(|e| e.0);
        }
        Self { entries }
    }

    /// Value at `id` (0.0 if absent).
    #[inline]
    pub fn get(&self, id: NodeId) -> f64 {
        match self.entries.binary_search_by_key(&id, |e| e.0) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(id, value)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Sum of values (all PPV vectors are non-negative, so this is the L1
    /// norm as well as the retained probability mass).
    pub fn l1_norm(&self) -> f64 {
        self.entries.iter().map(|e| e.1.abs()).sum()
    }

    /// Largest absolute value.
    pub fn l_inf(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.1.abs())
            .fold(0.0, f64::max)
    }

    /// `self += scale * other`, implemented by merge. Prefer
    /// [`SparseVector::scatter_into`] + a dense accumulator in hot loops.
    pub fn add_scaled(&self, other: &SparseVector, scale: f64) -> SparseVector {
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, b) = (self.entries[i], other.entries[j]);
            match a.0.cmp(&b.0) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((b.0, scale * b.1));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a.0, a.1 + scale * b.1));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        out.extend(other.entries[j..].iter().map(|&(id, v)| (id, scale * v)));
        SparseVector { entries: out }
    }

    /// Accumulate `scale * self` into a dense buffer, recording first
    /// touches in `touched`.
    #[inline]
    pub fn scatter_into(&self, dense: &mut [f64], touched: &mut Vec<NodeId>, scale: f64) {
        for &(id, v) in &self.entries {
            let slot = &mut dense[id as usize];
            if *slot == 0.0 {
                touched.push(id);
            }
            *slot += scale * v;
        }
    }

    /// Sparsify a dense scratch filled by [`SparseVector::scatter_into`]:
    /// sort/dedup `touched`, collect the non-zero entries, and reset both
    /// scratches so the buffers can be reused for the next accumulation.
    /// The one harvest shared by the coordinator sum, query sessions, and
    /// the serving layer — keeping the zero-filtering semantics identical
    /// across every path that must produce bit-identical vectors.
    pub fn harvest_scratch(dense: &mut [f64], touched: &mut Vec<NodeId>) -> SparseVector {
        touched.sort_unstable();
        touched.dedup();
        let mut entries = Vec::with_capacity(touched.len());
        for &v in touched.iter() {
            let x = dense[v as usize];
            if x != 0.0 {
                entries.push((v, x));
            }
            dense[v as usize] = 0.0;
        }
        touched.clear();
        SparseVector { entries }
    }

    /// Top-k entries by value, descending (ties by node id ascending) —
    /// the ranking the paper's Precision/Kendall metrics consume.
    ///
    /// For `k < nnz` this selects over references (quickselect to the
    /// k-th rank, then sorts just the survivors) instead of cloning and
    /// fully sorting the entry vector: O(nnz + k·log k) expected and an
    /// O(k) copy, rather than O(nnz·log nnz) and an O(nnz) clone. The
    /// ranking comparator is a total order (value descending, id
    /// ascending breaks every tie), so the selected set — and hence the
    /// output — is exactly the full sort's prefix;
    /// `top_k_select_equals_reference_sort` in
    /// `tests/invariants_proptest.rs` pins the equivalence against the
    /// old clone-and-sort implementation on random entry sets.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        let rank = |a: &(NodeId, f64), b: &(NodeId, f64)| {
            b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0))
        };
        if k >= self.entries.len() {
            let mut v: Vec<(NodeId, f64)> = self.entries.clone();
            v.sort_unstable_by(rank);
            return v;
        }
        if k == 0 {
            return Vec::new();
        }
        let mut refs: Vec<&(NodeId, f64)> = self.entries.iter().collect();
        refs.select_nth_unstable_by(k - 1, |a, b| rank(a, b));
        refs.truncate(k);
        refs.sort_unstable_by(|a, b| rank(a, b));
        refs.into_iter().copied().collect()
    }

    /// Top-k with a threshold-based early cut: identical output to
    /// [`SparseVector::top_k`] in O(nnz + k·log k·log nnz) expected time
    /// instead of a full O(nnz·log nnz) sort — the serving-path selection.
    ///
    /// A min-heap holds the best `k` entries seen so far under the ranking
    /// "higher value wins, ties broken by smaller node id". Its root is the
    /// running threshold: any later entry with a strictly smaller value —
    /// or an equal value and a larger id — ranks below `k` entries already
    /// held, and the held set only ever improves, so skipping it (the
    /// one-comparison early cut that almost every entry takes) cannot
    /// change the final set. The survivors are sorted with the same
    /// comparator `top_k` uses, hence the results are equal element for
    /// element; `topk_early_cut_equals_full_sort` in `tests/serving.rs`
    /// pins this on proptest-generated graphs.
    pub fn top_k_early_cut(&self, k: usize) -> Vec<(NodeId, f64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        if k == 0 {
            return Vec::new();
        }

        /// Entry ordered so that "greater" means "ranks higher": larger
        /// value first, then smaller node id. Values are compared with
        /// the same IEEE `partial_cmp` `top_k` sorts with (so `-0.0`
        /// ties `0.0` and falls to the id tiebreak; NaN panics in both
        /// paths alike) — using `total_cmp` here would silently rank
        /// `-0.0` below `0.0` and diverge from the full sort.
        #[derive(PartialEq)]
        struct Ranked(NodeId, f64);
        impl Eq for Ranked {}
        impl Ord for Ranked {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.1
                    .partial_cmp(&other.1)
                    .unwrap()
                    .then(other.0.cmp(&self.0))
            }
        }
        impl PartialOrd for Ranked {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
        let mut threshold = f64::NEG_INFINITY;
        for &(id, v) in &self.entries {
            if heap.len() == k {
                // Early cut: strictly below the k-th best value, skip.
                if v < threshold {
                    continue;
                }
                // At the threshold value, only a smaller id can displace.
                let worst = &heap.peek().unwrap().0;
                if v == worst.1 && id > worst.0 {
                    continue;
                }
                heap.pop();
            }
            heap.push(Reverse(Ranked(id, v)));
            if heap.len() == k {
                threshold = heap.peek().unwrap().0 .1;
            }
        }

        let mut out: Vec<(NodeId, f64)> =
            heap.into_iter().map(|Reverse(r)| (r.0, r.1)).collect();
        out.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// Drop entries with `|value| <= threshold` (the HGPA_ad adaptation of
    /// §6.2.9). Returns the number of dropped entries.
    pub fn truncate_below(&mut self, threshold: f64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.1.abs() > threshold);
        before - self.entries.len()
    }

    /// Wire size in bytes under the simulator's serialization model:
    /// 4 bytes node id + 8 bytes f64 per entry, plus an 8-byte length
    /// header (matches how the paper reports communication KB).
    pub fn wire_bytes(&self) -> u64 {
        8 + 12 * self.entries.len() as u64
    }

    /// Dense materialisation of length `n`.
    pub fn to_dense(&self, n: usize) -> Vec<f64> {
        let mut d = vec![0.0; n];
        for &(id, v) in &self.entries {
            d[id as usize] = v;
        }
        d
    }
}

/// A reusable dense-accumulation arena: one zeroed dense buffer plus its
/// touch list, the pair every harvesting path in the workspace threads
/// through [`SparseVector::scatter_into`] / [`SparseVector::harvest_scratch`].
///
/// Query sessions, machine fan-out workers, and the serving layer's
/// response assembly all accumulate sparse vectors densely and sparsify
/// once. Allocating the O(n) dense buffer per query is the dominant
/// constant on small batches, so hot paths hold one `Scratch` per worker
/// and reuse it across calls: [`Scratch::harvest`] returns the buffers to
/// the all-zero state, making reuse free of cross-call contamination.
///
/// Harvest semantics (zero filtering, touch-order independence) are
/// exactly [`SparseVector::harvest_scratch`]'s, so results are
/// bit-identical to a fresh allocation.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    dense: Vec<f64>,
    touched: Vec<NodeId>,
}

impl Scratch {
    /// Empty arena; grows on first [`Scratch::ensure`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Arena pre-sized for vectors over `n` nodes.
    pub fn with_len(n: usize) -> Self {
        Self {
            dense: vec![0.0; n],
            touched: Vec::new(),
        }
    }

    /// Grow the dense buffer to cover `n` nodes (never shrinks). New
    /// slots are zero, matching the harvested-state invariant.
    pub fn ensure(&mut self, n: usize) {
        if self.dense.len() < n {
            self.dense.resize(n, 0.0);
        }
    }

    /// Accumulate `scale * v` into the arena.
    pub fn scatter(&mut self, v: &SparseVector, scale: f64) {
        v.scatter_into(&mut self.dense, &mut self.touched, scale);
    }

    /// Sparsify the accumulated sum and reset the arena to all-zero so
    /// the next accumulation can reuse it.
    pub fn harvest(&mut self) -> SparseVector {
        SparseVector::harvest_scratch(&mut self.dense, &mut self.touched)
    }

    /// The raw `(dense, touched)` pair, for callers (index kernels) that
    /// accumulate through their own inner loops. The caller must record
    /// every first touch in `touched`, as [`SparseVector::scatter_into`]
    /// does, and finish with [`Scratch::harvest`].
    pub fn parts(&mut self) -> (&mut [f64], &mut Vec<NodeId>) {
        (&mut self.dense, &mut self.touched)
    }

    /// Bytes this arena currently holds (dense buffer + touch list) —
    /// the serving/bench peak-scratch accounting.
    pub fn arena_bytes(&self) -> u64 {
        (self.dense.len() * 8 + self.touched.capacity() * 4) as u64
    }
}

impl FromIterator<(NodeId, f64)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (NodeId, f64)>>(iter: T) -> Self {
        Self::from_entries(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_thresholds() {
        let v = SparseVector::from_dense(&[0.5, 0.0, 1e-9, 0.25], None, 1e-6);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(0), 0.5);
        assert_eq!(v.get(2), 0.0);
        assert_eq!(v.get(3), 0.25);
    }

    #[test]
    fn from_dense_with_id_mapping() {
        let v = SparseVector::from_dense(&[0.1, 0.2], Some(&[7, 3]), 0.0);
        assert_eq!(v.get(7), 0.1);
        assert_eq!(v.get(3), 0.2);
        let ids: Vec<_> = v.iter().map(|e| e.0).collect();
        assert_eq!(ids, vec![3, 7]); // sorted after mapping
    }

    #[test]
    fn add_scaled_merges() {
        let a = SparseVector::from_entries(vec![(0, 1.0), (2, 2.0)]);
        let b = SparseVector::from_entries(vec![(1, 1.0), (2, 1.0), (5, 4.0)]);
        let c = a.add_scaled(&b, 0.5);
        assert_eq!(c.get(0), 1.0);
        assert_eq!(c.get(1), 0.5);
        assert_eq!(c.get(2), 2.5);
        assert_eq!(c.get(5), 2.0);
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn scatter_tracks_touched() {
        let a = SparseVector::from_entries(vec![(1, 1.0), (3, 2.0)]);
        let mut dense = vec![0.0; 5];
        let mut touched = Vec::new();
        a.scatter_into(&mut dense, &mut touched, 2.0);
        a.scatter_into(&mut dense, &mut touched, 1.0);
        assert_eq!(dense[1], 3.0);
        assert_eq!(dense[3], 6.0);
        assert_eq!(touched, vec![1, 3]); // second scatter adds no new touches
    }

    #[test]
    fn top_k_orders_by_value() {
        let v = SparseVector::from_entries(vec![(0, 0.1), (1, 0.5), (2, 0.5), (3, 0.3)]);
        let top = v.top_k(3);
        assert_eq!(top, vec![(1, 0.5), (2, 0.5), (3, 0.3)]);
    }

    #[test]
    fn top_k_early_cut_equals_full_sort() {
        // Ties, duplicates, and every k including 0 and > nnz.
        let v = SparseVector::from_entries(vec![
            (0, 0.1),
            (1, 0.5),
            (2, 0.5),
            (3, 0.3),
            (4, 0.5),
            (5, 0.05),
            (6, 0.3),
        ]);
        for k in 0..=9 {
            assert_eq!(v.top_k_early_cut(k), v.top_k(k), "k={k}");
        }
        assert_eq!(SparseVector::new().top_k_early_cut(3), vec![]);
    }

    #[test]
    fn top_k_early_cut_treats_signed_zero_like_full_sort() {
        // -0.0 == 0.0 under the sort's IEEE comparison: the id tiebreak
        // must decide, identically in both selection paths.
        let v = SparseVector::from_entries(vec![(2, -0.0), (3, 0.0), (5, 0.5)]);
        for k in 0..=3 {
            assert_eq!(v.top_k_early_cut(k), v.top_k(k), "k={k}");
        }
    }

    #[test]
    fn truncate_below_drops_small() {
        let mut v = SparseVector::from_entries(vec![(0, 1e-5), (1, 0.5), (2, 2e-4)]);
        let dropped = v.truncate_below(1e-4);
        assert_eq!(dropped, 1);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(0), 0.0);
    }

    #[test]
    fn norms_and_bytes() {
        let v = SparseVector::from_entries(vec![(0, 0.25), (9, 0.5)]);
        assert!((v.l1_norm() - 0.75).abs() < 1e-15);
        assert_eq!(v.l_inf(), 0.5);
        assert_eq!(v.wire_bytes(), 8 + 24);
        assert_eq!(SparseVector::new().wire_bytes(), 8);
    }

    #[test]
    fn dense_roundtrip() {
        let v = SparseVector::from_entries(vec![(1, 0.5), (4, 0.1)]);
        let d = v.to_dense(6);
        let back = SparseVector::from_dense(&d, None, 0.0);
        assert_eq!(back, v);
    }
}
