//! The frame protocol: one [`Message`] per length-prefixed, CRC-sealed
//! frame, encoded with the same `core::codec` primitives (and the same
//! anti-OOM discipline) as the `.pprx` index container.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic "PPRW"
//! 4       1     frame type (one byte per Message variant)
//! 5       4     payload length, u32 LE (capped by the reader's budget)
//! 9       4     CRC-32/IEEE of `type byte || payload`, u32 LE
//! 13      n     payload
//! ```
//!
//! Every frame byte is covered by a check: the magic by comparison, the
//! length by consistency with the bytes actually framed, and the type
//! byte *and* payload by the CRC (sealing the type prevents a corrupted
//! byte from reinterpreting the payload under another variant).
//! The payload length is validated against the reader's frame budget
//! *before* any allocation, the CRC is verified before any decoding, and
//! the decoder must consume the payload exactly — a frame whose length
//! field lies about its content is rejected even when the CRC was
//! re-sealed over the tampered bytes. Inside the payload, id lists are
//! delta-coded LEB128 varints and magnitudes are raw `f64` bits, so a
//! reply round-trips bit-identically — the transport can never perturb
//! an exact answer.
//!
//! [`reply_frame_bytes`] is the **single frame-size formula** shared by
//! the modeled and measured byte accounting: `Cluster` charges a modeled
//! reply with exactly the bytes the socket transport would put on the
//! wire for it (pinned in `tests/socket_cluster.rs`).

use ppr_core::codec::{
    crc32_tagged, read_ids_delta, read_ppv, write_ids_delta, write_ppv, write_varint, CodecError,
    Cursor, Result,
};
use ppr_core::SparseVector;
use ppr_graph::{CsrGraph, EdgeUpdate, GraphDelta, NodeId, NodeUpdate};

/// Frame magic: `b"PPRW"` — "PPR wire".
pub const FRAME_MAGIC: [u8; 4] = *b"PPRW";

/// Fixed bytes before the payload: magic + type + length + CRC.
pub const FRAME_HEADER_BYTES: u64 = 13;

/// Wire-protocol version carried in [`Message::Hello`]; the coordinator
/// refuses workers speaking any other version.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default per-frame byte budget (256 MiB). A header whose length field
/// exceeds the budget is rejected before any allocation — the same
/// lying-length defense the `.pprx` loader applies, adapted to a stream
/// where "bytes remaining" is unknowable.
pub const DEFAULT_MAX_FRAME_BYTES: u64 = 256 << 20;

/// One protocol message. Every variant encodes to exactly one frame.
#[derive(Clone, Debug)]
pub enum Message {
    /// Worker → coordinator, once per connection: identify the machine.
    Hello {
        /// Machine index this worker serves (0-based).
        machine: u32,
        /// Protocol version the worker speaks ([`PROTOCOL_VERSION`]).
        proto: u32,
    },
    /// Coordinator → worker, answering `Hello`: the current epoch and
    /// the graph the worker's index shard must be maintained against.
    Welcome {
        /// Epoch the worker joins at.
        epoch: u64,
        /// Current graph, shipped as per-node delta-coded adjacency.
        graph: CsrGraph,
    },
    /// Coordinator → worker: compute machine PPV contributions for a
    /// fan-out round's source list (request order is answer order).
    Request {
        /// Fan-out round number (echoed by the matching `Reply`).
        round: u64,
        /// Distinct source nodes, in coordinator batch order.
        sources: Vec<NodeId>,
    },
    /// Coordinator → worker: compute one machine contribution for a
    /// weighted preference set (Eq. 7), folded worker-side so the
    /// summation order matches the modeled transport bit for bit.
    RequestPref {
        /// Fan-out round number (echoed by the matching `Reply`).
        round: u64,
        /// `(member, weight)` pairs, in request order.
        pairs: Vec<(NodeId, f64)>,
    },
    /// Worker → coordinator: the machine's partial PPVs for one round.
    Reply {
        /// Round this reply answers.
        round: u64,
        /// Responding machine index.
        machine: u32,
        /// Worker-measured compute seconds (reported, never summed into
        /// any deterministic figure).
        compute_seconds: f64,
        /// One partial vector per requested source (or a single vector
        /// for a `RequestPref`), raw `f64` bits preserved.
        vectors: Vec<SparseVector>,
    },
    /// Coordinator → worker: one epoch barrier's update batch. The
    /// worker applies it through its own maintenance engine (the same
    /// deterministic path as the coordinator) and acks.
    Update {
        /// Epoch this barrier releases.
        epoch: u64,
        /// The batch: node churn plus edge updates.
        delta: GraphDelta,
    },
    /// Worker → coordinator: the barrier was applied and the worker now
    /// serves `epoch`.
    UpdateAck {
        /// Epoch the worker reached.
        epoch: u64,
        /// Acking machine index.
        machine: u32,
    },
    /// Coordinator → worker heartbeat probe.
    Ping {
        /// Probe sequence number (echoed by the matching `Pong`).
        seq: u64,
    },
    /// Worker → coordinator heartbeat answer.
    Pong {
        /// Echo of the probe's sequence number.
        seq: u64,
        /// Responding machine index.
        machine: u32,
        /// Epoch the worker currently serves.
        epoch: u64,
    },
    /// Coordinator → worker: exit cleanly.
    Shutdown,
}

impl PartialEq for Message {
    fn eq(&self, other: &Self) -> bool {
        // `CsrGraph` has no `PartialEq`; Welcome frames compare the
        // graphs structurally (same node count, same edge stream).
        // Everything else is plain field equality — f64 fields compare
        // by bits, because the transport's promise is bit-identity, and
        // NaN-carrying replies must still equal themselves.
        use Message::*;
        match (self, other) {
            (
                Hello { machine, proto },
                Hello {
                    machine: m2,
                    proto: p2,
                },
            ) => machine == m2 && proto == p2,
            (
                Welcome { epoch, graph },
                Welcome {
                    epoch: e2,
                    graph: g2,
                },
            ) => {
                epoch == e2
                    && graph.node_count() == g2.node_count()
                    && graph.edges().eq(g2.edges())
            }
            (
                Request { round, sources },
                Request {
                    round: r2,
                    sources: s2,
                },
            ) => round == r2 && sources == s2,
            (
                RequestPref { round, pairs },
                RequestPref {
                    round: r2,
                    pairs: p2,
                },
            ) => {
                round == r2
                    && pairs.len() == p2.len()
                    && pairs
                        .iter()
                        .zip(p2)
                        .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits())
            }
            (
                Reply {
                    round,
                    machine,
                    compute_seconds,
                    vectors,
                },
                Reply {
                    round: r2,
                    machine: m2,
                    compute_seconds: c2,
                    vectors: v2,
                },
            ) => {
                round == r2
                    && machine == m2
                    && compute_seconds.to_bits() == c2.to_bits()
                    && vectors == v2
            }
            (
                Update { epoch, delta },
                Update {
                    epoch: e2,
                    delta: d2,
                },
            ) => epoch == e2 && delta.nodes == d2.nodes && delta.edges == d2.edges,
            (
                UpdateAck { epoch, machine },
                UpdateAck {
                    epoch: e2,
                    machine: m2,
                },
            ) => epoch == e2 && machine == m2,
            (Ping { seq }, Ping { seq: s2 }) => seq == s2,
            (
                Pong {
                    seq,
                    machine,
                    epoch,
                },
                Pong {
                    seq: s2,
                    machine: m2,
                    epoch: e2,
                },
            ) => seq == s2 && machine == m2 && epoch == e2,
            (Shutdown, Shutdown) => true,
            _ => false,
        }
    }
}

impl Message {
    /// The frame-type byte identifying this variant on the wire.
    pub fn frame_type(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::Welcome { .. } => 2,
            Message::Request { .. } => 3,
            Message::RequestPref { .. } => 4,
            Message::Reply { .. } => 5,
            Message::Update { .. } => 6,
            Message::UpdateAck { .. } => 7,
            Message::Ping { .. } => 8,
            Message::Pong { .. } => 9,
            Message::Shutdown => 10,
        }
    }
}

fn err<T>(message: impl Into<String>) -> Result<T> {
    Err(CodecError::new(message))
}

// --------------------------------------------------------------- encoding

fn encode_payload(msg: &Message, buf: &mut Vec<u8>) -> Result<()> {
    match msg {
        Message::Hello { machine, proto } => {
            write_varint(buf, u64::from(*machine));
            write_varint(buf, u64::from(*proto));
        }
        Message::Welcome { epoch, graph } => {
            buf.extend_from_slice(&epoch.to_le_bytes());
            write_varint(buf, graph.node_count() as u64);
            for v in 0..graph.node_count() {
                let neighbors = graph.out_neighbors(v as NodeId);
                write_varint(buf, neighbors.len() as u64);
                // CSR adjacency is sorted-distinct by construction, so
                // the delta encoder's monotonicity check always passes.
                write_ids_delta(buf, neighbors)?;
            }
        }
        Message::Request { round, sources } => {
            buf.extend_from_slice(&round.to_le_bytes());
            write_varint(buf, sources.len() as u64);
            // Sources keep batch order (it is the reply's vector order),
            // so they are plain varints, not a delta chain.
            for &u in sources {
                write_varint(buf, u64::from(u));
            }
        }
        Message::RequestPref { round, pairs } => {
            buf.extend_from_slice(&round.to_le_bytes());
            write_varint(buf, pairs.len() as u64);
            for &(u, w) in pairs {
                write_varint(buf, u64::from(u));
                buf.extend_from_slice(&w.to_bits().to_le_bytes());
            }
        }
        Message::Reply {
            round,
            machine,
            compute_seconds,
            vectors,
        } => {
            // Round and machine are fixed-width so a reply's size depends
            // only on its vectors — the property that makes
            // `reply_frame_bytes` a pure function of the answer.
            buf.extend_from_slice(&round.to_le_bytes());
            buf.extend_from_slice(&machine.to_le_bytes());
            buf.extend_from_slice(&compute_seconds.to_bits().to_le_bytes());
            write_varint(buf, vectors.len() as u64);
            for v in vectors {
                write_ppv(buf, v)?;
            }
        }
        Message::Update { epoch, delta } => {
            buf.extend_from_slice(&epoch.to_le_bytes());
            write_varint(buf, delta.nodes.len() as u64);
            for n in &delta.nodes {
                match n {
                    NodeUpdate::Add => buf.push(0),
                    NodeUpdate::Remove(u) => {
                        buf.push(1);
                        write_varint(buf, u64::from(*u));
                    }
                }
            }
            write_varint(buf, delta.edges.len() as u64);
            for e in &delta.edges {
                let (tag, (u, v)) = match e {
                    EdgeUpdate::Insert(u, v) => (0u8, (*u, *v)),
                    EdgeUpdate::Remove(u, v) => (1u8, (*u, *v)),
                };
                buf.push(tag);
                write_varint(buf, u64::from(u));
                write_varint(buf, u64::from(v));
            }
        }
        Message::UpdateAck { epoch, machine } => {
            buf.extend_from_slice(&epoch.to_le_bytes());
            write_varint(buf, u64::from(*machine));
        }
        Message::Ping { seq } => buf.extend_from_slice(&seq.to_le_bytes()),
        Message::Pong {
            seq,
            machine,
            epoch,
        } => {
            buf.extend_from_slice(&seq.to_le_bytes());
            write_varint(buf, u64::from(*machine));
            buf.extend_from_slice(&epoch.to_le_bytes());
        }
        Message::Shutdown => {}
    }
    Ok(())
}

/// Encode `msg` as one complete frame (header + payload).
///
/// # Errors
/// Fails only when the message itself violates an encoding invariant
/// (e.g. a reply vector with non-monotone ids) — malformed *input* is
/// the decoder's concern.
pub fn encode_frame(msg: &Message) -> Result<Vec<u8>> {
    let mut payload = Vec::new();
    encode_payload(msg, &mut payload)?;
    if payload.len() as u64 > u64::from(u32::MAX) {
        return err("frame payload exceeds the u32 length field");
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES as usize + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.push(msg.frame_type());
    // audit:allow(lossy-id-cast): length checked against u32::MAX above
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32_tagged(msg.frame_type(), &payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

// --------------------------------------------------------------- decoding

/// A validated frame header.
#[derive(Clone, Copy, Debug)]
pub struct FrameHeader {
    /// Frame-type byte (must match a [`Message`] variant).
    pub frame_type: u8,
    /// Payload length in bytes (already checked against the budget).
    pub payload_len: u32,
    /// CRC-32/IEEE that `type byte || payload` must hash to.
    pub crc: u32,
}

/// Parse and validate the 13 header bytes: magic, known frame type, and
/// a payload length within `max_frame_bytes`. Rejecting the length here
/// — before the payload is read or allocated — is the stream-side
/// anti-OOM gate.
///
/// # Errors
/// Wrong magic, unknown type, or a length beyond the budget.
pub fn decode_header(bytes: &[u8; 13], max_frame_bytes: u64) -> Result<FrameHeader> {
    if bytes[0..4] != FRAME_MAGIC {
        return err("bad frame magic");
    }
    let frame_type = bytes[4];
    if !(1..=10).contains(&frame_type) {
        return err(format!("unknown frame type {frame_type}"));
    }
    let payload_len = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
    if u64::from(payload_len) > max_frame_bytes.saturating_sub(FRAME_HEADER_BYTES) {
        return err(format!(
            "frame length {payload_len} exceeds the {max_frame_bytes}-byte budget"
        ));
    }
    let crc = u32::from_le_bytes([bytes[9], bytes[10], bytes[11], bytes[12]]);
    Ok(FrameHeader {
        frame_type,
        payload_len,
        crc,
    })
}

fn decode_payload(frame_type: u8, payload: &[u8], node_bound: u64) -> Result<Message> {
    let mut cur = Cursor::new(payload);
    let msg = match frame_type {
        1 => {
            let machine = id_u32(cur.varint()?, "machine")?;
            let proto = id_u32(cur.varint()?, "protocol version")?;
            Message::Hello { machine, proto }
        }
        2 => {
            let epoch = cur.u64()?;
            // Each node costs at least its degree varint (1 byte).
            let n = cur.checked_len(1)?;
            let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
            for v in 0..n {
                let degree = cur.checked_len(1)?;
                let neighbors = read_ids_delta(&mut cur, degree, n as u64)?;
                let v = id_u32(v as u64, "node id")?;
                edges.extend(neighbors.into_iter().map(|w| (v, w)));
            }
            Message::Welcome {
                epoch,
                graph: ppr_graph::csr::from_edges(n, &edges),
            }
        }
        3 => {
            let round = cur.u64()?;
            let count = cur.checked_len(1)?;
            let mut sources = Vec::with_capacity(count);
            for _ in 0..count {
                sources.push(bounded_id(cur.varint()?, node_bound)?);
            }
            Message::Request { round, sources }
        }
        4 => {
            let round = cur.u64()?;
            // Each pair costs >= 1 id byte + 8 weight bytes.
            let count = cur.checked_len(9)?;
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let u = bounded_id(cur.varint()?, node_bound)?;
                pairs.push((u, cur.f64_bits()?));
            }
            Message::RequestPref { round, pairs }
        }
        5 => {
            let round = cur.u64()?;
            let machine = cur.u32()?;
            let compute_seconds = cur.f64_bits()?;
            // Each vector costs at least its nnz varint (1 byte).
            let count = cur.checked_len(1)?;
            let mut vectors = Vec::with_capacity(count);
            for _ in 0..count {
                vectors.push(read_ppv(&mut cur, node_bound)?);
            }
            Message::Reply {
                round,
                machine,
                compute_seconds,
                vectors,
            }
        }
        6 => {
            let epoch = cur.u64()?;
            let n_nodes = cur.checked_len(1)?;
            let mut nodes = Vec::with_capacity(n_nodes);
            let mut adds = 0u64;
            for _ in 0..n_nodes {
                match cur.u8()? {
                    0 => {
                        nodes.push(NodeUpdate::Add);
                        adds += 1;
                    }
                    1 => nodes.push(NodeUpdate::Remove(bounded_id(cur.varint()?, node_bound)?)),
                    t => return err(format!("unknown node-update tag {t}")),
                }
            }
            // Edge updates may wire nodes added earlier in this batch.
            let edge_bound = node_bound.saturating_add(adds);
            let n_edges = cur.checked_len(3)?;
            let mut edge_updates = Vec::with_capacity(n_edges);
            for _ in 0..n_edges {
                let tag = cur.u8()?;
                let u = bounded_id(cur.varint()?, edge_bound)?;
                let v = bounded_id(cur.varint()?, edge_bound)?;
                edge_updates.push(match tag {
                    0 => EdgeUpdate::Insert(u, v),
                    1 => EdgeUpdate::Remove(u, v),
                    t => return err(format!("unknown edge-update tag {t}")),
                });
            }
            Message::Update {
                epoch,
                delta: GraphDelta {
                    nodes,
                    edges: edge_updates,
                },
            }
        }
        7 => {
            let epoch = cur.u64()?;
            let machine = id_u32(cur.varint()?, "machine")?;
            Message::UpdateAck { epoch, machine }
        }
        8 => Message::Ping { seq: cur.u64()? },
        9 => {
            let seq = cur.u64()?;
            let machine = id_u32(cur.varint()?, "machine")?;
            let epoch = cur.u64()?;
            Message::Pong {
                seq,
                machine,
                epoch,
            }
        }
        10 => Message::Shutdown,
        t => return err(format!("unknown frame type {t}")),
    };
    if !cur.is_empty() {
        // A re-sealed CRC cannot smuggle trailing garbage past this.
        return err(format!(
            "{} trailing bytes after frame payload",
            cur.remaining()
        ));
    }
    Ok(msg)
}

fn id_u32(x: u64, what: &str) -> Result<u32> {
    u32::try_from(x).map_err(|_| CodecError::new(format!("{what} {x} exceeds u32")))
}

fn bounded_id(x: u64, bound: u64) -> Result<NodeId> {
    if x >= bound {
        return err(format!("id {x} out of bounds (node count {bound})"));
    }
    id_u32(x, "node id")
}

/// Decode one complete frame (header + payload), verifying the CRC and
/// that the payload is consumed exactly. `node_bound` caps every node id
/// in the payload; `max_frame_bytes` caps the declared length.
///
/// # Errors
/// Any malformed byte: wrong magic, unknown type, lying length, CRC
/// mismatch, truncation, out-of-bounds ids, non-monotone id chains, or
/// trailing payload bytes. Never panics, never allocates past the budget.
pub fn decode_frame(bytes: &[u8], node_bound: u64, max_frame_bytes: u64) -> Result<Message> {
    if bytes.len() < FRAME_HEADER_BYTES as usize {
        return err(format!("frame truncated at {} header bytes", bytes.len()));
    }
    let mut header = [0u8; 13];
    header.copy_from_slice(&bytes[..13]);
    let h = decode_header(&header, max_frame_bytes)?;
    let payload = &bytes[13..];
    if payload.len() != h.payload_len as usize {
        return err(format!(
            "frame length field says {} payload bytes, got {}",
            h.payload_len,
            payload.len()
        ));
    }
    if crc32_tagged(h.frame_type, payload) != h.crc {
        return err("frame CRC mismatch");
    }
    decode_payload(h.frame_type, payload, node_bound)
}

// ------------------------------------------------------- the size formula

/// Encoded size of a LEB128 varint.
pub fn varint_len(x: u64) -> u64 {
    (64 - x.max(1).leading_zeros() as u64).div_ceil(7)
}

/// Encoded payload size of one PPV block ([`write_ppv`] layout): nnz
/// varint + delta-coded ids + 8 raw bytes per magnitude.
pub fn ppv_payload_bytes(v: &SparseVector) -> u64 {
    let mut bytes = varint_len(v.nnz() as u64) + 8 * v.nnz() as u64;
    let mut prev: Option<NodeId> = None;
    for (id, _) in v.iter() {
        bytes += match prev {
            None => varint_len(u64::from(id)),
            Some(p) => varint_len(u64::from(id.saturating_sub(p))),
        };
        prev = Some(id);
    }
    bytes
}

/// Exact on-wire size of the [`Message::Reply`] frame carrying
/// `vectors` — **the** frame-size formula: the modeled transport charges
/// a machine's reply with this, and the socket transport measures
/// exactly this many bytes for it (pinned by `frame_formula_is_exact`
/// below and `tests/socket_cluster.rs`). Fixed-width round/machine
/// fields keep it a pure function of the answer.
pub fn reply_frame_bytes(vectors: &[SparseVector]) -> u64 {
    let payload = 8 // round
        + 4 // machine
        + 8 // compute_seconds
        + varint_len(vectors.len() as u64)
        + vectors.iter().map(ppv_payload_bytes).sum::<u64>();
    FRAME_HEADER_BYTES + payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_core::sparse::SparseVector;

    fn sample_vectors() -> Vec<SparseVector> {
        vec![
            SparseVector::from_entries(vec![(0, 0.5), (3, 0.25), (700, 1e-9)]),
            SparseVector::from_entries(vec![]),
            SparseVector::from_entries(vec![(999, f64::MIN_POSITIVE)]),
        ]
    }

    fn roundtrip(msg: &Message, bound: u64) -> Message {
        let frame = encode_frame(msg).expect("encode");
        decode_frame(&frame, bound, DEFAULT_MAX_FRAME_BYTES).expect("decode")
    }

    #[test]
    fn all_variants_roundtrip() {
        let graph = ppr_graph::csr::from_edges(4, &[(0, 1), (1, 2), (1, 3), (3, 0)]);
        let msgs = vec![
            Message::Hello {
                machine: 3,
                proto: PROTOCOL_VERSION,
            },
            Message::Welcome { epoch: 9, graph },
            Message::Request {
                round: 7,
                sources: vec![999, 0, 17],
            },
            Message::RequestPref {
                round: 8,
                pairs: vec![(4, 0.75), (900, 0.25)],
            },
            Message::Reply {
                round: 7,
                machine: 2,
                compute_seconds: 1.5e-3,
                vectors: sample_vectors(),
            },
            Message::Update {
                epoch: 3,
                delta: GraphDelta {
                    nodes: vec![NodeUpdate::Add, NodeUpdate::Remove(5)],
                    edges: vec![EdgeUpdate::Insert(1, 1000), EdgeUpdate::Remove(2, 3)],
                },
            },
            Message::UpdateAck {
                epoch: 3,
                machine: 1,
            },
            Message::Ping { seq: 42 },
            Message::Pong {
                seq: 42,
                machine: 1,
                epoch: 3,
            },
            Message::Shutdown,
        ];
        for msg in msgs {
            assert_eq!(roundtrip(&msg, 1000), msg);
        }
    }

    #[test]
    fn reply_preserves_f64_bits() {
        let v = SparseVector::from_entries(vec![(1, -0.0), (2, f64::NAN), (3, 1e-300)]);
        let msg = Message::Reply {
            round: 0,
            machine: 0,
            compute_seconds: 0.0,
            vectors: vec![v.clone()],
        };
        let Message::Reply { vectors, .. } = roundtrip(&msg, 10) else {
            panic!("variant changed in roundtrip");
        };
        let got: Vec<(NodeId, u64)> = vectors[0].iter().map(|(i, x)| (i, x.to_bits())).collect();
        let want: Vec<(NodeId, u64)> = v.iter().map(|(i, x)| (i, x.to_bits())).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn frame_formula_is_exact() {
        for vectors in [sample_vectors(), vec![], vec![SparseVector::default()]] {
            let msg = Message::Reply {
                round: u64::MAX,
                machine: u32::MAX,
                compute_seconds: 123.456,
                vectors: vectors.clone(),
            };
            let frame = encode_frame(&msg).expect("encode");
            assert_eq!(
                frame.len() as u64,
                reply_frame_bytes(&vectors),
                "formula must equal the encoded frame size"
            );
        }
    }

    #[test]
    fn varint_len_matches_encoder() {
        for x in [0u64, 1, 127, 128, 16_383, 16_384, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, x);
            assert_eq!(varint_len(x), buf.len() as u64, "x = {x}");
        }
    }

    #[test]
    fn ids_out_of_bound_are_rejected() {
        let msg = Message::Request {
            round: 0,
            sources: vec![10],
        };
        let frame = encode_frame(&msg).expect("encode");
        assert!(decode_frame(&frame, 10, DEFAULT_MAX_FRAME_BYTES).is_err());
        assert!(decode_frame(&frame, 11, DEFAULT_MAX_FRAME_BYTES).is_ok());
    }

    #[test]
    fn oversized_length_field_is_rejected_before_allocation() {
        let msg = Message::Ping { seq: 1 };
        let mut frame = encode_frame(&msg).expect("encode");
        // Claim a 2 GiB payload; the header gate must refuse it long
        // before anyone tries to read or allocate that much.
        frame[5..9].copy_from_slice(&(2u32 << 30).to_le_bytes());
        let err = decode_frame(&frame, 10, DEFAULT_MAX_FRAME_BYTES).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn update_may_reference_nodes_added_in_batch() {
        let msg = Message::Update {
            epoch: 1,
            delta: GraphDelta {
                nodes: vec![NodeUpdate::Add],
                edges: vec![EdgeUpdate::Insert(3, 4)], // 4 == the added node
            },
        };
        let frame = encode_frame(&msg).expect("encode");
        assert_eq!(
            decode_frame(&frame, 4, DEFAULT_MAX_FRAME_BYTES).expect("in-batch add is in bounds"),
            msg
        );
    }
}
