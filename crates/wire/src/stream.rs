//! Deadline-carrying framed socket IO.
//!
//! [`FramedStream`] is the **only** place in the workspace that reads or
//! writes a raw socket: every operation re-arms the OS-level
//! `set_read_timeout` / `set_write_timeout` deadline in the same
//! function that performs the IO, which is exactly what the `blocking-io`
//! audit rule checks for. A peer that stalls mid-frame surfaces as an
//! `Err(WouldBlock | TimedOut)` within one deadline — never a hang — and
//! the caller (the supervisor or the worker loop) decides whether that
//! means retry, restart, or degrade.
//!
//! The stream also keeps the measured byte/frame counters the bench
//! layer reports next to the paper's modeled network column.

use crate::frame::{
    decode_header, decode_frame, encode_frame, Message, DEFAULT_MAX_FRAME_BYTES,
    FRAME_HEADER_BYTES,
};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Measured IO counters of one [`FramedStream`] (or, summed by the
/// supervisor, of a whole cluster).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Bytes written to the socket (headers included).
    pub bytes_sent: u64,
    /// Bytes read from the socket (headers included).
    pub bytes_received: u64,
    /// Frames written.
    pub frames_sent: u64,
    /// Frames read.
    pub frames_received: u64,
}

impl WireMetrics {
    /// Accumulate another counter set into this one.
    pub fn absorb(&mut self, other: &WireMetrics) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
    }
}

/// One frame-oriented connection over a `TcpStream`.
pub struct FramedStream {
    stream: TcpStream,
    deadline: Duration,
    max_frame_bytes: u64,
    metrics: WireMetrics,
}

impl FramedStream {
    /// Wrap `stream`; every subsequent read and write carries `deadline`.
    pub fn new(stream: TcpStream, deadline: Duration) -> Self {
        Self {
            stream,
            // A zero Duration means "no timeout" to the OS — the one
            // value that could reintroduce an unbounded block — so it is
            // clamped to a real deadline instead.
            deadline: deadline.max(Duration::from_millis(1)),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            metrics: WireMetrics::default(),
        }
    }

    /// Replace the per-operation IO deadline.
    pub fn set_deadline(&mut self, deadline: Duration) {
        self.deadline = deadline.max(Duration::from_millis(1));
    }

    /// Replace the per-frame byte budget.
    pub fn set_max_frame_bytes(&mut self, budget: u64) {
        self.max_frame_bytes = budget;
    }

    /// Measured IO counters so far.
    pub fn metrics(&self) -> &WireMetrics {
        &self.metrics
    }

    /// Encode and write one frame under the write deadline, returning its
    /// on-wire size.
    ///
    /// # Errors
    /// Encoding failures surface as `InvalidData`; a peer that stops
    /// draining surfaces as the OS timeout error within one deadline.
    pub fn send(&mut self, msg: &Message) -> io::Result<u64> {
        let frame = encode_frame(msg)?;
        self.stream.set_write_timeout(Some(self.deadline))?;
        self.stream.write_all(&frame)?;
        self.metrics.bytes_sent += frame.len() as u64;
        self.metrics.frames_sent += 1;
        Ok(frame.len() as u64)
    }

    /// Write raw bytes under the write deadline, bypassing the frame
    /// encoder. Fault-injection support: chaos workers use it to put
    /// deliberately malformed frames on the wire so corruption tests can
    /// exercise the coordinator's decode path end to end.
    ///
    /// # Errors
    /// The OS timeout error when the peer stops draining.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.set_write_timeout(Some(self.deadline))?;
        self.stream.write_all(bytes)?;
        self.metrics.bytes_sent += bytes.len() as u64;
        Ok(())
    }

    /// Read one frame under the read deadline and decode it with
    /// `node_bound` capping every id. Returns the message and its
    /// on-wire size.
    ///
    /// # Errors
    /// `UnexpectedEof` when the peer closed; the OS timeout error when it
    /// stalled; `InvalidData` for any malformed frame (bad magic, lying
    /// length, CRC mismatch, out-of-bounds ids, trailing bytes).
    pub fn recv(&mut self, node_bound: u64) -> io::Result<(Message, u64)> {
        self.stream.set_read_timeout(Some(self.deadline))?;
        let mut header = [0u8; FRAME_HEADER_BYTES as usize];
        self.stream.read_exact(&mut header)?;
        // Validate before allocating: a lying length field dies here.
        let h = decode_header(&header, self.max_frame_bytes)?;
        let mut frame = Vec::with_capacity(header.len() + h.payload_len as usize);
        frame.extend_from_slice(&header);
        frame.resize(header.len() + h.payload_len as usize, 0);
        self.stream.read_exact(&mut frame[header.len()..])?;
        let msg = decode_frame(&frame, node_bound, self.max_frame_bytes)?;
        self.metrics.bytes_received += frame.len() as u64;
        self.metrics.frames_received += 1;
        Ok((msg, frame.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (FramedStream, FramedStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (
            FramedStream::new(a, Duration::from_secs(5)),
            FramedStream::new(b, Duration::from_secs(5)),
        )
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let (mut a, mut b) = pair();
        let sent = a.send(&Message::Ping { seq: 7 }).expect("send");
        let (msg, received) = b.recv(1).expect("recv");
        assert_eq!(msg, Message::Ping { seq: 7 });
        assert_eq!(sent, received);
        assert_eq!(a.metrics().bytes_sent, b.metrics().bytes_received);
        assert_eq!(a.metrics().frames_sent, 1);
    }

    #[test]
    fn a_stalled_peer_times_out_instead_of_hanging() {
        let (mut a, _b) = pair();
        a.set_deadline(Duration::from_millis(30));
        let err = a.recv(1).expect_err("nothing was sent");
        assert!(
            matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut),
            "unexpected error kind: {err:?}"
        );
    }

    #[test]
    fn a_closed_peer_is_eof_not_a_hang() {
        let (mut a, b) = pair();
        drop(b);
        let err = a.recv(1).expect_err("peer closed");
        // Linux reports a closed peer as EOF (or a reset, depending on
        // timing); both are hard errors the supervisor treats as a crash.
        assert!(err.kind() != io::ErrorKind::WouldBlock, "{err:?}");
    }

    #[test]
    fn garbage_on_the_wire_is_invalid_data() {
        let (mut a, mut b) = pair();
        // Hand-written garbage with a valid length so the read completes.
        a.send(&Message::Ping { seq: 1 }).expect("send");
        let (_, _) = b.recv(1).expect("good frame first");
        {
            use std::io::Write as _;
            let inner = &mut a.stream;
            inner.set_write_timeout(Some(Duration::from_secs(1))).unwrap();
            inner.write_all(b"XXXXYYYYZZZZQ").unwrap();
        }
        let err = b.recv(1).expect_err("bad magic");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
