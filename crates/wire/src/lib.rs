#![deny(missing_docs)]

//! Wire layer for the real multi-process PPR cluster.
//!
//! The paper's experiments run on the *modeled* transport — a virtual
//! clock and a byte-accounted `NetworkModel` stand-in — which
//! reproduces figures deterministically but never
//! crosses a process boundary. This crate is the boundary: a compact
//! binary frame protocol ([`frame`]) built on the same `core::codec`
//! primitives as the `.pprx` index container (LEB128 varints,
//! delta-coded id lists, raw `f64` bits, CRC-32 per frame,
//! length-prefixed with byte-budget checks), and deadline-carrying
//! framed socket IO ([`stream`]) for the coordinator supervisor and the
//! worker processes in `ppr-cluster` / `ppr-serve`.
//!
//! Design rules, in order:
//!
//! 1. **Bit-identity is non-negotiable.** Replies carry raw `f64` bit
//!    patterns; the socket transport must answer exactly what the
//!    modeled transport answers (pinned in `tests/socket_cluster.rs`).
//! 2. **Malformed input is an `Err`, never a panic or an OOM** — the
//!    `.pprx` loader's discipline, applied per frame (pinned in
//!    `tests/wire_corruption.rs`).
//! 3. **Every socket read and write carries a deadline**, enforced by
//!    the `blocking-io` audit rule: a dead or wedged peer costs one
//!    timeout, not a hang.
//! 4. **One frame-size formula** ([`frame::reply_frame_bytes`]) serves
//!    both the modeled byte accounting and the measured wire counters,
//!    so the two columns in the serving report are directly comparable.

pub mod frame;
pub mod stream;

pub use frame::{
    decode_frame, encode_frame, reply_frame_bytes, Message, DEFAULT_MAX_FRAME_BYTES,
    FRAME_HEADER_BYTES, PROTOCOL_VERSION,
};
pub use stream::{FramedStream, WireMetrics};
