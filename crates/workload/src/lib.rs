#![deny(missing_docs)]

//! Synthetic stand-ins for the paper's five datasets, plus query workloads.
//!
//! The paper evaluates on SNAP Email, Google Web, Youtube, the Common
//! Crawl PLD hyperlink graph, and a Meetup crawl (§6.1, Table 6). Those
//! crawls are not shipped here; each [`Dataset`] instead parameterises the
//! hierarchical-SBM generator to match the *structural* features the
//! algorithms are sensitive to — community depth (separator size), degree
//! skew, reciprocity (web vs social), and density — at roughly 1–3% of
//! the original node counts so the full experiment suite runs on one
//! machine. The scale-down is uniform across all competing algorithms, so
//! the figures' comparative shapes survive; see DESIGN.md §3.
//!
//! Every generator call is seeded: a dataset name always produces the
//! identical graph.

use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
use ppr_graph::{node_id, CsrGraph, EdgeUpdate, GraphDelta, NodeId, NodeUpdate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Named dataset stand-ins (paper §6.1 + Table 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Email-EuAll: 265k nodes, 420k edges — sparse, many dangling nodes.
    Email,
    /// web-Google: 876k nodes, 5.1M edges — crawl with strong locality.
    Web,
    /// com-Youtube: 1.13M nodes, 3.0M edges — social, high reciprocity.
    Youtube,
    /// PLD sample: 3M nodes, 18.2M edges — domain-level hyperlink graph.
    Pld,
    /// PLD_full: 101M nodes, 1.94B edges (Appendix B) — largest stand-in.
    PldFull,
    /// Meetup event graphs M1–M5 (Table 6) — dense social graphs of
    /// increasing size; `Meetup(1)` through `Meetup(5)`.
    Meetup(u8),
}

/// Generator recipe + provenance for one dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Paper-facing name (matches the figures' axis labels).
    pub name: &'static str,
    /// Original graph size in the paper.
    pub paper_nodes: usize,
    /// Original edge count in the paper.
    pub paper_edges: usize,
    /// Generator configuration for the scaled stand-in.
    pub config: HsbmConfig,
    /// Generator seed.
    pub seed: u64,
}

impl Dataset {
    /// All non-Meetup datasets (the paper's main table).
    pub const MAIN: [Dataset; 4] = [Dataset::Email, Dataset::Web, Dataset::Youtube, Dataset::Pld];

    /// The Meetup scalability series M1–M5 (§6.2.7).
    pub fn meetup_series() -> Vec<Dataset> {
        (1..=5).map(Dataset::Meetup).collect()
    }

    /// The generator recipe for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Email => DatasetSpec {
                name: "Email",
                paper_nodes: 265_214,
                paper_edges: 420_045,
                config: HsbmConfig {
                    nodes: 6_000,
                    depth: 6,
                    min_degree: 1,
                    max_degree: 60,
                    degree_exponent: 2.4,
                    locality: 0.88,
                    reciprocity: 0.2,
                    noise: 0.06,
                },
                seed: 0xE3A1,
            },
            Dataset::Web => DatasetSpec {
                name: "Web",
                paper_nodes: 875_713,
                paper_edges: 5_105_039,
                config: HsbmConfig {
                    nodes: 10_000,
                    depth: 7,
                    min_degree: 2,
                    max_degree: 200,
                    degree_exponent: 2.1,
                    locality: 0.92,
                    reciprocity: 0.1,
                    noise: 0.04,
                },
                seed: 0x3EB0,
            },
            Dataset::Youtube => DatasetSpec {
                name: "Youtube",
                paper_nodes: 1_134_890,
                paper_edges: 2_987_624,
                config: HsbmConfig {
                    nodes: 12_000,
                    depth: 7,
                    min_degree: 1,
                    max_degree: 150,
                    degree_exponent: 2.2,
                    locality: 0.9,
                    reciprocity: 0.5,
                    noise: 0.05,
                },
                seed: 0x707B,
            },
            Dataset::Pld => DatasetSpec {
                name: "PLD",
                paper_nodes: 3_000_000,
                paper_edges: 18_185_350,
                config: HsbmConfig {
                    nodes: 16_000,
                    depth: 8,
                    min_degree: 2,
                    max_degree: 300,
                    degree_exponent: 2.05,
                    locality: 0.93,
                    reciprocity: 0.15,
                    noise: 0.04,
                },
                seed: 0x91D0,
            },
            Dataset::PldFull => DatasetSpec {
                name: "PLD_full",
                paper_nodes: 101_000_000,
                paper_edges: 1_940_000_000,
                config: HsbmConfig {
                    nodes: 30_000,
                    depth: 9,
                    min_degree: 3,
                    max_degree: 400,
                    degree_exponent: 2.0,
                    locality: 0.94,
                    reciprocity: 0.15,
                    noise: 0.04,
                },
                seed: 0x91D1,
            },
            Dataset::Meetup(i) => {
                assert!((1..=5).contains(&i), "Meetup graphs are M1..M5");
                // Table 6: ~1.0M..1.8M nodes, 83M..194M edges (avg deg
                // 83–108). Scaled: 3k..5.4k nodes at avg degree ~25.
                let paper = [
                    (997_304, 82_966_338),
                    (1_197_009, 107_393_088),
                    (1_396_054, 129_774_158),
                    (1_596_455, 163_320_390),
                    (1_796_226, 194_083_414),
                ][(i - 1) as usize];
                static NAMES: [&str; 5] = ["M1", "M2", "M3", "M4", "M5"];
                DatasetSpec {
                    name: NAMES[(i - 1) as usize],
                    paper_nodes: paper.0,
                    paper_edges: paper.1,
                    config: HsbmConfig {
                        nodes: 3_000 + 600 * (i as usize - 1),
                        depth: 6,
                        min_degree: 8,
                        max_degree: 200,
                        degree_exponent: 1.9,
                        locality: 0.93,
                        reciprocity: 0.6,
                        noise: 0.05,
                    },
                    seed: 0x3EE7 + i as u64,
                }
            }
        }
    }

    /// Generate the scaled stand-in graph (deterministic).
    pub fn generate(self) -> CsrGraph {
        let spec = self.spec();
        hierarchical_sbm(&spec.config, spec.seed)
    }

    /// Generate at a custom node count (keeps all shape parameters; used
    /// by quick tests and by benches that need smaller instances).
    pub fn generate_with_nodes(self, nodes: usize) -> CsrGraph {
        let spec = self.spec();
        hierarchical_sbm(
            &HsbmConfig {
                nodes,
                ..spec.config
            },
            spec.seed,
        )
    }

    /// Paper-facing name.
    pub fn name(self) -> &'static str {
        self.spec().name
    }
}

/// Zipf-skewed query stream for the serving workload.
///
/// The paper's experiments query uniformly random nodes (§6.1); a serving
/// system instead sees heavy-tailed popularity — search and
/// recommendation traffic concentrates on a small set of hot entities.
/// This stream ranks the graph's queryable nodes (out-degree > 0) by
/// out-degree descending (popular content is usually well-connected) and
/// samples rank `r` with probability ∝ 1/(r+1)^s. Exponent `s = 0` is
/// uniform; `s ≈ 1` is classic web/query skew; larger `s` concentrates
/// harder and makes caches hotter.
///
/// Sampling is by binary search over the precomputed CDF — O(log n) per
/// query — and fully deterministic for a given `(graph, exponent, seed)`.
pub struct ZipfQueryStream {
    nodes: Vec<NodeId>,
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfQueryStream {
    /// Build a stream over `g`'s queryable nodes. Panics if the graph has
    /// no node with out-edges or if `exponent` is negative/non-finite.
    pub fn new(g: &CsrGraph, exponent: f64, seed: u64) -> Self {
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "Zipf exponent must be finite and non-negative, got {exponent}"
        );
        let mut nodes: Vec<NodeId> = (0..g.node_count() as NodeId)
            .filter(|&v| g.out_degree(v) > 0)
            .collect();
        assert!(!nodes.is_empty(), "graph has no queryable node");
        // Popularity rank: out-degree descending, ties by id for
        // determinism.
        nodes.sort_unstable_by(|&a, &b| {
            g.out_degree(b).cmp(&g.out_degree(a)).then(a.cmp(&b))
        });
        let mut cdf = Vec::with_capacity(nodes.len());
        let mut acc = 0.0f64;
        for rank in 0..nodes.len() {
            acc += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        Self {
            nodes,
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of distinct queryable nodes.
    pub fn support(&self) -> usize {
        self.nodes.len()
    }

    /// Draw the next query source.
    pub fn next_query(&mut self) -> NodeId {
        let total = *self.cdf.last().expect("non-empty support");
        let x = self.rng.random_range(0.0..total);
        let rank = self.cdf.partition_point(|&c| c <= x);
        self.nodes[rank.min(self.nodes.len() - 1)]
    }

    /// Draw `count` query sources.
    pub fn take(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.next_query()).collect()
    }
}

/// One event of a mixed read/write workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MixedEvent {
    /// A PPV query for this source node.
    Query(NodeId),
    /// A batch of edge updates to apply before serving further queries.
    Update(Vec<EdgeUpdate>),
    /// A node-churn batch (node addition/removal plus any wiring edges)
    /// to apply before serving further queries.
    Churn(GraphDelta),
}

/// Knobs of the [`MixedStream`] generator.
#[derive(Clone, Copy, Debug)]
pub struct MixedStreamConfig {
    /// Probability that the next event is an update batch (vs a query).
    pub update_rate: f64,
    /// Edge updates per update batch (batches may come out smaller when
    /// the generator runs out of valid candidates).
    pub updates_per_batch: usize,
    /// Probability that a single update is an insertion (vs a removal).
    pub insert_fraction: f64,
    /// Zipf exponent of the query side (see [`ZipfQueryStream`]).
    pub zipf_exponent: f64,
    /// Probability that the next event is a node-churn batch
    /// ([`MixedEvent::Churn`]): a node addition (wired to the live graph
    /// with one out- and one in-edge) or a node removal (dropping its
    /// incident edges). `0.0` (the default) emits no churn events and
    /// leaves the stream byte-identical to a churn-free generator.
    pub churn_rate: f64,
}

impl Default for MixedStreamConfig {
    fn default() -> Self {
        Self {
            update_rate: 0.05,
            updates_per_batch: 4,
            insert_fraction: 0.5,
            zipf_exponent: 1.1,
            churn_rate: 0.0,
        }
    }
}

/// Mixed read/write stream: Zipf-skewed queries interleaved with seeded
/// edge-update batches — the workload a *dynamic* serving system faces.
///
/// The generator tracks the evolving edge set itself, so every emitted
/// update is valid against the graph state produced by all earlier
/// events: insertions never duplicate a live edge or create a self-loop,
/// and removals never take a node's **last** out-edge (queryable nodes
/// must stay queryable — PPR denominators are out-degrees). With a
/// non-zero [`MixedStreamConfig::churn_rate`] the node set itself evolves
/// too: added nodes extend the dense id space and are wired into the live
/// graph, removed nodes become tombstones (their incident edges drop),
/// and node removal always leaves at least one queryable node behind.
/// Queries rank popularity on the *initial* graph, matching how real
/// traffic skew shifts far slower than the edge set churns; draws that
/// land on a node the churn killed (or orphaned) are redrawn. Fully
/// deterministic for a given `(graph, config, seed)`.
pub struct MixedStream {
    zipf: ZipfQueryStream,
    /// Live edge list (swap-remove order) + membership set + out-degrees,
    /// kept in lockstep with the emitted updates. Indexed by the evolving
    /// dense id space (grows under node churn).
    edges: Vec<(NodeId, NodeId)>,
    edge_set: std::collections::HashSet<(NodeId, NodeId)>,
    out_degree: Vec<u32>,
    /// Liveness per id: `false` marks tombstones of removed nodes.
    live: Vec<bool>,
    cfg: MixedStreamConfig,
    rng: StdRng,
}

impl MixedStream {
    /// Build a stream starting from `g`. Panics on invalid probabilities
    /// or (via [`ZipfQueryStream`]) a graph with no queryable node.
    pub fn new(g: &CsrGraph, cfg: MixedStreamConfig, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.update_rate),
            "update_rate must be a probability, got {}",
            cfg.update_rate
        );
        assert!(
            (0.0..=1.0).contains(&cfg.insert_fraction),
            "insert_fraction must be a probability, got {}",
            cfg.insert_fraction
        );
        assert!(
            (0.0..=1.0).contains(&cfg.churn_rate),
            "churn_rate must be a probability, got {}",
            cfg.churn_rate
        );
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        let edge_set = edges.iter().copied().collect();
        let out_degree = (0..g.node_count() as NodeId).map(|v| g.out_degree(v)).collect();
        Self {
            zipf: ZipfQueryStream::new(g, cfg.zipf_exponent, seed),
            edges,
            edge_set,
            out_degree,
            live: vec![true; g.node_count()],
            cfg,
            rng: StdRng::seed_from_u64(seed ^ 0x5EED_ED6E),
        }
    }

    /// Number of live edges in the tracked graph state.
    pub fn live_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of ids in the tracked (dense, tombstone-inclusive) space.
    pub fn node_ids(&self) -> usize {
        self.live.len()
    }

    /// Draw the next event.
    pub fn next_event(&mut self) -> MixedEvent {
        // The churn draw is guarded so a zero churn rate consumes no
        // randomness: churn-free streams are byte-identical to the
        // pre-churn generator.
        if self.cfg.churn_rate > 0.0 && self.rng.random_bool(self.cfg.churn_rate) {
            return MixedEvent::Churn(self.next_churn_batch());
        }
        if self.rng.random_bool(self.cfg.update_rate) {
            MixedEvent::Update(self.next_update_batch())
        } else {
            MixedEvent::Query(self.next_query())
        }
    }

    /// Draw `count` events.
    pub fn take(&mut self, count: usize) -> Vec<MixedEvent> {
        (0..count).map(|_| self.next_event()).collect()
    }

    fn next_update_batch(&mut self) -> Vec<EdgeUpdate> {
        let mut batch = Vec::with_capacity(self.cfg.updates_per_batch);
        for _ in 0..self.cfg.updates_per_batch {
            let want_insert = self.rng.random_bool(self.cfg.insert_fraction);
            // A removal that finds no safe candidate falls back to an
            // insertion (and vice versa), keeping batch sizes stable on
            // extreme graphs.
            let up = if want_insert {
                self.gen_insert().or_else(|| self.gen_remove())
            } else {
                self.gen_remove().or_else(|| self.gen_insert())
            };
            match up {
                Some(u) => batch.push(u),
                None => break,
            }
        }
        batch
    }

    /// Draw a query source; redraw (bounded, then scan) when the Zipf
    /// stream — ranked on the initial graph — lands on a node that churn
    /// has since removed or orphaned.
    fn next_query(&mut self) -> NodeId {
        let queryable =
            |s: &Self, q: NodeId| s.live[q as usize] && s.out_degree[q as usize] > 0;
        for _ in 0..64 {
            let q = self.zipf.next_query();
            if queryable(self, q) {
                return q;
            }
        }
        (0..node_id(self.live.len()))
            .find(|&v| queryable(self, v))
            .expect("stream invariant: a queryable node always survives")
    }

    /// One churn batch: a coin-flip between node addition and node
    /// removal (removal falls back to addition when no node can be taken
    /// without leaving the graph unqueryable).
    fn next_churn_batch(&mut self) -> GraphDelta {
        if self.rng.random_bool(0.5) {
            self.gen_node_add()
        } else {
            self.gen_node_remove().unwrap_or_else(|| self.gen_node_add())
        }
    }

    /// Add the next dense id and wire it into the live graph with one
    /// out-edge and (best-effort) one in-edge, all in the same batch.
    fn gen_node_add(&mut self) -> GraphDelta {
        let v = node_id(self.live.len());
        self.live.push(true);
        self.out_degree.push(0);
        let mut edges = Vec::new();
        if let Some(t) = self.random_live_other(v) {
            edges.push(EdgeUpdate::Insert(v, t));
            self.edges.push((v, t));
            self.edge_set.insert((v, t));
            self.out_degree[v as usize] += 1;
        }
        if let Some(u) = self.random_live_other(v) {
            if !self.edge_set.contains(&(u, v)) {
                edges.push(EdgeUpdate::Insert(u, v));
                self.edges.push((u, v));
                self.edge_set.insert((u, v));
                self.out_degree[u as usize] += 1;
            }
        }
        GraphDelta {
            nodes: vec![NodeUpdate::Add],
            edges,
        }
    }

    /// Remove a random live node — but only when some other live node
    /// provably stays queryable (it has out-edges and none of them point
    /// at the victim, so dropping the victim's incident edges cannot
    /// orphan it).
    fn gen_node_remove(&mut self) -> Option<GraphDelta> {
        let n = node_id(self.live.len());
        'attempt: for _ in 0..64 {
            let v = self.rng.random_range(0..n);
            if !self.live[v as usize] {
                continue;
            }
            let mut survivor = false;
            for _ in 0..16 {
                let w = self.rng.random_range(0..n);
                if w != v
                    && self.live[w as usize]
                    && self.out_degree[w as usize] > 0
                    && !self.edge_set.contains(&(w, v))
                {
                    survivor = true;
                    break;
                }
            }
            if !survivor {
                continue 'attempt;
            }
            // Tombstone v and drop its incident edges from the tracked
            // state (the delta layer drops them from the graph).
            self.live[v as usize] = false;
            let mut i = 0;
            while i < self.edges.len() {
                let (a, b) = self.edges[i];
                if a == v || b == v {
                    self.edges.swap_remove(i);
                    self.edge_set.remove(&(a, b));
                    self.out_degree[a as usize] -= 1;
                } else {
                    i += 1;
                }
            }
            return Some(GraphDelta {
                nodes: vec![NodeUpdate::Remove(v)],
                edges: Vec::new(),
            });
        }
        None
    }

    /// A random live node different from `v`, if one turns up.
    fn random_live_other(&mut self, v: NodeId) -> Option<NodeId> {
        let n = node_id(self.live.len());
        for _ in 0..64 {
            let u = self.rng.random_range(0..n);
            if u != v && self.live[u as usize] {
                return Some(u);
            }
        }
        None
    }

    fn gen_insert(&mut self) -> Option<EdgeUpdate> {
        let n = node_id(self.out_degree.len());
        for _ in 0..64 {
            let u = self.rng.random_range(0..n);
            let v = self.rng.random_range(0..n);
            if u != v
                && self.live[u as usize]
                && self.live[v as usize]
                && !self.edge_set.contains(&(u, v))
            {
                self.edges.push((u, v));
                self.edge_set.insert((u, v));
                self.out_degree[u as usize] += 1;
                return Some(EdgeUpdate::Insert(u, v));
            }
        }
        None
    }

    fn gen_remove(&mut self) -> Option<EdgeUpdate> {
        if self.edges.is_empty() {
            return None;
        }
        for _ in 0..64 {
            let idx = self.rng.random_range(0..self.edges.len());
            let (u, v) = self.edges[idx];
            if self.out_degree[u as usize] >= 2 {
                self.edges.swap_remove(idx);
                self.edge_set.remove(&(u, v));
                self.out_degree[u as usize] -= 1;
                return Some(EdgeUpdate::Remove(u, v));
            }
        }
        None
    }
}

/// Random query workload: `count` distinct nodes with at least one
/// out-edge (the paper queries 1000 random nodes per graph, §6.1).
pub fn query_nodes(g: &CsrGraph, count: usize, seed: u64) -> Vec<NodeId> {
    let n = g.node_count();
    assert!(n > 0, "empty graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 100 + 1000 {
        attempts += 1;
        let v = node_id(rng.random_range(0..n));
        if g.out_degree(v) > 0 && seen.insert(v) {
            out.push(v);
        }
    }
    out
}

/// Shape of the open-loop arrival process.
///
/// Every variant draws the same exponential variates from the same
/// seeded stream — the pattern only modulates the *instantaneous rate*
/// each variate is divided by — so [`ArrivalPattern::Poisson`]
/// reproduces the historical open-loop arrival schedule byte for byte,
/// and switching patterns never perturbs the RNG stream shared with
/// anything else.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ArrivalPattern {
    /// Homogeneous Poisson arrivals at the configured mean rate (the
    /// standard heavy-traffic model; the historical default).
    #[default]
    Poisson,
    /// On/off bursts: the first `on_events` arrivals of every
    /// `period_events`-arrival cycle come at `peak × rate`, the rest at
    /// the complementary trough rate that keeps the long-run mean at
    /// `rate`. Models flash crowds hitting an admission-controlled edge.
    Bursty {
        /// Arrivals per on/off cycle (>= 2).
        period_events: usize,
        /// Arrivals of each cycle served at the peak rate (1..period).
        on_events: usize,
        /// Peak rate multiplier (> 1.0).
        peak: f64,
    },
    /// Sinusoidal rate modulation: instantaneous rate
    /// `rate × (1 + amplitude · sin(2πt / period_seconds))` — a smooth
    /// diurnal load curve compressed onto the virtual clock.
    Diurnal {
        /// Seconds per full cycle of the virtual day.
        period_seconds: f64,
        /// Relative swing around the mean rate, in `[0, 1)`.
        amplitude: f64,
    },
}

/// Generate `count` arrival timestamps (virtual seconds, ascending) for
/// mean rate `rate` under `pattern`, from the seeded exponential stream.
///
/// `ArrivalPattern::Poisson` is pinned to the historical inline
/// generator of the open-loop simulator: `StdRng::seed_from_u64(seed)`,
/// one `random_range(0.0..1.0)` draw per event, inverse-CDF exponential.
pub fn arrival_times(pattern: ArrivalPattern, rate: f64, seed: u64, count: usize) -> Vec<f64> {
    assert!(
        rate.is_finite() && rate > 0.0,
        "arrival rate must be positive and finite, got {rate}"
    );
    if let ArrivalPattern::Bursty {
        period_events,
        on_events,
        peak,
    } = pattern
    {
        assert!(period_events >= 2, "bursty period needs >= 2 events");
        assert!(
            (1..period_events).contains(&on_events),
            "on_events must be in 1..period_events"
        );
        assert!(peak > 1.0, "bursty peak multiplier must exceed 1.0");
    }
    if let ArrivalPattern::Diurnal {
        period_seconds,
        amplitude,
    } = pattern
    {
        assert!(period_seconds > 0.0, "diurnal period must be positive");
        assert!(
            (0.0..1.0).contains(&amplitude),
            "diurnal amplitude must be in [0,1)"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let u: f64 = rng.random_range(0.0..1.0);
        let e = -(1.0 - u).ln();
        let instantaneous = match pattern {
            ArrivalPattern::Poisson => rate,
            ArrivalPattern::Bursty {
                period_events,
                on_events,
                peak,
            } => {
                if i % period_events < on_events {
                    rate * peak
                } else {
                    // Trough rate chosen so one cycle's expected duration
                    // stays `period/rate` (time per event is 1/rate, so
                    // rates average harmonically): on/peak + off/trough =
                    // period. Positive because period > on >= on/peak.
                    let off = (period_events - on_events) as f64;
                    let trough = off / (period_events as f64 - on_events as f64 / peak);
                    rate * trough
                }
            }
            ArrivalPattern::Diurnal {
                period_seconds,
                amplitude,
            } => rate * (1.0 + amplitude * (std::f64::consts::TAU * t / period_seconds).sin()),
        };
        t += e / instantaneous;
        out.push(t);
    }
    out
}

/// A seeded scenario of cluster faults, as plain data.
///
/// Workload generation stays cluster-agnostic: the script names *what*
/// misbehaves (machine indices, slow factors, fail windows in fan-out
/// rounds, a transient drop rate); `ppr-cluster`'s `FaultPlan` is the
/// executable form the bench harness assembles from it.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultScript {
    /// `(machine, factor)` stragglers.
    pub slow: Vec<(usize, f64)>,
    /// `(machine, from_round, until_round)` fail windows.
    pub fail: Vec<(usize, u64, u64)>,
    /// Per-delivery-attempt transient drop probability.
    pub drop_rate: f64,
    /// Seed for the drop draws (forwarded to the fault plan).
    pub drop_seed: u64,
}

/// Generate the standard fault scenario for a `machines`-machine
/// cluster: one straggler, one crash-recover window, and a low transient
/// drop rate — all derived deterministically from `seed`.
pub fn fault_script(machines: usize, seed: u64) -> FaultScript {
    assert!(machines >= 2, "a fault script needs at least 2 machines");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_0175_C21F);
    let slow_machine = rng.random_range(0..machines);
    let slow_factor = 2.0 + rng.random_range(0..6) as f64; // 2x..7x
    // Fail a different machine so the two faults compose.
    let fail_machine = (slow_machine + 1 + rng.random_range(0..machines - 1)) % machines;
    let from = 2 + rng.random_range(0..6) as u64;
    let len = 4 + rng.random_range(0..8) as u64;
    let drop_rate = 0.01 + rng.random_range(0..4) as f64 * 0.01; // 1%..4%
    FaultScript {
        slow: vec![(slow_machine, slow_factor)],
        fail: vec![(fail_machine, from, from + len)],
        drop_rate,
        drop_seed: seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_deterministically() {
        for d in Dataset::MAIN {
            let a = d.generate();
            let b = d.generate();
            assert_eq!(a.node_count(), b.node_count());
            assert_eq!(a.edge_count(), b.edge_count());
            assert!(a.edges().eq(b.edges()), "{}", d.name());
        }
    }

    #[test]
    fn dataset_shapes_differ_as_in_paper() {
        let email = Dataset::Email.generate().stats();
        let web = Dataset::Web.generate().stats();
        let meetup = Dataset::Meetup(1).generate().stats();
        // Email is sparse; Web denser; Meetup densest (Table 6 avg ~83).
        assert!(email.avg_out_degree < web.avg_out_degree);
        assert!(web.avg_out_degree < meetup.avg_out_degree);
        assert!(meetup.avg_out_degree > 10.0);
    }

    #[test]
    fn meetup_series_grows() {
        let sizes: Vec<usize> = Dataset::meetup_series()
            .into_iter()
            .map(|d| d.generate().node_count())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    }

    #[test]
    #[should_panic(expected = "M1..M5")]
    fn meetup_out_of_range_panics() {
        Dataset::Meetup(6).spec();
    }

    #[test]
    fn query_nodes_are_valid_and_distinct() {
        let g = Dataset::Email.generate_with_nodes(500);
        let qs = query_nodes(&g, 50, 7);
        assert_eq!(qs.len(), 50);
        let set: std::collections::HashSet<_> = qs.iter().collect();
        assert_eq!(set.len(), 50);
        for &q in &qs {
            assert!(g.out_degree(q) > 0);
        }
    }

    #[test]
    fn custom_node_count() {
        let g = Dataset::Web.generate_with_nodes(800);
        assert_eq!(g.node_count(), 800);
    }

    #[test]
    fn zipf_stream_is_deterministic_and_valid() {
        let g = Dataset::Email.generate_with_nodes(600);
        let a = ZipfQueryStream::new(&g, 1.1, 5).take(200);
        let b = ZipfQueryStream::new(&g, 1.1, 5).take(200);
        assert_eq!(a, b);
        for &q in &a {
            assert!(g.out_degree(q) > 0);
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_head() {
        let g = Dataset::Email.generate_with_nodes(600);
        let count_head = |qs: &[NodeId], head: &NodeId| {
            qs.iter().filter(|q| *q == head).count()
        };
        let mut skewed = ZipfQueryStream::new(&g, 1.3, 9);
        let head = {
            // Rank-0 node = max out-degree.
            let mut best = 0u32;
            for v in 0..g.node_count() as NodeId {
                if g.out_degree(v) > g.out_degree(best) {
                    best = v;
                }
            }
            best
        };
        let qs_skewed = skewed.take(3000);
        let qs_uniform = ZipfQueryStream::new(&g, 0.0, 9).take(3000);
        let hot = count_head(&qs_skewed, &head);
        let flat = count_head(&qs_uniform, &head);
        assert!(
            hot > 10 * flat.max(1),
            "skewed head count {hot} should dwarf uniform {flat}"
        );
    }

    #[test]
    fn zipf_uniform_touches_many_nodes() {
        let g = Dataset::Email.generate_with_nodes(600);
        let qs = ZipfQueryStream::new(&g, 0.0, 3).take(2000);
        let distinct: std::collections::HashSet<_> = qs.iter().collect();
        assert!(distinct.len() > 300, "only {} distinct", distinct.len());
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn zipf_rejects_negative_exponent() {
        let g = Dataset::Email.generate_with_nodes(300);
        ZipfQueryStream::new(&g, -1.0, 0);
    }

    #[test]
    fn mixed_stream_is_deterministic() {
        let g = Dataset::Email.generate_with_nodes(400);
        let cfg = MixedStreamConfig {
            update_rate: 0.3,
            ..Default::default()
        };
        let a = MixedStream::new(&g, cfg, 11).take(200);
        let b = MixedStream::new(&g, cfg, 11).take(200);
        assert_eq!(a, b);
        assert!(a.iter().any(|e| matches!(e, MixedEvent::Update(_))));
        assert!(a.iter().any(|e| matches!(e, MixedEvent::Query(_))));
    }

    #[test]
    fn mixed_stream_updates_are_valid_against_evolving_graph() {
        use ppr_graph::delta::apply_edge_updates;
        let g0 = Dataset::Email.generate_with_nodes(300);
        let mut stream = MixedStream::new(
            &g0,
            MixedStreamConfig {
                update_rate: 0.5,
                updates_per_batch: 3,
                ..Default::default()
            },
            7,
        );
        let mut g = g0;
        let mut batches = 0;
        for event in stream.take(120) {
            match event {
                MixedEvent::Query(u) => assert!(g.out_degree(u) > 0, "query {u} not queryable"),
                MixedEvent::Update(batch) => {
                    batches += 1;
                    for &up in &batch {
                        // Every update must change the tracked graph...
                        assert!(up.is_effective(&g), "{up:?} is a no-op");
                        // ...and removals must never orphan a source.
                        if let EdgeUpdate::Remove(u, _) = up {
                            assert!(g.out_degree(u) >= 2, "removal orphans {u}");
                        }
                        g = apply_edge_updates(&g, &[up]);
                    }
                }
                MixedEvent::Churn(_) => unreachable!("churn disabled in this config"),
            }
        }
        assert!(batches > 20, "only {batches} update batches at rate 0.5");
        assert_eq!(g.edge_count(), stream.live_edges());
    }

    #[test]
    fn churn_stream_is_valid_against_evolving_graph() {
        use ppr_graph::apply_delta;
        let g0 = Dataset::Email.generate_with_nodes(250);
        let mut stream = MixedStream::new(
            &g0,
            MixedStreamConfig {
                update_rate: 0.3,
                churn_rate: 0.25,
                updates_per_batch: 2,
                ..Default::default()
            },
            13,
        );
        let mut g = g0;
        let mut live = vec![true; g.node_count()];
        let (mut adds, mut removes) = (0usize, 0usize);
        for event in stream.take(300) {
            match event {
                MixedEvent::Query(q) => {
                    assert!(live[q as usize], "query {q} hit a tombstone");
                    assert!(g.out_degree(q) > 0, "query {q} not queryable");
                }
                MixedEvent::Update(batch) => {
                    for &up in &batch {
                        assert!(up.is_effective(&g), "{up:?} is a no-op");
                        let (u, v) = up.endpoints();
                        assert!(live[u as usize] && live[v as usize]);
                        g = ppr_graph::delta::apply_edge_updates(&g, &[up]);
                    }
                }
                MixedEvent::Churn(delta) => {
                    // Every churn batch must validate against the state
                    // produced by all earlier events.
                    let applied = apply_delta(&g, &delta).expect("valid churn batch");
                    live.extend(std::iter::repeat_n(true, applied.added.len()));
                    adds += applied.added.len();
                    for &v in &applied.removed {
                        live[v as usize] = false;
                        removes += 1;
                    }
                    g = applied.graph;
                }
            }
        }
        assert!(adds > 5, "only {adds} node additions at churn rate 0.25");
        assert!(removes > 5, "only {removes} node removals");
        assert_eq!(g.node_count(), stream.node_ids());
        assert_eq!(g.edge_count(), stream.live_edges());
    }

    #[test]
    fn churn_stream_is_deterministic() {
        let g = Dataset::Email.generate_with_nodes(250);
        let cfg = MixedStreamConfig {
            update_rate: 0.2,
            churn_rate: 0.3,
            ..Default::default()
        };
        let a = MixedStream::new(&g, cfg, 29).take(200);
        let b = MixedStream::new(&g, cfg, 29).take(200);
        assert_eq!(a, b);
        assert!(a.iter().any(|e| matches!(e, MixedEvent::Churn(_))));
    }

    #[test]
    fn zero_churn_rate_emits_no_churn_and_matches_default() {
        // A zero churn rate must consume no extra randomness: the stream
        // is byte-identical to one whose config never mentions churn.
        let g = Dataset::Email.generate_with_nodes(300);
        let base = MixedStreamConfig {
            update_rate: 0.4,
            ..Default::default()
        };
        let explicit = MixedStreamConfig {
            churn_rate: 0.0,
            ..base
        };
        let a = MixedStream::new(&g, base, 17).take(150);
        let b = MixedStream::new(&g, explicit, 17).take(150);
        assert_eq!(a, b);
        assert!(a.iter().all(|e| !matches!(e, MixedEvent::Churn(_))));
    }

    #[test]
    #[should_panic(expected = "churn_rate")]
    fn mixed_stream_rejects_bad_churn_rate() {
        let g = Dataset::Email.generate_with_nodes(200);
        MixedStream::new(
            &g,
            MixedStreamConfig {
                churn_rate: -0.1,
                ..Default::default()
            },
            0,
        );
    }

    #[test]
    fn mixed_stream_zero_rate_is_pure_queries() {
        let g = Dataset::Email.generate_with_nodes(300);
        let cfg = MixedStreamConfig {
            update_rate: 0.0,
            ..Default::default()
        };
        let events = MixedStream::new(&g, cfg, 3).take(100);
        assert!(events.iter().all(|e| matches!(e, MixedEvent::Query(_))));
    }

    #[test]
    #[should_panic(expected = "update_rate")]
    fn mixed_stream_rejects_bad_rate() {
        let g = Dataset::Email.generate_with_nodes(200);
        MixedStream::new(&g, MixedStreamConfig { update_rate: 1.5, ..Default::default() }, 0);
    }

    #[test]
    fn arrival_times_are_ascending_and_seeded() {
        for pattern in [
            ArrivalPattern::Poisson,
            ArrivalPattern::Bursty {
                period_events: 100,
                on_events: 20,
                peak: 4.0,
            },
            ArrivalPattern::Diurnal {
                period_seconds: 2.0,
                amplitude: 0.8,
            },
        ] {
            let a = arrival_times(pattern, 500.0, 9, 400);
            let b = arrival_times(pattern, 500.0, 9, 400);
            assert_eq!(a, b, "{pattern:?} must replay identically");
            assert_eq!(a.len(), 400);
            assert!(a.windows(2).all(|w| w[1] > w[0]), "{pattern:?} ascending");
            assert!(a[0] > 0.0);
            let c = arrival_times(pattern, 500.0, 10, 400);
            assert_ne!(a, c, "{pattern:?} must respond to the seed");
        }
    }

    #[test]
    fn bursty_keeps_the_long_run_mean_rate() {
        let n = 40_000;
        let rate = 800.0;
        let poisson = arrival_times(ArrivalPattern::Poisson, rate, 4, n);
        let bursty = arrival_times(
            ArrivalPattern::Bursty {
                period_events: 200,
                on_events: 50,
                peak: 3.0,
            },
            rate,
            4,
            n,
        );
        let mean_p = n as f64 / poisson[n - 1];
        let mean_b = n as f64 / bursty[n - 1];
        assert!(
            (mean_b - mean_p).abs() / mean_p < 0.05,
            "bursty long-run rate {mean_b} vs poisson {mean_p}"
        );
        // But the bursts are real: the fastest 50-event window under the
        // bursty pattern is much tighter than the mean spacing.
        let tightest = bursty
            .windows(51)
            .map(|w| w[50] - w[0])
            .fold(f64::INFINITY, f64::min);
        assert!(tightest < 50.0 / (rate * 2.0));
    }

    #[test]
    fn diurnal_rate_actually_oscillates() {
        let times = arrival_times(
            ArrivalPattern::Diurnal {
                period_seconds: 1.0,
                amplitude: 0.9,
            },
            1000.0,
            5,
            4000,
        );
        // Count arrivals in the first and second half of the first full
        // cycle: the sin() modulation front-loads the first half.
        let first = times.iter().filter(|&&t| t < 0.5).count();
        let second = times.iter().filter(|&&t| (0.5..1.0).contains(&t)).count();
        assert!(
            first > second + second / 2,
            "first half {first}, second half {second}"
        );
    }

    #[test]
    fn fault_script_is_seeded_and_well_formed() {
        let a = fault_script(6, 42);
        let b = fault_script(6, 42);
        assert_eq!(a, b);
        assert_ne!(a, fault_script(6, 43));
        let (slow_m, factor) = a.slow[0];
        let (fail_m, from, until) = a.fail[0];
        assert!(slow_m < 6 && fail_m < 6 && slow_m != fail_m);
        assert!(factor >= 2.0);
        assert!(from < until);
        assert!((0.0..0.1).contains(&a.drop_rate));
        assert_eq!(a.drop_seed, 42);
    }
}
